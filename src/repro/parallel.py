"""Process-parallel map for trace synthesis.

The RAN simulator is pure python and CPU-bound, so synthesizing the six
Table 11 sub-datasets dominates bench start-up time.  :func:`parallel_map`
fans independent work items out over a ``multiprocessing`` pool while
guaranteeing the serial result: items are dispatched with ``pool.map``,
so output order matches input order, and every worker derives its
randomness from the per-item seed baked into the item itself.

Environment knobs:

``REPRO_PROCS``
    Worker count override.  ``REPRO_PROCS=1`` forces serial execution
    (useful inside test harnesses or already-parallel callers).

The helper degrades gracefully: if the platform cannot create a pool
(sandboxes without semaphore support, restricted containers), it falls
back to a serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from . import obs

T = TypeVar("T")
R = TypeVar("R")


class _SpanMapper:
    """Picklable wrapper running each work item inside a ``parallel.item`` span.

    Used whenever observability is on.  The span (pid/tid tagged, a
    no-op outside trace mode) plus the explicit :func:`repro.obs.flush`
    per item are what let worker timelines *and* worker metrics —
    counters, and gauges merged under a ``.pid<N>`` suffix — survive
    pool teardown and merge into the parent's view.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, pair):
        index, item = pair
        with obs.span("parallel.item", index=index):
            result = self.fn(item)
        obs.flush()
        return result


def default_processes(n_items: int) -> int:
    """Worker count: ``REPRO_PROCS`` if set, else ``min(cpus, items)``."""
    env = os.environ.get("REPRO_PROCS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return max(1, min(os.cpu_count() or 1, n_items))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, order-preserving, possibly in parallel.

    ``fn`` must be a picklable top-level function and each item must be
    picklable.  With ``processes`` <= 1 (or a single item, or any pool
    start-up failure) the map runs serially in-process — results are
    identical either way.
    """
    work: Sequence[T] = list(items)
    if processes is None:
        processes = default_processes(len(work))
    processes = min(processes, len(work))
    if obs.enabled():
        run_fn: Callable = _SpanMapper(fn)
        work = list(enumerate(work))
    else:
        run_fn = fn
    with obs.span("parallel.map", items=len(work), processes=processes) as sp:
        if processes <= 1 or len(work) <= 1:
            sp.set(pool="serial")
            return [run_fn(item) for item in work]
        try:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            # the initializer clears obs state copied in by fork so worker
            # spans/metrics start clean (no double-reported parent data)
            with ctx.Pool(processes=processes, initializer=obs.child_after_fork) as pool:
                return pool.map(run_fn, work, chunksize=chunksize)
        except (OSError, PermissionError, ValueError):
            # no semaphores / fork blocked (sandbox): serial fallback
            sp.set(pool="serial-fallback")
            return [run_fn(item) for item in work]
