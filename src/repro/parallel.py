"""Process-parallel map for trace synthesis.

The RAN simulator is pure python and CPU-bound, so synthesizing the six
Table 11 sub-datasets dominates bench start-up time.  :func:`parallel_map`
fans independent work items out over a ``multiprocessing`` pool while
guaranteeing the serial result: items are dispatched with ``pool.map``,
so output order matches input order, and every worker derives its
randomness from the per-item seed baked into the item itself.

Environment knobs:

``REPRO_PROCS``
    Worker count override.  ``REPRO_PROCS=1`` forces serial execution
    (useful inside test harnesses or already-parallel callers).

The helper degrades gracefully: if the platform cannot create a pool
(sandboxes without semaphore support, restricted containers), it falls
back to a serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from . import obs

T = TypeVar("T")
R = TypeVar("R")


class _SpanMapper:
    """Picklable wrapper running each work item inside a ``parallel.item`` span.

    Used whenever observability is on.  The span (pid/tid tagged, a
    no-op outside trace mode) plus the explicit :func:`repro.obs.flush`
    per item are what let worker timelines *and* worker metrics —
    counters, and gauges merged under a ``.pid<N>`` suffix — survive
    pool teardown and merge into the parent's view.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, pair):
        index, item = pair
        with obs.span("parallel.item", index=index):
            result = self.fn(item)
        obs.flush()
        return result


class _TaskRunner:
    """Picklable wrapper running one labelled task inside a span.

    The shard-task sibling of :class:`_SpanMapper`: same span + flush
    contract, but carries the caller-visible task label (e.g.
    ``shard-0003``) so per-shard telemetry is attributable.
    """

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable, label: str) -> None:
        self.fn = fn
        self.label = label

    def __call__(self, item):
        with obs.span("parallel.task", label=self.label):
            result = self.fn(item)
        obs.flush()
        return result


def default_processes(n_items: int) -> int:
    """Worker count: ``REPRO_PROCS`` if set, else ``min(cpus, items)``."""
    env = os.environ.get("REPRO_PROCS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            return 1
    return max(1, min(os.cpu_count() or 1, n_items))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, order-preserving, possibly in parallel.

    ``fn`` must be a picklable top-level function and each item must be
    picklable.  With ``processes`` <= 1 (or a single item, or any pool
    start-up failure) the map runs serially in-process — results are
    identical either way.
    """
    work: Sequence[T] = list(items)
    if processes is None:
        processes = default_processes(len(work))
    processes = min(processes, len(work))
    if obs.enabled():
        run_fn: Callable = _SpanMapper(fn)
        work = list(enumerate(work))
    else:
        run_fn = fn
    with obs.span("parallel.map", items=len(work), processes=processes) as sp:
        if processes <= 1 or len(work) <= 1:
            sp.set(pool="serial")
            return [run_fn(item) for item in work]
        try:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            # the initializer clears obs state copied in by fork so worker
            # spans/metrics start clean (no double-reported parent data)
            with ctx.Pool(processes=processes, initializer=obs.child_after_fork) as pool:
                return pool.map(run_fn, work, chunksize=chunksize)
        except (OSError, PermissionError, ValueError):
            # no semaphores / fork blocked (sandbox): serial fallback
            sp.set(pool="serial-fallback")
            return [run_fn(item) for item in work]


def _fail(label: str, attempts: int, exc: BaseException) -> "RuntimeError":
    # log_warning also bumps the ``parallel.shard.failed`` counter
    obs.log_warning(
        "parallel.shard.failed",
        shard=label,
        attempts=attempts,
        error=f"{type(exc).__name__}: {exc}",
    )
    return RuntimeError(
        f"shard {label} failed after {attempts} attempt(s): {type(exc).__name__}: {exc}"
    )


def _note_retry(label: str, attempt: int, exc: BaseException) -> None:
    # log_warning also bumps the ``parallel.shard.retry`` counter
    obs.log_warning(
        "parallel.shard.retry",
        shard=label,
        attempt=attempt,
        error=f"{type(exc).__name__}: {exc}",
    )


def _run_with_retries(run_fn: Callable, item, label: str, retries: int):
    attempts = 0
    while True:
        try:
            return run_fn(item)
        except Exception as exc:
            attempts += 1
            if attempts > retries:
                raise _fail(label, attempts, exc) from exc
            _note_retry(label, attempts, exc)


def run_tasks(
    fn: Callable[[T], R],
    items: Iterable[T],
    labels: Optional[Sequence[str]] = None,
    processes: Optional[int] = None,
    retries: int = 1,
    timeout_s: Optional[float] = None,
) -> List[R]:
    """Run labelled tasks with per-task retry and timeout.

    The shard-grade sibling of :func:`parallel_map`: results are
    order-preserving and ``fn``/items must be picklable, but each task
    additionally gets

    * up to ``retries`` re-submissions after a failure, each publishing
      a ``parallel.shard.retry`` obs counter and a structured warning;
    * a per-task wall budget (``timeout_s``) enforced on the pool path —
      an expired task counts as a failure and is retried.  (The serial
      path cannot preempt a running task, so there the budget applies
      only as a failure classifier.)

    A task that exhausts its retries raises :class:`RuntimeError` naming
    the task label, so campaign logs read "shard-0007 failed", not a
    bare traceback.  Retried tasks may double-execute (a timed-out
    original keeps running while its replacement starts), so task
    side effects must be idempotent — the campaign shard writers are
    (atomic rename, content-identical output).
    """
    work: Sequence[T] = list(items)
    names: List[str] = list(labels) if labels is not None else [f"task-{i}" for i in range(len(work))]
    if len(names) != len(work):
        raise ValueError(f"got {len(names)} labels for {len(work)} tasks")
    if not work:
        return []
    if processes is None:
        processes = default_processes(len(work))
    processes = min(processes, len(work))
    if obs.enabled():
        run_fns: List[Callable] = [_TaskRunner(fn, name) for name in names]
    else:
        run_fns = [fn] * len(work)
    with obs.span(
        "parallel.tasks", items=len(work), processes=processes, retries=retries
    ) as sp:
        if processes <= 1 or len(work) <= 1:
            sp.set(pool="serial")
            return [
                _run_with_retries(run_fns[i], work[i], names[i], retries)
                for i in range(len(work))
            ]
        try:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
            with ctx.Pool(processes=processes, initializer=obs.child_after_fork) as pool:
                pending = [
                    pool.apply_async(run_fns[i], (work[i],)) for i in range(len(work))
                ]
                results: List[R] = []
                for i, handle in enumerate(pending):
                    attempts = 0
                    while True:
                        try:
                            results.append(handle.get(timeout_s))
                            break
                        except Exception as exc:
                            attempts += 1
                            if attempts > retries:
                                raise _fail(names[i], attempts, exc) from exc
                            _note_retry(names[i], attempts, exc)
                            handle = pool.apply_async(run_fns[i], (work[i],))
                return results
        except (OSError, PermissionError):
            # no semaphores / fork blocked (sandbox): serial fallback
            sp.set(pool="serial-fallback")
            return [
                _run_with_retries(run_fns[i], work[i], names[i], retries)
                for i in range(len(work))
            ]
