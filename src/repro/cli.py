"""Command-line interface: simulate traces, run campaigns, train models.

Usage (also installed as the ``repro5g`` console script):

    python -m repro.cli simulate --operator OpZ --scenario urban \
        --mobility driving --duration 120 --out trace.jsonl
    python -m repro.cli campaign --operators OpZ OpX --duration 60
    python -m repro.cli train --operator OpZ --mobility driving \
        --timescale long --epochs 40 --model-out prism.npz
    python -m repro.cli evaluate --operator OpZ --mobility driving \
        --timescale long --predictors Prophet LSTM Prism5G
    python -m repro.cli evaluate --list-predictors
    python -m repro.cli run examples/experiment_small.json
    python -m repro.cli train --obs trace --obs-dir .repro-obs ...
    python -m repro.cli train --obs metrics --obs-sample-hz 2 ...
    python -m repro.cli obs report
    python -m repro.cli obs trace --chrome trace.json
    python -m repro.cli obs top --last 20
    python -m repro.cli obs export --prometheus
    python -m repro.cli obs flame --out flame.txt
    python -m repro.cli obs check-slo --budget budgets/fast_workload.json
    python -m repro.cli lint --format json
    python -m repro.cli lint --fix-catalog

The ``--obs`` flag (or the ``REPRO_OBS`` env var) turns on the
observability layer: ``metrics`` records counters/gauges/histograms and
a run manifest, ``trace`` additionally spills a span timeline that
``obs trace --chrome`` converts for ``chrome://tracing``.  With
``--obs-sample-hz`` (or ``REPRO_OBS_SAMPLE_HZ``) > 0, instrumented
regions also stream continuous telemetry — time-series metric rows and
collapsed stacks — that ``obs top`` / ``obs export`` / ``obs flame`` /
``obs check-slo`` consume.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import obs, runtime
from .analysis import format_table
from .lintkit.runner import add_lint_arguments, run_from_args as _run_lint
from .core import DeepConfig, evaluate_predictors, make_default_predictors
from .core.predictors import Prism5GPredictor, registered_predictors
from .data import SubDatasetSpec, build_subdataset, random_split
from .nn.serialization import save_state
from .pipeline import ExperimentConfig, run_experiment
from .ran import CampaignConfig, DualConnectivitySimulator, TraceSimulator, run_campaign


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs",
        default=None,
        choices=[obs.MODE_OFF, obs.MODE_METRICS, obs.MODE_TRACE],
        help="observability mode (overrides REPRO_OBS)",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        help="directory for span/metric/manifest files (overrides REPRO_OBS_DIR)",
    )
    parser.add_argument(
        "--obs-sample-hz",
        default=None,
        help=(
            "continuous-telemetry sample rate in Hz (overrides "
            "REPRO_OBS_SAMPLE_HZ; 0 = off; needs --obs metrics|trace)"
        ),
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "compute backend for the fused kernels (e.g. numpy, numba; "
            "overrides REPRO_BACKEND; unknown/unavailable names fall "
            "back to numpy)"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_const",
        const="1",
        default=None,
        help=(
            "numeric sanitizer: wrap every backend primitive with "
            "NaN/Inf and backward shape/dtype guards, fail fast naming "
            "the offending primitive (overrides REPRO_SANITIZE)"
        ),
    )


def _configure_obs(args: argparse.Namespace) -> None:
    if getattr(args, "obs", None) is not None or getattr(args, "obs_dir", None) is not None:
        obs.configure(mode=args.obs, directory=args.obs_dir)
    if getattr(args, "backend", None) is not None:
        runtime.configure(backend=args.backend)
    if getattr(args, "sanitize", None) is not None:
        runtime.configure(sanitize=args.sanitize)
    if getattr(args, "obs_sample_hz", None) is not None:
        runtime.configure(obs_sample_hz=args.obs_sample_hz)


def _add_common_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--operator", default="OpZ", choices=["OpX", "OpY", "OpZ"])
    parser.add_argument("--scenario", default="urban", choices=["urban", "suburban", "highway", "indoor"])
    parser.add_argument("--mobility", default="driving", choices=["stationary", "walking", "driving", "indoor"])
    parser.add_argument("--modem", default="X70", choices=["X50", "X55", "X60", "X65", "X70"])
    parser.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args: argparse.Namespace) -> int:
    _configure_obs(args)
    if args.nsa:
        sim = DualConnectivitySimulator(
            operator=args.operator, scenario=args.scenario, mobility=args.mobility,
            modem=args.modem, dt_s=args.dt, seed=args.seed,
        )
    else:
        sim = TraceSimulator(
            operator=args.operator, scenario=args.scenario, mobility=args.mobility,
            modem=args.modem, rat=args.rat, dt_s=args.dt, seed=args.seed,
        )
    trace = sim.run(args.duration)
    series = trace.throughput_series()
    print(
        f"{trace.operator} {trace.rat} {args.scenario}/{args.mobility}: "
        f"{len(trace)} samples, mean {series.mean():.1f} Mbps, peak {series.max():.1f} Mbps, "
        f"max CCs {trace.cc_count_series().max()}"
    )
    if args.out:
        trace.to_jsonl(args.out)
        print(f"wrote {args.out}")
    obs.write_manifest(
        kind="simulate",
        config=dict(
            operator=args.operator, scenario=args.scenario, mobility=args.mobility,
            modem=args.modem, rat=getattr(args, "rat", "5G"), nsa=args.nsa,
            dt_s=args.dt, duration_s=args.duration,
        ),
        seed=args.seed,
        extra={"samples": len(trace), "mean_tput_mbps": float(series.mean())},
    )
    obs.flush()
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    _configure_obs(args)
    if args.ues is not None:
        return _cmd_city_campaign(args)
    config = CampaignConfig(
        operators=tuple(args.operators),
        scenarios=tuple(args.scenarios),
        rats=tuple(args.rats),
        traces_per_cell=args.runs,
        duration_s=args.duration,
        dt_s=args.dt,
        seed=args.seed,
    )
    result = run_campaign(config)
    rows = []
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        rows.append(
            [
                operator, rat, scenario,
                stats.unique_channels,
                f"{stats.ordered_combos}/{stats.unique_combos}",
                stats.max_ccs,
                f"{stats.ca_prevalence * 100:.0f}%",
                f"{stats.peak_tput_mbps:.0f}",
            ]
        )
    print(
        format_table(
            ["Oper.", "RAT", "Scenario", "#Ch", "Combos", "MaxCC", "CA%", "Peak Mbps"],
            rows,
            title=f"Campaign: {len(result.traces)} traces, {result.traces.total_duration_s() / 60:.0f} min",
        )
    )
    if args.out_dir:
        out_dir = Path(args.out_dir)
        for i, trace in enumerate(result.traces):
            trace.to_jsonl(out_dir / f"trace_{trace.operator}_{trace.rat}_{trace.scenario}_{i:03d}.jsonl")
        print(f"wrote {len(result.traces)} traces to {out_dir}")
    obs.flush()
    return 0


def _cmd_city_campaign(args: argparse.Namespace) -> int:
    from .ran import CityCampaignConfig, run_city_campaign

    config = CityCampaignConfig(
        operators=tuple(args.operators),
        scenarios=tuple(args.scenarios),
        rats=tuple(args.rats),
        ues=args.ues,
        cells=args.cells,
        shards=args.shards,
        cohort=args.cohort,
        duration_s=args.duration,
        dt_s=args.dt,
        seed=args.seed,
        spill_traces=args.spill,
        shard_timeout_s=args.shard_timeout,
    )
    result = run_city_campaign(config, state_dir=args.state_dir, max_shards=args.max_shards)
    rows = []
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        rows.append(
            [
                operator, rat, scenario,
                stats.unique_channels,
                f"{stats.ordered_combos}/{stats.unique_combos}",
                stats.max_ccs,
                f"{stats.ca_prevalence * 100:.0f}%",
                f"{stats.peak_tput_mbps:.0f}",
            ]
        )
    print(
        format_table(
            ["Oper.", "RAT", "Scenario", "#Ch", "Combos", "MaxCC", "CA%", "Peak Mbps"],
            rows,
            title=f"City campaign {result.hash}",
        )
    )
    print(
        f"shards {result.shards_completed}/{result.shards_total} "
        f"({result.shards_resumed} resumed), {result.n_ues} UEs, "
        f"{result.ues_per_sec:.1f} UEs/s, peak RSS {result.peak_rss_mb:.0f} MB"
    )
    print(f"state: {result.state_dir}")
    obs.flush()
    if not result.complete:
        print(f"{result.shards_total - result.shards_completed} shard(s) still pending; rerun to resume")
        return 3
    return 0


def _spec_from_args(args: argparse.Namespace) -> SubDatasetSpec:
    return SubDatasetSpec(args.operator, args.mobility, args.timescale)


def _cmd_train(args: argparse.Namespace) -> int:
    _configure_obs(args)
    spec = _spec_from_args(args)
    print(f"building dataset {spec.name} ({args.traces} traces x {args.samples} samples)")
    dataset = build_subdataset(spec, n_traces=args.traces, samples_per_trace=args.samples, seed=args.seed)
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=args.seed)
    config = DeepConfig(hidden=args.hidden, max_epochs=args.epochs, patience=max(8, args.epochs // 5))
    predictor = Prism5GPredictor(config)
    print(f"training Prism5G ({config.hidden} hidden, <= {config.max_epochs} epochs)")
    predictor.fit(train, val)
    print(f"test RMSE (normalized): {predictor.evaluate(test):.4f}")
    if args.model_out:
        save_state(predictor.model, args.model_out)
        print(f"wrote {args.model_out}")
    obs.flush()
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    _configure_obs(args)
    if args.list_predictors:
        for name in registered_predictors():
            print(name)
        return 0
    unknown = [p for p in args.predictors if p not in registered_predictors()]
    if unknown:
        print(f"unknown predictors: {unknown}; choose from {registered_predictors()}", file=sys.stderr)
        return 2
    spec = _spec_from_args(args)
    dataset = build_subdataset(spec, n_traces=args.traces, samples_per_trace=args.samples, seed=args.seed)
    config = DeepConfig(hidden=args.hidden, max_epochs=args.epochs, patience=max(8, args.epochs // 5))
    predictors = make_default_predictors(config, include=args.predictors)
    result = evaluate_predictors(dataset, predictors, split=args.split, dataset_name=spec.name)
    rows = [[name, rmse] for name, rmse in result.rmse.items()]
    print(format_table(["Predictor", "RMSE"], rows, title=f"=== {spec.name} ==="))
    if "Prism5G" in result.rmse and len(result.rmse) > 1:
        print(f"Prism5G improvement over best baseline: {result.improvement_over_best_baseline():+.1f}%")
    obs.flush()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _configure_obs(args)
    try:
        config = ExperimentConfig.load(args.config)
    except (OSError, ValueError) as exc:
        print(f"{args.config}: {exc}", file=sys.stderr)
        return 2
    print(f"experiment {config.name} [{config.hash()}]")
    result = run_experiment(config, out_dir=args.out_dir, force=args.force)
    rows = [
        [status.stage, status.status, f"{status.duration_s:.2f}s", status.artifact or "-"]
        for status in result.stages
    ]
    print(format_table(["Stage", "Status", "Time", "Artifact"], rows, title=f"run dir: {result.run_dir}"))
    if result.rmse:
        rows = [[name, result.rmse[name]] for name in config.predictors]
        print(format_table(["Predictor", "RMSE"], rows, title=f"=== {config.name} ==="))
    if result.all_skipped:
        print("all stages skipped (complete run for this config already on disk; --force re-runs)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return _run_lint(args)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    manifest = obs.latest_manifest(directory)
    if manifest is None:
        print(f"no run manifest under {directory} (run with --obs metrics|trace first)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(f"=== {manifest.get('kind', '?')} run @ {manifest.get('created_at', '?')} ===")
    for key in ("mode", "git_sha", "seed", "config_hash", "pid"):
        print(f"{key:>12}: {manifest.get(key)}")
    kernels = manifest.get("kernel_paths") or {}
    print(f"{'kernels':>12}: " + ", ".join(f"{k}={'on' if v else 'off'}" for k, v in sorted(kernels.items())))
    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        rows = [[name, f"{value:g}"] for name, value in sorted(counters.items())]
        print(format_table(["Counter", "Value"], rows, title="counters"))
    gauges = metrics.get("gauges") or {}
    if gauges:
        rows = [[name, f"{value:.4g}"] for name, value in sorted(gauges.items())]
        print(format_table(["Gauge", "Value"], rows, title="gauges"))
    for name, hist in sorted((metrics.get("histograms") or {}).items()):
        print(
            f"{name}: n={hist.get('count', 0)} sum={hist.get('sum', 0.0):.3g} "
            f"min={hist.get('min')} max={hist.get('max')}"
        )
    history = manifest.get("history")
    if history:
        print(f"{'history':>12}: {json.dumps(history, default=str)}")
    extra = manifest.get("extra")
    if extra:
        print(f"{'extra':>12}: {json.dumps(extra, default=str)}")
    return 0


def _cmd_obs_trace(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    spans = obs.read_spans(directory)
    if not spans:
        print(f"no spans under {directory} (run with --obs trace first)", file=sys.stderr)
        return 1
    out = obs.write_chrome_trace(args.chrome, directory)
    pids = {span.get("pid") for span in spans}
    print(f"wrote {out} ({len(spans)} spans from {len(pids)} process(es))")
    return 0


def _format_series_rows(rows: Sequence[dict]) -> str:
    t0 = rows[0].get("t", 0.0) if rows else 0.0
    table = []
    for row in rows:
        quantiles = row.get("quantiles") or {}
        p95s = ", ".join(
            f"{name}={q['p95']:.3g}" for name, q in sorted(quantiles.items()) if q and "p95" in q
        )
        table.append(
            [
                f"{row.get('t', 0.0) - t0:8.2f}",
                row.get("pid", "-"),
                row.get("window") or "-",
                f"{row['rss_mb']:.1f}" if "rss_mb" in row else "-",
                f"{row['cpu_pct']:.0f}" if "cpu_pct" in row else "-",
                len(row.get("counters") or {}),
                p95s or "-",
            ]
        )
    return format_table(
        ["t+s", "pid", "window", "rss MB", "cpu %", "#ctr", "histogram p95s"], table
    )


def _cmd_obs_top(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    rows = obs.read_series(directory)
    if not rows:
        print(
            f"no telemetry under {directory} "
            "(run with --obs metrics --obs-sample-hz 2 first)",
            file=sys.stderr,
        )
        return 1
    print(_format_series_rows(rows[-args.last :]))
    print(f"{len(rows)} rows from {len({r.get('pid') for r in rows})} process(es)")
    return 0


def _snapshot_from_dir(directory: Path) -> Optional[dict]:
    """A run's metrics: the latest manifest's merged snapshot, else spills."""
    manifest = obs.latest_manifest(directory)
    if manifest is not None and manifest.get("metrics"):
        return manifest["metrics"]
    obs.configure(mode=obs.mode(), directory=directory)
    snap = obs.merged_snapshot()
    if snap.get("counters") or snap.get("gauges") or snap.get("histograms"):
        return snap
    return None


def _cmd_obs_export(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    snap = _snapshot_from_dir(directory)
    if snap is None:
        print(f"no metrics under {directory} (run with --obs metrics first)", file=sys.stderr)
        return 1
    text = obs.prometheus_text(snap) if args.prometheus else "\n".join(obs.jsonl_lines(snap)) + "\n"
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    stacks = obs.read_flame(directory)
    if not stacks:
        print(
            f"no flamegraph data under {directory} "
            "(run with --obs metrics --obs-sample-hz 2 first)",
            file=sys.stderr,
        )
        return 1
    if args.out:
        lines = [f"{stack} {count}" for stack, count in sorted(stacks.items())]
        Path(args.out).write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {args.out} ({len(stacks)} stacks; feed to flamegraph.pl or speedscope)")
        return 0
    total = sum(stacks.values())
    top = sorted(stacks.items(), key=lambda kv: -kv[1])[: args.top]
    rows = [[count, f"{100.0 * count / total:.1f}%", stack.split(";")[-1]] for stack, count in top]
    print(format_table(["samples", "share", "leaf frame"], rows, title=f"{total} stack samples"))
    return 0


def _cmd_obs_check_slo(args: argparse.Namespace) -> int:
    directory = Path(args.dir) if args.dir else obs.obs_dir()
    try:
        budget = obs.load_slo(args.budget)
    except (OSError, ValueError) as exc:
        print(f"{args.budget}: {exc}", file=sys.stderr)
        return 2
    snap = _snapshot_from_dir(directory) or {}
    violations = obs.evaluate_slo(
        budget,
        snapshot=snap,
        spans=obs.read_spans(directory),
        series=obs.read_series(directory),
    )
    regression_limit = budget.get("budgets", {}).get("end_to_end_regression")
    if regression_limit is not None:
        trend = obs.check_bench_file(args.bench, limit=float(regression_limit))
        if trend is not None:
            violations.append(trend)
    for violation in violations:
        print(violation.message(), file=sys.stderr)
    if violations:
        print(f"FAIL: {len(violations)} SLO violation(s) against {args.budget}", file=sys.stderr)
        return 1
    print(f"OK: telemetry under {directory} within budget {args.budget}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro5g", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="synthesize one CA trace")
    _add_common_sim_args(sim)
    _add_obs_args(sim)
    _add_backend_arg(sim)
    sim.add_argument("--rat", default="5G", choices=["4G", "5G"])
    sim.add_argument("--nsa", action="store_true", help="EN-DC dual connectivity")
    sim.add_argument("--dt", type=float, default=1.0)
    sim.add_argument("--duration", type=float, default=60.0)
    sim.add_argument("--out", default=None, help="JSONL output path")
    sim.set_defaults(func=_cmd_simulate)

    camp = sub.add_parser("campaign", help="run a measurement campaign")
    camp.add_argument("--operators", nargs="+", default=["OpX", "OpY", "OpZ"])
    camp.add_argument("--scenarios", nargs="+", default=["urban", "suburban", "highway"])
    camp.add_argument("--rats", nargs="+", default=["4G", "5G"])
    camp.add_argument("--runs", type=int, default=2)
    camp.add_argument("--duration", type=float, default=60.0)
    camp.add_argument("--dt", type=float, default=1.0)
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--out-dir", default=None, help="write traces as JSONL here")
    city = camp.add_argument_group("city-scale (sharded engine; enabled by --ues)")
    city.add_argument("--ues", type=int, default=None,
                      help="UEs per (operator, rat, scenario) group; selects the sharded engine")
    city.add_argument("--cells", type=int, default=0,
                      help="share one ~N-cell deployment per group (0 = per-UE deployments)")
    city.add_argument("--shards", type=int, default=1, help="worker shards for the UE population")
    city.add_argument("--cohort", type=int, default=32, help="UEs batched per SoA radio step")
    city.add_argument("--state-dir", default=None,
                      help="resumable shard state directory (default: runs/campaigns/city-<hash>)")
    city.add_argument("--max-shards", type=int, default=None,
                      help="run at most N pending shards then stop (exit 3 if shards remain)")
    city.add_argument("--spill", action="store_true",
                      help="spill per-cohort traces into the content-hash cache")
    city.add_argument("--shard-timeout", type=float, default=None,
                      help="per-shard wall budget in seconds (expired shards retry once)")
    _add_obs_args(camp)
    _add_backend_arg(camp)
    camp.set_defaults(func=_cmd_campaign)

    def _add_ml_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--operator", default="OpZ", choices=["OpX", "OpY", "OpZ"])
        p.add_argument("--mobility", default="driving", choices=["walking", "driving"])
        p.add_argument("--timescale", default="long", choices=["short", "long"])
        p.add_argument("--traces", type=int, default=5)
        p.add_argument("--samples", type=int, default=200)
        p.add_argument("--hidden", type=int, default=24)
        p.add_argument("--epochs", type=int, default=40)
        p.add_argument("--seed", type=int, default=0)
        _add_obs_args(p)
        _add_backend_arg(p)

    train = sub.add_parser("train", help="train Prism5G on a sub-dataset")
    _add_ml_args(train)
    train.add_argument("--model-out", default=None, help=".npz path for the trained weights")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="compare predictors (Table 4 style)")
    _add_ml_args(evaluate)
    evaluate.add_argument("--predictors", nargs="+", default=["Prophet", "LSTM", "Prism5G"])
    evaluate.add_argument("--split", default="random", choices=["random", "trace"])
    evaluate.add_argument(
        "--list-predictors", action="store_true",
        help="print the registered predictor names and exit",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    run = sub.add_parser("run", help="run (or resume) an experiment from a JSON config")
    run.add_argument("config", help="path to an experiment JSON file (see examples/)")
    run.add_argument("--out-dir", default=None, help="run directory (default: runs/<name>-<hash>)")
    run.add_argument("--force", action="store_true", help="re-run every stage even if artifacts exist")
    _add_obs_args(run)
    _add_backend_arg(run)
    run.set_defaults(func=_cmd_run)

    lint = sub.add_parser("lint", help="run the repo's AST and whole-program invariant checks (rules RL001-RL012)")
    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    obs_cmd = sub.add_parser("obs", help="inspect observability output")
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser("report", help="pretty-print the latest run manifest")
    report.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    report.add_argument("--json", action="store_true", help="raw JSON instead of a table")
    report.set_defaults(func=_cmd_obs_report)
    trace_cmd = obs_sub.add_parser("trace", help="convert span JSONL to Chrome trace format")
    trace_cmd.add_argument("--chrome", required=True, help="output path for the chrome://tracing JSON")
    trace_cmd.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    trace_cmd.set_defaults(func=_cmd_obs_trace)
    top = obs_sub.add_parser("top", help="tail of the continuous-telemetry series")
    top.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    top.add_argument("--last", type=int, default=20, help="rows to show (default 20)")
    top.set_defaults(func=_cmd_obs_top)
    export_cmd = obs_sub.add_parser("export", help="export the run's metrics snapshot")
    export_cmd.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    export_cmd.add_argument(
        "--prometheus", action="store_true",
        help="Prometheus text exposition instead of JSONL",
    )
    export_cmd.add_argument("--out", default=None, help="write here instead of stdout")
    export_cmd.set_defaults(func=_cmd_obs_export)
    flame = obs_sub.add_parser("flame", help="merged collapsed-stack flamegraph data")
    flame.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    flame.add_argument("--out", default=None, help="write collapsed stacks here (flamegraph.pl input)")
    flame.add_argument("--top", type=int, default=15, help="leaf frames to show without --out")
    flame.set_defaults(func=_cmd_obs_flame)
    check = obs_sub.add_parser("check-slo", help="evaluate telemetry against a perf budget")
    check.add_argument("--budget", required=True, help="repro-slo-v1 JSON budget file")
    check.add_argument("--dir", default=None, help="obs directory (default: REPRO_OBS_DIR or .repro-obs)")
    check.add_argument(
        "--bench", default="BENCH_perf.json",
        help="BENCH_perf.json for the end_to_end_regression trend check",
    )
    check.set_defaults(func=_cmd_obs_check_slo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
