"""Command-line interface: simulate traces, run campaigns, train models.

Usage (also installed as the ``repro5g`` console script):

    python -m repro.cli simulate --operator OpZ --scenario urban \
        --mobility driving --duration 120 --out trace.jsonl
    python -m repro.cli campaign --operators OpZ OpX --duration 60
    python -m repro.cli train --operator OpZ --mobility driving \
        --timescale long --epochs 40 --model-out prism.npz
    python -m repro.cli evaluate --operator OpZ --mobility driving \
        --timescale long --predictors Prophet LSTM Prism5G
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import format_table
from .core import DeepConfig, evaluate_predictors, make_default_predictors
from .core.predictors import PREDICTOR_REGISTRY, Prism5GPredictor
from .data import SubDatasetSpec, build_subdataset, random_split
from .nn.serialization import save_state
from .ran import CampaignConfig, DualConnectivitySimulator, TraceSimulator, run_campaign


def _add_common_sim_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--operator", default="OpZ", choices=["OpX", "OpY", "OpZ"])
    parser.add_argument("--scenario", default="urban", choices=["urban", "suburban", "highway", "indoor"])
    parser.add_argument("--mobility", default="driving", choices=["stationary", "walking", "driving", "indoor"])
    parser.add_argument("--modem", default="X70", choices=["X50", "X55", "X60", "X65", "X70"])
    parser.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.nsa:
        sim = DualConnectivitySimulator(
            operator=args.operator, scenario=args.scenario, mobility=args.mobility,
            modem=args.modem, dt_s=args.dt, seed=args.seed,
        )
    else:
        sim = TraceSimulator(
            operator=args.operator, scenario=args.scenario, mobility=args.mobility,
            modem=args.modem, rat=args.rat, dt_s=args.dt, seed=args.seed,
        )
    trace = sim.run(args.duration)
    series = trace.throughput_series()
    print(
        f"{trace.operator} {trace.rat} {args.scenario}/{args.mobility}: "
        f"{len(trace)} samples, mean {series.mean():.1f} Mbps, peak {series.max():.1f} Mbps, "
        f"max CCs {trace.cc_count_series().max()}"
    )
    if args.out:
        trace.to_jsonl(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        operators=tuple(args.operators),
        scenarios=tuple(args.scenarios),
        rats=tuple(args.rats),
        traces_per_cell=args.runs,
        duration_s=args.duration,
        dt_s=args.dt,
        seed=args.seed,
    )
    result = run_campaign(config)
    rows = []
    for (operator, rat, scenario), stats in sorted(result.stats.items()):
        rows.append(
            [
                operator, rat, scenario,
                stats.unique_channels,
                f"{stats.ordered_combos}/{stats.unique_combos}",
                stats.max_ccs,
                f"{stats.ca_prevalence * 100:.0f}%",
                f"{stats.peak_tput_mbps:.0f}",
            ]
        )
    print(
        format_table(
            ["Oper.", "RAT", "Scenario", "#Ch", "Combos", "MaxCC", "CA%", "Peak Mbps"],
            rows,
            title=f"Campaign: {len(result.traces)} traces, {result.traces.total_duration_s() / 60:.0f} min",
        )
    )
    if args.out_dir:
        out_dir = Path(args.out_dir)
        for i, trace in enumerate(result.traces):
            trace.to_jsonl(out_dir / f"trace_{trace.operator}_{trace.rat}_{trace.scenario}_{i:03d}.jsonl")
        print(f"wrote {len(result.traces)} traces to {out_dir}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> SubDatasetSpec:
    return SubDatasetSpec(args.operator, args.mobility, args.timescale)


def _cmd_train(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    print(f"building dataset {spec.name} ({args.traces} traces x {args.samples} samples)")
    dataset = build_subdataset(spec, n_traces=args.traces, samples_per_trace=args.samples, seed=args.seed)
    train, val, test = random_split(dataset.windows, 0.5, 0.2, 0.3, seed=args.seed)
    config = DeepConfig(hidden=args.hidden, max_epochs=args.epochs, patience=max(8, args.epochs // 5))
    predictor = Prism5GPredictor(config)
    print(f"training Prism5G ({config.hidden} hidden, <= {config.max_epochs} epochs)")
    predictor.fit(train, val)
    print(f"test RMSE (normalized): {predictor.evaluate(test):.4f}")
    if args.model_out:
        save_state(predictor.model, args.model_out)
        print(f"wrote {args.model_out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    unknown = [p for p in args.predictors if p not in PREDICTOR_REGISTRY]
    if unknown:
        print(f"unknown predictors: {unknown}; choose from {sorted(PREDICTOR_REGISTRY)}", file=sys.stderr)
        return 2
    spec = _spec_from_args(args)
    dataset = build_subdataset(spec, n_traces=args.traces, samples_per_trace=args.samples, seed=args.seed)
    config = DeepConfig(hidden=args.hidden, max_epochs=args.epochs, patience=max(8, args.epochs // 5))
    predictors = make_default_predictors(config, include=args.predictors)
    result = evaluate_predictors(dataset, predictors, split=args.split, dataset_name=spec.name)
    rows = [[name, rmse] for name, rmse in result.rmse.items()]
    print(format_table(["Predictor", "RMSE"], rows, title=f"=== {spec.name} ==="))
    if "Prism5G" in result.rmse and len(result.rmse) > 1:
        print(f"Prism5G improvement over best baseline: {result.improvement_over_best_baseline():+.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro5g", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="synthesize one CA trace")
    _add_common_sim_args(sim)
    sim.add_argument("--rat", default="5G", choices=["4G", "5G"])
    sim.add_argument("--nsa", action="store_true", help="EN-DC dual connectivity")
    sim.add_argument("--dt", type=float, default=1.0)
    sim.add_argument("--duration", type=float, default=60.0)
    sim.add_argument("--out", default=None, help="JSONL output path")
    sim.set_defaults(func=_cmd_simulate)

    camp = sub.add_parser("campaign", help="run a measurement campaign")
    camp.add_argument("--operators", nargs="+", default=["OpX", "OpY", "OpZ"])
    camp.add_argument("--scenarios", nargs="+", default=["urban", "suburban", "highway"])
    camp.add_argument("--rats", nargs="+", default=["4G", "5G"])
    camp.add_argument("--runs", type=int, default=2)
    camp.add_argument("--duration", type=float, default=60.0)
    camp.add_argument("--dt", type=float, default=1.0)
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--out-dir", default=None, help="write traces as JSONL here")
    camp.set_defaults(func=_cmd_campaign)

    def _add_ml_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--operator", default="OpZ", choices=["OpX", "OpY", "OpZ"])
        p.add_argument("--mobility", default="driving", choices=["walking", "driving"])
        p.add_argument("--timescale", default="long", choices=["short", "long"])
        p.add_argument("--traces", type=int, default=5)
        p.add_argument("--samples", type=int, default=200)
        p.add_argument("--hidden", type=int, default=24)
        p.add_argument("--epochs", type=int, default=40)
        p.add_argument("--seed", type=int, default=0)

    train = sub.add_parser("train", help="train Prism5G on a sub-dataset")
    _add_ml_args(train)
    train.add_argument("--model-out", default=None, help=".npz path for the trained weights")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="compare predictors (Table 4 style)")
    _add_ml_args(evaluate)
    evaluate.add_argument("--predictors", nargs="+", default=["Prophet", "LSTM", "Prism5G"])
    evaluate.add_argument("--split", default="random", choices=["random", "trace"])
    evaluate.set_defaults(func=_cmd_evaluate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
