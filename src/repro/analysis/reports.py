"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows the paper's tables report; this module
keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    float_fmt: str = "{:.3f}",
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        rendered.append(
            [float_fmt.format(cell) if isinstance(cell, float) else str(cell) for cell in row]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_rmse_table(results: Dict[str, Dict[str, float]], methods: Sequence[str], title: str = "") -> str:
    """Dataset-by-method RMSE matrix (Table 4 layout)."""
    headers = ["Dataset", *methods]
    rows = []
    for dataset, rmse in results.items():
        rows.append([dataset, *[rmse.get(m, float("nan")) for m in methods]])
    return format_table(headers, rows, title=title)
