"""Distribution statistics used throughout the measurement study.

CDFs (Fig 2/24/26), multimodality detection via KDE peak counting
(the paper attributes the multiple "peaks" of the throughput
distribution to CA), violin-plot summaries (Fig 5), and
transition-window variability statistics (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..ran.traces import Trace


def empirical_cdf(samples: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return sorted values and cumulative probabilities."""
    samples = np.sort(np.asarray(samples, dtype=np.float64).reshape(-1))
    if samples.size == 0:
        raise ValueError("no samples")
    probs = np.arange(1, samples.size + 1) / samples.size
    return samples, probs


def percentile(samples: np.ndarray, q: float) -> float:
    """Convenience percentile with validation."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def kde_peaks(
    samples: np.ndarray,
    grid_points: int = 256,
    bandwidth: Optional[float] = None,
    min_prominence_ratio: float = 0.05,
) -> List[float]:
    """Locate modes ("peaks") of a throughput distribution via KDE.

    Returns the peak locations; the paper observes multiple modes in
    CA-enabled traces (Fig 2), one per dominant CC combination.
    """
    samples = np.asarray(samples, dtype=np.float64).reshape(-1)
    if samples.size < 5:
        raise ValueError("need at least 5 samples for KDE")
    if np.ptp(samples) <= 0.0:  # ptp is non-negative; <= 0 means constant samples
        return [float(samples[0])]
    kde = scipy_stats.gaussian_kde(samples, bw_method=bandwidth)
    grid = np.linspace(samples.min(), samples.max(), grid_points)
    density = kde(grid)
    threshold = min_prominence_ratio * density.max()
    peaks = []
    for i in range(1, grid_points - 1):
        if density[i] > density[i - 1] and density[i] >= density[i + 1] and density[i] > threshold:
            peaks.append(float(grid[i]))
    return peaks


@dataclass
class ViolinSummary:
    """Numbers a violin plot communicates (paper Fig 5)."""

    label: str
    mean: float
    std: float
    median: float
    p5: float
    p95: float
    peak: float
    n: int

    @staticmethod
    def from_samples(label: str, samples: np.ndarray) -> "ViolinSummary":
        samples = np.asarray(samples, dtype=np.float64).reshape(-1)
        if samples.size == 0:
            raise ValueError("no samples")
        return ViolinSummary(
            label=label,
            mean=float(samples.mean()),
            std=float(samples.std()),
            median=float(np.median(samples)),
            p5=float(np.percentile(samples, 5)),
            p95=float(np.percentile(samples, 95)),
            peak=float(samples.max()),
            n=int(samples.size),
        )


@dataclass
class TransitionStats:
    """CC add/remove dynamics over a trace (paper Appendix A.2)."""

    n_events: int
    mean_interval_s: float
    mean_change_pct: float  #: mean |Tput change| across a 5 s window, in %
    std_with_events_mbps: float
    std_stable_mbps: float


def transition_statistics(trace: Trace, window_s: float = 5.0) -> TransitionStats:
    """Quantify throughput disruption around CC change events.

    Variability is compared *locally*, as the paper does: the std of
    throughput within each ``window_s`` window centred on an event,
    versus the std within same-width windows that contain no event
    (otherwise slow drift across different CA configurations would
    dominate the "stable" figure).
    """
    tput = trace.throughput_series()
    steps = trace.event_steps()
    dt = trace.dt_s
    half = max(1, int(window_s / dt / 2))
    width = 2 * half
    changes = []
    event_mask = np.zeros(len(tput), dtype=bool)
    event_stds = []
    for step in steps:
        lo, hi = max(0, step - half), min(len(tput), step + half)
        event_mask[lo:hi] = True
        window = tput[lo:hi]
        if window.size >= 2:
            event_stds.append(window.std())
        before = tput[max(0, step - half) : step]
        after = tput[step : min(len(tput), step + half)]
        if len(before) and len(after) and before.mean() > 1e-9:
            changes.append(abs(after.mean() - before.mean()) / before.mean() * 100.0)
    stable_stds = []
    for start in range(0, len(tput) - width + 1, width):
        if not event_mask[start : start + width].any():
            stable_stds.append(tput[start : start + width].std())
    intervals = np.diff(steps) * dt if len(steps) > 1 else np.array([])
    return TransitionStats(
        n_events=len(steps),
        mean_interval_s=float(intervals.mean()) if intervals.size else float("inf"),
        mean_change_pct=float(np.mean(changes)) if changes else 0.0,
        std_with_events_mbps=float(np.mean(event_stds)) if event_stds else 0.0,
        std_stable_mbps=float(np.mean(stable_stds)) if stable_stds else 0.0,
    )


def subadditivity_ratio(aggregate: np.ndarray, parts: Sequence[np.ndarray]) -> float:
    """How far below the sum of stand-alone throughputs CA lands.

    Returns ``1 - mean(aggregate) / sum(mean(part_i))`` — the paper's
    Fig 6 observation that n41+n25 can be >= 49% below the theoretical
    sum of n41-alone and n25-alone.
    """
    aggregate = np.asarray(aggregate, dtype=np.float64)
    total = sum(float(np.mean(np.asarray(p, dtype=np.float64))) for p in parts)
    if total <= 0:
        raise ValueError("parts have no throughput")
    return 1.0 - float(aggregate.mean()) / total
