"""Spectral-efficiency analysis (paper §4.1, Figs 9-10).

Computes bits/s/Hz per channel under good channel conditions
(CQI > 12, the paper's filter) and the TBS/MCS/#RE mapping surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..ran.bands import get_band
from ..ran.phy import (
    SYMBOLS_PER_SLOT,
    num_resource_blocks,
    phy_throughput_mbps,
    resource_elements,
    transport_block_size,
    duplex_dl_duty,
)
from ..ran.traces import Trace


@dataclass
class ChannelEfficiency:
    """Observed spectral efficiency of one channel."""

    channel_key: str
    band_name: str
    bandwidth_mhz: float
    mean_tput_mbps: float
    efficiency_bps_hz: float
    n_samples: int


def spectral_efficiency(
    traces: Sequence[Trace],
    bandwidth_by_key: Dict[str, float],
    min_cqi: int = 12,
) -> List[ChannelEfficiency]:
    """Per-channel bits/s/Hz under good channel conditions (CQI > 12)."""
    samples: Dict[str, List[float]] = {}
    band_of: Dict[str, str] = {}
    for trace in traces:
        for rec in trace.records:
            for cc in rec.ccs:
                if cc.active and cc.cqi > min_cqi and cc.channel_key in bandwidth_by_key:
                    samples.setdefault(cc.channel_key, []).append(cc.tput_mbps)
                    band_of[cc.channel_key] = cc.band_name
    out = []
    for key, values in sorted(samples.items()):
        bandwidth = bandwidth_by_key[key]
        mean_tput = float(np.mean(values))
        out.append(
            ChannelEfficiency(
                channel_key=key,
                band_name=band_of[key],
                bandwidth_mhz=bandwidth,
                mean_tput_mbps=mean_tput,
                efficiency_bps_hz=mean_tput / bandwidth,
                n_samples=len(values),
            )
        )
    return out


def theoretical_efficiency_bps_hz(band_name: str, bandwidth_mhz: float, n_layers: int = 2) -> float:
    """Ideal-condition spectral efficiency (highest MCS, full RBs)."""
    band = get_band(band_name)
    scs = band.default_scs_khz
    n_rb = num_resource_blocks(bandwidth_mhz, scs, band.rat)
    tput = phy_throughput_mbps(
        mcs_index=27,
        n_prb=n_rb,
        n_layers=n_layers,
        scs_khz=scs,
        dl_duty=duplex_dl_duty(band.duplex),
    )
    return tput / bandwidth_mhz


def tbs_surface(
    mcs_indices: Sequence[int],
    n_prbs: Sequence[int],
    n_layers: int = 2,
    n_symbols: int = SYMBOLS_PER_SLOT,
) -> np.ndarray:
    """TBS (bits/slot) over an (MCS, #PRB) grid — paper Fig 9's surface."""
    grid = np.zeros((len(mcs_indices), len(n_prbs)), dtype=np.int64)
    for i, mcs in enumerate(mcs_indices):
        for j, n_prb in enumerate(n_prbs):
            grid[i, j] = transport_block_size(mcs, n_prb, n_layers, n_symbols)
    return grid
