"""Measurement analysis: distributions, correlations, efficiency, tables."""

from .correlation import CrossCorrelation, cc_series, cross_correlations, dominant_pair, pearson
from .handover import PCellChange, PCellStats, pcell_band_share, pcell_changes, pcell_statistics
from .efficiency import (
    ChannelEfficiency,
    spectral_efficiency,
    tbs_surface,
    theoretical_efficiency_bps_hz,
)
from .reports import format_rmse_table, format_table
from .stats import (
    TransitionStats,
    ViolinSummary,
    empirical_cdf,
    kde_peaks,
    percentile,
    subadditivity_ratio,
    transition_statistics,
)

__all__ = [
    "ChannelEfficiency",
    "CrossCorrelation",
    "PCellChange",
    "PCellStats",
    "TransitionStats",
    "ViolinSummary",
    "cc_series",
    "cross_correlations",
    "dominant_pair",
    "empirical_cdf",
    "format_rmse_table",
    "format_table",
    "kde_peaks",
    "pcell_band_share",
    "pcell_changes",
    "pcell_statistics",
    "pearson",
    "percentile",
    "spectral_efficiency",
    "subadditivity_ratio",
    "tbs_surface",
    "theoretical_efficiency_bps_hz",
    "transition_statistics",
]
