"""Cross-carrier correlation analysis (paper §4.2, Figs 11-13).

The paper's argument for per-CC modeling: a CC's RSRP correlates
strongly with *its own* throughput, and with the other CC's RSRP/
throughput only for intra-band CA — for inter-band CA the cross
correlations collapse, so one carrier's features cannot stand in for
another's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..ran.traces import Trace


def pearson(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient with degenerate-input handling."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError("series must have equal length")
    if a.size < 2:
        raise ValueError("need at least 2 samples")
    if a.std() <= 0.0 or b.std() <= 0.0:  # std is non-negative; <= 0 means constant
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def cc_series(trace: Trace, channel_key: str, field: str) -> np.ndarray:
    """Extract one feature of one CC over time (NaN when inactive)."""
    out = np.full(len(trace.records), np.nan)
    for i, rec in enumerate(trace.records):
        for cc in rec.ccs:
            if cc.active and cc.channel_key == channel_key:
                out[i] = getattr(cc, field)
                break
    return out


@dataclass
class CrossCorrelation:
    """The four-panel correlation structure of paper Figs 11-12."""

    pcell_rsrp_vs_pcell_tput: float
    scell_rsrp_vs_scell_tput: float
    pcell_rsrp_vs_scell_tput: float
    scell_rsrp_vs_pcell_tput: float
    pcell_rsrp_vs_scell_rsrp: float  #: Fig 13


def cross_correlations(trace: Trace, pcell_key: str, scell_key: str) -> CrossCorrelation:
    """Compute the paper's RSRP/throughput correlation matrix for 2 CCs."""
    p_rsrp = cc_series(trace, pcell_key, "rsrp_dbm")
    p_tput = cc_series(trace, pcell_key, "tput_mbps")
    s_rsrp = cc_series(trace, scell_key, "rsrp_dbm")
    s_tput = cc_series(trace, scell_key, "tput_mbps")
    both = ~(np.isnan(p_rsrp) | np.isnan(s_rsrp))
    if both.sum() < 10:
        raise ValueError("too few joint-activity samples for correlation")
    return CrossCorrelation(
        pcell_rsrp_vs_pcell_tput=pearson(p_rsrp[both], p_tput[both]),
        scell_rsrp_vs_scell_tput=pearson(s_rsrp[both], s_tput[both]),
        pcell_rsrp_vs_scell_tput=pearson(p_rsrp[both], s_tput[both]),
        scell_rsrp_vs_pcell_tput=pearson(s_rsrp[both], p_tput[both]),
        pcell_rsrp_vs_scell_rsrp=pearson(p_rsrp[both], s_rsrp[both]),
    )


def dominant_pair(trace: Trace) -> Optional[Tuple[str, str]]:
    """Most frequently co-active (PCell, SCell) channel pair in a trace."""
    counts: Dict[Tuple[str, str], int] = {}
    for rec in trace.records:
        pcell = rec.pcell
        if pcell is None:
            continue
        for cc in rec.ccs:
            if cc.active and not cc.is_pcell:
                key = (pcell.channel_key, cc.channel_key)
                counts[key] = counts.get(key, 0) + 1
    if not counts:
        return None
    return max(counts, key=counts.get)
