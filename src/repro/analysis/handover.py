"""PCell-change (handover-like) analysis.

§3.2 of the paper notes that besides SCell activation/deactivation, the
PCell itself may switch bands (e.g. TDD -> FDD with altered power
allocation), adding another source of throughput disruption.  This
module quantifies PCell dynamics over traces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ran.traces import Trace


@dataclass
class PCellChange:
    """One PCell switch occurrence."""

    step: int
    t: float
    from_channel: Optional[str]
    to_channel: str
    from_band_class: Optional[str]
    to_band_class: str


@dataclass
class PCellStats:
    """Aggregate PCell dynamics for one trace."""

    n_changes: int
    mean_interval_s: float
    band_transition_counts: Counter = field(default_factory=Counter)
    tput_drop_pct_around_changes: float = 0.0


def _band_class(band_name: str) -> str:
    from ..ran.bands import BAND_REGISTRY

    band = BAND_REGISTRY.get(band_name)
    return band.band_class if band else "unknown"


def pcell_changes(trace: Trace) -> List[PCellChange]:
    """Extract every PCell switch in a trace."""
    changes: List[PCellChange] = []
    previous: Optional[str] = None
    previous_band: Optional[str] = None
    for step, rec in enumerate(trace.records):
        pcell = rec.pcell
        if pcell is None:
            continue
        if previous is not None and pcell.channel_key != previous:
            changes.append(
                PCellChange(
                    step=step,
                    t=rec.t,
                    from_channel=previous,
                    to_channel=pcell.channel_key,
                    from_band_class=previous_band,
                    to_band_class=_band_class(pcell.band_name),
                )
            )
        previous = pcell.channel_key
        previous_band = _band_class(pcell.band_name)
    return changes


def pcell_statistics(trace: Trace, window_s: float = 5.0) -> PCellStats:
    """Summarize PCell churn and its throughput cost."""
    changes = pcell_changes(trace)
    tput = trace.throughput_series()
    half = max(1, int(window_s / trace.dt_s / 2))
    drops = []
    transitions: Counter = Counter()
    for change in changes:
        transitions[(change.from_band_class, change.to_band_class)] += 1
        lo = max(0, change.step - half)
        before = tput[lo : change.step]
        after = tput[change.step : change.step + half]
        if len(before) and len(after) and before.mean() > 1e-9:
            drops.append((before.mean() - after.mean()) / before.mean() * 100.0)
    intervals = np.diff([c.step for c in changes]) * trace.dt_s if len(changes) > 1 else np.array([])
    return PCellStats(
        n_changes=len(changes),
        mean_interval_s=float(intervals.mean()) if intervals.size else float("inf"),
        band_transition_counts=transitions,
        tput_drop_pct_around_changes=float(np.mean(drops)) if drops else 0.0,
    )


def pcell_band_share(traces: Sequence[Trace]) -> Dict[str, float]:
    """Fraction of connected time each band class serves as PCell."""
    counts: Counter = Counter()
    total = 0
    for trace in traces:
        for rec in trace.records:
            pcell = rec.pcell
            if pcell is None:
                continue
            counts[_band_class(pcell.band_name)] += 1
            total += 1
    if total == 0:
        return {}
    return {band: count / total for band, count in sorted(counts.items())}
