"""Trivial forecasting baselines (persistence, moving average, EWMA)."""

from __future__ import annotations

import numpy as np


class PersistencePredictor:
    """Predict the last observed value for the whole horizon."""

    def predict(self, history: np.ndarray, horizon: int = 1) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64).reshape(-1)
        if history.size == 0:
            raise ValueError("history is empty")
        return np.full(horizon, history[-1])


class MovingAveragePredictor:
    """Predict the arithmetic mean of the last ``window`` samples."""

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def predict(self, history: np.ndarray, horizon: int = 1) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64).reshape(-1)
        if history.size == 0:
            raise ValueError("history is empty")
        return np.full(horizon, history[-self.window:].mean())


class EWMAPredictor:
    """Exponentially weighted moving-average forecaster."""

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha

    def predict(self, history: np.ndarray, horizon: int = 1) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64).reshape(-1)
        if history.size == 0:
            raise ValueError("history is empty")
        level = history[0]
        for value in history[1:]:
            level = self.alpha * value + (1.0 - self.alpha) * level
        return np.full(horizon, level)
