"""Harmonic-mean throughput estimator (stock MPC predictor, Yin et al. [50])."""

from __future__ import annotations

import numpy as np


def harmonic_mean(values: np.ndarray, eps: float = 1e-9) -> float:
    """Harmonic mean of positive samples; robust to outlier spikes.

    Non-positive samples are floored at ``eps`` so a single zero sample
    (e.g. a stall) does not collapse the estimate to zero permanently.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 0:
        raise ValueError("cannot take harmonic mean of empty data")
    values = np.maximum(values, eps)
    return float(len(values) / np.sum(1.0 / values))


class HarmonicMeanPredictor:
    """Predict future throughput as the harmonic mean of recent history.

    This is MPC's default bandwidth estimator: conservative (dominated
    by low samples), horizon-constant.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def predict(self, history: np.ndarray, horizon: int = 1) -> np.ndarray:
        history = np.asarray(history, dtype=np.float64).reshape(-1)
        if history.size == 0:
            raise ValueError("history is empty")
        estimate = harmonic_mean(history[-self.window:])
        return np.full(horizon, estimate)

    def predict_series(self, y: np.ndarray, horizon: int = 1) -> np.ndarray:
        """Row i = forecast after observing ``y[:i+1]``; shape (n, horizon)."""
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        out = np.empty((len(y), horizon))
        for i in range(len(y)):
            out[i] = self.predict(y[: i + 1], horizon)
        return out
