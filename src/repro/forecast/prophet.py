"""Structural time-series forecaster standing in for Facebook Prophet.

The paper uses Prophet [44] as its statistics-only baseline, evaluated
with a rolling refit ("cross-validation schema", Appendix C.1): at each
step the model is refit on all history seen so far and extrapolated
over the horizon.  Prophet's core is a decomposable model

    y(t) = trend(t) + seasonality(t) + noise

with a piecewise-linear trend (changepoints) and Fourier seasonal
terms, fit by (regularized) least squares.  We implement exactly that
decomposition with a ridge fit, which preserves the property the paper
relies on: a pure extrapolator with no radio features badly misjudges
CA transitions (Fig 35).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class StructuralProphet:
    """Piecewise-linear trend + Fourier seasonality, ridge-fitted.

    Parameters
    ----------
    n_changepoints:
        Number of potential trend changepoints placed uniformly over the
        first 80% of the history (Prophet's default placement rule).
    season_period:
        Seasonality period in samples; ``None`` disables seasonality.
    fourier_order:
        Number of Fourier harmonics for the seasonal component.
    alpha:
        Ridge regularization strength (plays the role of Prophet's
        sparse changepoint prior).
    """

    def __init__(
        self,
        n_changepoints: int = 10,
        season_period: Optional[int] = None,
        fourier_order: int = 3,
        alpha: float = 1.0,
    ) -> None:
        self.n_changepoints = n_changepoints
        self.season_period = season_period
        self.fourier_order = fourier_order
        self.alpha = alpha
        self._coef: Optional[np.ndarray] = None
        self._t_scale: float = 1.0
        self._changepoints: np.ndarray = np.empty(0)

    # ------------------------------------------------------------------
    def _design(self, t: np.ndarray) -> np.ndarray:
        """Build the regression design matrix at (scaled) times ``t``."""
        cols = [np.ones_like(t), t]
        for cp in self._changepoints:
            cols.append(np.maximum(t - cp, 0.0))
        if self.season_period:
            period = self.season_period / self._t_scale
            for k in range(1, self.fourier_order + 1):
                angle = 2.0 * np.pi * k * t / period
                cols.append(np.sin(angle))
                cols.append(np.cos(angle))
        return np.column_stack(cols)

    def fit(self, y: np.ndarray) -> "StructuralProphet":
        """Fit on a 1-D history ``y`` indexed by 0..n-1."""
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        n = len(y)
        if n < 3:
            raise ValueError("need at least 3 samples to fit")
        self._t_scale = float(max(n - 1, 1))
        t = np.arange(n) / self._t_scale
        k = min(self.n_changepoints, max(n // 4, 0))
        self._changepoints = np.linspace(0.0, 0.8, k + 2)[1:-1] if k > 0 else np.empty(0)
        design = self._design(t)
        gram = design.T @ design + self.alpha * np.eye(design.shape[1])
        self._coef = np.linalg.solve(gram, design.T @ y)
        return self

    def predict(self, horizon: int, start: Optional[int] = None) -> np.ndarray:
        """Extrapolate ``horizon`` steps beyond the fitted history.

        ``start`` defaults to the first step after the training window.
        """
        if self._coef is None:
            raise RuntimeError("model has not been fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        n_train = int(round(self._t_scale)) + 1
        start = n_train if start is None else start
        t = (start + np.arange(horizon)) / self._t_scale
        return self._design(t) @ self._coef


class RollingProphet:
    """Rolling-refit evaluation wrapper matching the paper's protocol.

    At each prediction time, refit :class:`StructuralProphet` on the most
    recent ``window`` samples (all history if ``window`` is None) and
    predict the next ``horizon`` values.
    """

    def __init__(
        self,
        horizon: int,
        window: Optional[int] = 60,
        min_history: int = 10,
        **prophet_kwargs,
    ) -> None:
        self.horizon = horizon
        self.window = window
        self.min_history = max(min_history, 3)
        self.prophet_kwargs = prophet_kwargs

    def predict_series(self, y: np.ndarray) -> np.ndarray:
        """Forecast matrix of shape (len(y), horizon).

        Row ``i`` holds the forecast for steps ``i+1 .. i+horizon`` given
        history ``y[:i+1]``.  Rows with insufficient history repeat the
        last observed value (persistence fallback).
        """
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        out = np.empty((len(y), self.horizon))
        for i in range(len(y)):
            history = y[: i + 1]
            if self.window is not None:
                history = history[-self.window:]
            if len(history) < self.min_history:
                out[i] = history[-1]
                continue
            model = StructuralProphet(**self.prophet_kwargs).fit(history)
            out[i] = model.predict(self.horizon)
        return out
