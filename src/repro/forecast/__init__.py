"""Statistical forecasting baselines (Prophet substitute, harmonic mean)."""

from .baselines import EWMAPredictor, MovingAveragePredictor, PersistencePredictor
from .harmonic import HarmonicMeanPredictor, harmonic_mean
from .metrics import bias, forecast_report, horizon_rmse, mase, smape
from .prophet import RollingProphet, StructuralProphet

__all__ = [
    "EWMAPredictor",
    "HarmonicMeanPredictor",
    "MovingAveragePredictor",
    "PersistencePredictor",
    "RollingProphet",
    "StructuralProphet",
    "bias",
    "forecast_report",
    "harmonic_mean",
    "horizon_rmse",
    "mase",
    "smape",
]
