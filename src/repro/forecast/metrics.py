"""Forecast-quality metrics beyond plain RMSE.

Used by the evaluation notebooks/benches to slice prediction quality:
per-horizon-step error curves, scale-free errors (sMAPE, MASE), and
over/under-estimation bias — the quantity behind the paper's Z1/Z2
transition analysis (naive models over-estimate after CC drops).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def _check(pred: np.ndarray, target: np.ndarray) -> tuple:
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if pred.size == 0:
        raise ValueError("empty inputs")
    return pred, target


def horizon_rmse(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Per-step RMSE over the forecast horizon; inputs are (n, H)."""
    pred, target = _check(pred, target)
    if pred.ndim != 2:
        raise ValueError("expected (n, horizon) arrays")
    return np.sqrt(np.mean((pred - target) ** 2, axis=0))


def smape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-9) -> float:
    """Symmetric MAPE in percent (bounded in [0, 200])."""
    pred, target = _check(pred, target)
    denom = np.maximum((np.abs(pred) + np.abs(target)) / 2.0, eps)
    return float(np.mean(np.abs(pred - target) / denom) * 100.0)


def mase(pred: np.ndarray, target: np.ndarray, history: np.ndarray) -> float:
    """Mean absolute scaled error vs the naive persistence forecaster.

    ``history`` is the (n, T) history whose last value seeds the naive
    forecast; MASE < 1 means the model beats persistence.
    """
    pred, target = _check(pred, target)
    history = np.asarray(history, dtype=np.float64)
    if history.ndim != 2 or len(history) != len(pred):
        raise ValueError("history must be (n, T) aligned with pred")
    naive = np.repeat(history[:, -1:], target.shape[1], axis=1)
    naive_mae = np.mean(np.abs(naive - target))
    if naive_mae < 1e-12:
        raise ValueError("persistence error is zero; MASE undefined")
    return float(np.mean(np.abs(pred - target)) / naive_mae)


def bias(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean signed error: positive = over-estimation."""
    pred, target = _check(pred, target)
    return float(np.mean(pred - target))


def forecast_report(pred: np.ndarray, target: np.ndarray, history: np.ndarray) -> Dict[str, float]:
    """All scalar metrics in one dict."""
    return {
        "rmse": float(np.sqrt(np.mean((np.asarray(pred) - np.asarray(target)) ** 2))),
        "smape_pct": smape(pred, target),
        "mase": mase(pred, target, history),
        "bias": bias(pred, target),
    }
