"""Tree-based regressors (CART, random forest, gradient boosting)."""

from .boosting import GradientBoostingRegressor
from .forest import RandomForestRegressor
from .tree import DecisionTreeRegressor

__all__ = ["DecisionTreeRegressor", "GradientBoostingRegressor", "RandomForestRegressor"]
