"""CART regression tree (variance-reduction splitting).

Substrate for the paper's classical-ML baselines: Lumos5G's GBDT [32]
and the random-forest predictor of Alimpertis et al. [4].  Implemented
from scratch since scikit-learn is unavailable offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Binary tree node; leaves have ``value`` set and no children."""

    value: float = 0.0
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree minimizing within-node squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root is depth 0).
    min_samples_split:
        Minimum samples required to attempt a split.
    min_samples_leaf:
        Minimum samples allowed in each child.
    max_features:
        Number of features considered per split (``None`` = all);
        used by random forests for decorrelation.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = max(min_samples_split, 2)
        self.min_samples_leaf = max(min_samples_leaf, 1)
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: Optional[_Node] = None
        self.n_features_: int = 0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (samples, features)")
        if len(x) != len(y):
            raise ValueError("x and y must have equal length")
        if len(x) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_features_ = x.shape[1]
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples_split or np.ptp(y) <= 0.0:
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> Optional[tuple]:
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self.rng.choice(d, size=self.max_features, replace=False)
        best_gain, best = 0.0, None
        total_sum, total_sq = y.sum(), (y * y).sum()
        base_sse = total_sq - total_sum ** 2 / n
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys = x[order, feature], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            # candidate split after position i (1-indexed counts)
            counts = np.arange(1, n)
            left_sse = csq[:-1] - csum[:-1] ** 2 / counts
            right_counts = n - counts
            right_sum = total_sum - csum[:-1]
            right_sq = total_sq - csq[:-1]
            right_sse = right_sq - right_sum ** 2 / right_counts
            gain = base_sse - (left_sse + right_sse)
            # forbid splits between identical feature values and tiny leaves
            valid = (xs[1:] > xs[:-1]) & (counts >= self.min_samples_leaf) & (right_counts >= self.min_samples_leaf)
            gain = np.where(valid, gain, -np.inf)
            idx = int(np.argmax(gain))
            if gain[idx] > best_gain + 1e-12:
                best_gain = gain[idx]
                best = (int(feature), float((xs[idx] + xs[idx + 1]) / 2.0))
        return best

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features_:
            raise ValueError(f"expected shape (n, {self.n_features_})")
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return walk(self._root)
