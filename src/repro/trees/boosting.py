"""Gradient-boosted regression trees (least-squares boosting).

Implements the GBDT baseline used by Lumos5G [32]: stage-wise fitting
of shallow CART trees to residuals, with shrinkage and optional
row subsampling (stochastic gradient boosting).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Least-squares gradient boosting over CART trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.init_: float = 0.0
        self.trees_: List[DecisionTreeRegressor] = []

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
        early_stopping_rounds: Optional[int] = None,
    ) -> "GradientBoostingRegressor":
        """Fit; optionally early-stop on a validation set."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        rng = np.random.default_rng(self.seed)
        n = len(x)
        self.init_ = float(y.mean())
        self.trees_ = []
        pred = np.full(n, self.init_)
        val_pred = None
        best_val, best_len, stale = np.inf, 0, 0
        if x_val is not None:
            x_val = np.asarray(x_val, dtype=np.float64)
            y_val = np.asarray(y_val, dtype=np.float64).reshape(-1)
            val_pred = np.full(len(x_val), self.init_)
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                idx = slice(None)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=np.random.default_rng(rng.integers(0, 2**31)),
            )
            tree.fit(x[idx], residual[idx])
            self.trees_.append(tree)
            pred = pred + self.learning_rate * tree.predict(x)
            if val_pred is not None:
                val_pred = val_pred + self.learning_rate * tree.predict(x_val)
                val_rmse = float(np.sqrt(np.mean((val_pred - y_val) ** 2)))
                if val_rmse < best_val - 1e-12:
                    best_val, best_len, stale = val_rmse, len(self.trees_), 0
                else:
                    stale += 1
                    if early_stopping_rounds is not None and stale >= early_stopping_rounds:
                        break
        if val_pred is not None and best_len:
            self.trees_ = self.trees_[:best_len]
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("model has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        pred = np.full(len(x), self.init_)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict(x)
        return pred

    def staged_predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions after each boosting stage, shape (stages, n)."""
        if not self.trees_:
            raise RuntimeError("model has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        pred = np.full(len(x), self.init_)
        stages = []
        for tree in self.trees_:
            pred = pred + self.learning_rate * tree.predict(x)
            stages.append(pred.copy())
        return np.stack(stages)
