"""Random forest regressor (bagged CART trees with feature subsampling)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees.

    ``max_features`` defaults to ``ceil(sqrt(d))`` as is conventional for
    regression forests used in signal-map prediction [4].
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: Optional[str] = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: List[DecisionTreeRegressor] = []

    def _resolve_max_features(self, d: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(d))))
        if isinstance(self.max_features, int):
            return min(self.max_features, d)
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        max_features = self._resolve_max_features(d)
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2**31)),
            )
            tree.fit(x[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest has not been fitted")
        preds = np.stack([tree.predict(x) for tree in self.trees_])
        return preds.mean(axis=0)
