"""Gradient-descent optimizers (SGD with momentum, Adam).

The paper trains all deep models with Adam (lr=0.01, batch 128); we
implement Adam exactly as in Kingma & Ba (2014), including bias
correction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: List[Tensor], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: List[Tensor], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                v = self._velocity.get(id(param))
                if v is None:
                    v = param.grad.copy()
                    self._velocity[id(param)] = v
                else:
                    np.multiply(v, self.momentum, out=v)
                    np.add(v, param.grad, out=v)
                param.data -= self.lr * v
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 0.01,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        grad_clip: Optional[float] = None,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1 - self.beta1 ** self._t
        bias2 = 1 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            key = id(param)
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = self._m[key] = np.zeros_like(param.data)
                v = self._v[key] = np.zeros_like(param.data)
            # first/second moments updated in place (no per-step reallocs)
            np.multiply(m, self.beta1, out=m)
            np.add(m, (1 - self.beta1) * grad, out=m)
            np.multiply(v, self.beta2, out=v)
            np.add(v, (1 - self.beta2) * grad * grad, out=v)
            # update = lr * m_hat / (sqrt(v_hat) + eps), built in one buffer
            update = np.sqrt(v / bias2)
            update += self.eps
            np.divide(m, update, out=update)
            update *= self.lr / bias1
            param.data -= update
