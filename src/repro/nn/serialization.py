"""Save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from .modules import Module


def save_state(model: Module, path: Union[str, Path]) -> None:
    """Write ``model.state_dict()`` to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **model.state_dict())


def load_state(model: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_state` into ``model``."""
    with np.load(Path(path)) as archive:
        model.load_state_dict({key: archive[key] for key in archive.files})
