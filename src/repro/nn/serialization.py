"""Save/load module parameters as ``.npz`` archives.

Checkpoints carry a versioned JSON metadata header (stored as a 0-d
string array under ``__meta__``): the schema version, the producing
module class, every parameter's shape, and arbitrary caller metadata
(the predictor registry stores its name + build args there, making
checkpoints self-describing).  :func:`load_state` validates the header
against the target model *before* touching any weights, so loading a
checkpoint into a mismatched architecture fails with a clear error
naming the offending parameters instead of a shape crash mid-forward.
Header-less archives written by older versions still load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from .modules import Module

#: bump when the checkpoint layout changes incompatibly.
CHECKPOINT_SCHEMA = "repro-checkpoint-v1"

#: archive key holding the JSON metadata header.
META_KEY = "__meta__"


def save_state(model: Module, path: Union[str, Path], metadata: Optional[Mapping] = None) -> None:
    """Write ``model.state_dict()`` plus a versioned metadata header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    meta = {
        "schema": CHECKPOINT_SCHEMA,
        "model": type(model).__name__,
        "shapes": {name: list(value.shape) for name, value in state.items()},
        "metadata": dict(metadata) if metadata is not None else {},
    }
    np.savez(path, **state, **{META_KEY: np.array(json.dumps(meta, sort_keys=True))})


def read_checkpoint_metadata(path: Union[str, Path]) -> Optional[Dict]:
    """The metadata header of a checkpoint, or ``None`` for legacy files."""
    with np.load(Path(path)) as archive:
        if META_KEY not in archive.files:
            return None
        raw = str(archive[META_KEY][()])
    try:
        meta = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"{path}: corrupt checkpoint metadata header: {exc}") from exc
    if not isinstance(meta, dict):
        raise ValueError(f"{path}: corrupt checkpoint metadata header (not an object)")
    return meta


def _check_compatible(model: Module, meta: Dict, path: Path) -> None:
    """Raise a descriptive ``ValueError`` unless the header matches ``model``."""
    own = {name: param.data.shape for name, param in model.named_parameters()}
    saved = {name: tuple(shape) for name, shape in (meta.get("shapes") or {}).items()}
    missing = sorted(set(own) - set(saved))
    unexpected = sorted(set(saved) - set(own))
    mismatched = [
        f"{name}: checkpoint {saved[name]} vs model {tuple(own[name])}"
        for name in sorted(set(own) & set(saved))
        if saved[name] != tuple(own[name])
    ]
    if missing or unexpected or mismatched:
        raise ValueError(
            f"{path}: checkpoint does not match {type(model).__name__} "
            f"(saved from {meta.get('model', '?')}): "
            f"missing={missing}, unexpected={unexpected}, shape mismatches={mismatched}"
        )


def load_state(model: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_state` into ``model``.

    When the archive has a metadata header, parameter names and shapes
    are validated against it up front; architecture mismatches raise
    ``ValueError`` with the full list of offenders.
    """
    path = Path(path)
    meta = read_checkpoint_metadata(path)
    if meta is not None:
        _check_compatible(model, meta, path)
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files if key != META_KEY}
    model.load_state_dict(state)
