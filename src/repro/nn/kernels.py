"""Fused autograd primitives: graph bookkeeping over backend dispatch.

The op-by-op LSTM/GRU cell composition records ~15 graph nodes per
timestep (two matmuls, adds, four slices, four nonlinearities, the
elementwise state update).  The primitives here record one or two nodes
per layer/step with a hand-written, fully vectorized backward — and
delegate **all array math** to the active compute backend
(:mod:`repro.backends`):

* this module owns the autograd contract: Tensor construction, parent
  wiring, ``requires_grad`` propagation, gradient accumulation and
  broadcast reduction;
* the backend owns the numbers: each ``*_forward`` returns values plus
  an opaque ``saved`` payload that this module hands back to the
  *same* backend's ``*_backward`` (the backend is captured per call,
  so flipping the ``backend`` flag mid-step cannot mismatch a
  forward/backward pair).

With the default numpy backend the math is extracted verbatim from the
pre-refactor kernels, so forward values are bit-identical to the
op-by-op oracle (see tests/test_nn_fused.py).

reprolint RL007 guards this split: no direct ``np.*`` compute calls are
allowed here — array math belongs in a registered backend (opt-out:
``# lint: backend-impl``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import backends, obs
from . import tensor as _tensor
from .tensor import Tensor, _unbroadcast


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _accumulate_from(grads: dict, pairs) -> None:
    """Push backend-computed raw gradients into their tensors."""
    for tensor, key in pairs:
        grad = grads.get(key)
        if grad is not None:
            tensor._accumulate(grad)


def affine(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    h: Optional[Tensor] = None,
    weight_h: Optional[Tensor] = None,
) -> Tensor:
    """Fused ``x @ weight [+ h @ weight_h] [+ bias]`` as one graph node.

    Replaces the 2-3 node chain an op-by-op composition would record.
    Weights must be 2-D ``(in, out)``; ``x``/``h`` may carry leading
    batch/time axes.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if (h is None) != (weight_h is None):
        raise ValueError("h and weight_h must be passed together")
    if h is not None:
        h = _as_tensor(h)
        weight_h = _as_tensor(weight_h)
    if bias is not None:
        bias = _as_tensor(bias)
    be = backends.active()
    value = be.affine_forward(
        x.data,
        weight.data,
        h.data if h is not None else None,
        weight_h.data if weight_h is not None else None,
        bias.data if bias is not None else None,
    )
    operands = [t for t in (x, weight, h, weight_h, bias) if t is not None]
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in operands)
    out = Tensor(value, requires_grad=requires, _parents=tuple(operands) if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        needs = {
            "x": x.requires_grad,
            "weight": weight.requires_grad,
            "h": h is not None and h.requires_grad,
            "weight_h": weight_h is not None and weight_h.requires_grad,
            "bias": bias is not None and bias.requires_grad,
        }
        grads = be.affine_backward(
            out.grad,
            x.data,
            weight.data,
            h.data if h is not None else None,
            weight_h.data if weight_h is not None else None,
            needs,
        )
        _accumulate_from(grads, ((x, "x"), (weight, "weight")))
        if h is not None:
            _accumulate_from(grads, ((h, "h"), (weight_h, "weight_h")))
        if needs["bias"]:
            bias._accumulate(_unbroadcast(grads["bias"], bias.shape))

    out._backward = _backward
    return out


def lstm_cell(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused LSTM step (gates packed ``[i, f, g, o]``): two graph nodes.

    Returns ``(h, c)``.  ``c`` is recorded as ``h``'s parent so the
    output-gate gradient computed in ``h``'s backward can be folded into
    the single gate-gradient matmul of ``c``'s backward.
    """
    x, h_prev, c_prev = _as_tensor(x), _as_tensor(h_prev), _as_tensor(c_prev)
    be = backends.active()
    h_val, c_val, saved = be.lstm_cell_forward(
        x.data, h_prev.data, c_prev.data, weight_ih.data, weight_hh.data, bias.data
    )

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in parents)
    c_out = Tensor(c_val, requires_grad=requires, _parents=parents if requires else ())
    h_out = Tensor(h_val, requires_grad=requires, _parents=(c_out,) if requires else ())
    if not requires:
        return h_out, c_out

    shared: dict = {}

    def _h_backward() -> None:
        dc_from_h, d_o = be.lstm_cell_backward_h(h_out.grad, saved)
        c_out._accumulate(dc_from_h)
        shared["d_o"] = d_o

    def _c_backward() -> None:
        needs = {
            "c_prev": c_prev.requires_grad,
            "x": x.requires_grad,
            "h_prev": h_prev.requires_grad,
            "weight_ih": weight_ih.requires_grad,
            "weight_hh": weight_hh.requires_grad,
            "bias": bias.requires_grad,
        }
        # d_o is None when h was not part of the loss (only c flowed on)
        grads = be.lstm_cell_backward_c(
            c_out.grad,
            shared.pop("d_o", None),
            saved,
            x.data,
            h_prev.data,
            c_prev.data,
            weight_ih.data,
            weight_hh.data,
            needs,
        )
        _accumulate_from(
            grads,
            (
                (c_prev, "c_prev"),
                (x, "x"),
                (h_prev, "h_prev"),
                (weight_ih, "weight_ih"),
                (weight_hh, "weight_hh"),
                (bias, "bias"),
            ),
        )

    h_out._backward = _h_backward
    c_out._backward = _c_backward
    return h_out, c_out


def gru_cell(
    x: Tensor,
    h_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tensor:
    """Fused GRU step (gates packed ``[r, z]``): one graph node."""
    x, h_prev = _as_tensor(x), _as_tensor(h_prev)
    be = backends.active()
    h_val, saved = be.gru_cell_forward(
        x.data,
        h_prev.data,
        weight_ih.data,
        weight_hh.data,
        bias.data,
        weight_in.data,
        weight_hn.data,
        bias_n.data,
    )

    parents = (x, h_prev, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in parents)
    out = Tensor(h_val, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        needs = {
            "x": x.requires_grad,
            "h_prev": h_prev.requires_grad,
            "weight_ih": weight_ih.requires_grad,
            "weight_hh": weight_hh.requires_grad,
            "bias": bias.requires_grad,
            "weight_in": weight_in.requires_grad,
            "weight_hn": weight_hn.requires_grad,
            "bias_n": bias_n.requires_grad,
        }
        grads = be.gru_cell_backward(
            out.grad,
            saved,
            x.data,
            h_prev.data,
            weight_ih.data,
            weight_hh.data,
            weight_in.data,
            weight_hn.data,
            needs,
        )
        _accumulate_from(
            grads,
            (
                (x, "x"),
                (h_prev, "h_prev"),
                (weight_ih, "weight_ih"),
                (weight_hh, "weight_hh"),
                (bias, "bias"),
                (weight_in, "weight_in"),
                (weight_hn, "weight_hn"),
                (bias_n, "bias_n"),
            ),
        )

    out._backward = _backward
    return out


def lstm_seq(
    x: Tensor,
    h0: Tensor,
    c0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor, Tensor]:
    """Fused single-layer LSTM over a whole ``(B, T, F)`` sequence.

    One graph node for the entire layer (plus a slice node for the
    final hidden state): the input projection ``x @ W_ih`` is hoisted
    out of the time loop as one batched matmul, and the backward is a
    hand-written BPTT sweep whose weight gradients collapse into single
    ``(B*T, ·)`` matmuls.  Per-step arithmetic matches the op-by-op
    cell composition exactly on the numpy backend (same expression
    order), so forward values are bit-identical to :func:`lstm_cell` /
    the reference cell; compiled backends carry a tolerance contract
    instead.

    Returns ``(outputs, h_T, c_T)`` with outputs ``(B, T, H)``.
    """
    if obs.metrics_enabled():
        obs.counter("kernel.lstm_seq")
    x, h0, c0 = _as_tensor(x), _as_tensor(h0), _as_tensor(c0)
    parents = (x, h0, c0, weight_ih, weight_hh, bias)
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in parents)
    be = backends.active()
    outputs, c, saved = be.lstm_seq_forward(
        x.data, h0.data, c0.data, weight_ih.data, weight_hh.data, bias.data, requires
    )

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    c_t = Tensor(c, requires_grad=requires, _parents=(out_t,) if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :], c_t

    shared: dict = {}

    def _c_backward() -> None:
        shared["dc_T"] = c_t.grad.copy()
        # make sure the sequence node's backward fires even when only
        # the cell state flows into the loss
        out_t._accumulate(np.zeros_like(outputs))

    def _backward() -> None:
        needs = {
            "x": x.requires_grad,
            "h0": h0.requires_grad,
            "c0": c0.requires_grad,
            "weight_ih": weight_ih.requires_grad,
            "weight_hh": weight_hh.requires_grad,
            "bias": bias.requires_grad,
        }
        grads = be.lstm_seq_backward(
            out_t.grad,
            shared.pop("dc_T", None),
            saved,
            x.data,
            h0.data,
            weight_ih.data,
            weight_hh.data,
            needs,
        )
        _accumulate_from(
            grads,
            (
                (h0, "h0"),
                (c0, "c0"),
                (x, "x"),
                (weight_ih, "weight_ih"),
                (weight_hh, "weight_hh"),
                (bias, "bias"),
            ),
        )

    out_t._backward = _backward
    c_t._backward = _c_backward
    return out_t, out_t[:, -1, :], c_t


def gru_seq(
    x: Tensor,
    h0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused single-layer GRU over a ``(B, T, F)`` sequence.

    Same design as :func:`lstm_seq`: hoisted input projections, one
    graph node per layer, hand-written BPTT.  Returns
    ``(outputs, h_T)``.
    """
    if obs.metrics_enabled():
        obs.counter("kernel.gru_seq")
    x, h0 = _as_tensor(x), _as_tensor(h0)
    parents = (x, h0, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in parents)
    be = backends.active()
    outputs, saved = be.gru_seq_forward(
        x.data,
        h0.data,
        weight_ih.data,
        weight_hh.data,
        bias.data,
        weight_in.data,
        weight_hn.data,
        bias_n.data,
        requires,
    )

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :]

    def _backward() -> None:
        needs = {
            "x": x.requires_grad,
            "h0": h0.requires_grad,
            "weight_ih": weight_ih.requires_grad,
            "weight_hh": weight_hh.requires_grad,
            "bias": bias.requires_grad,
            "weight_in": weight_in.requires_grad,
            "weight_hn": weight_hn.requires_grad,
            "bias_n": bias_n.requires_grad,
        }
        grads = be.gru_seq_backward(
            out_t.grad,
            saved,
            x.data,
            weight_ih.data,
            weight_hh.data,
            weight_in.data,
            weight_hn.data,
            needs,
        )
        _accumulate_from(
            grads,
            (
                (h0, "h0"),
                (x, "x"),
                (weight_ih, "weight_ih"),
                (weight_hh, "weight_hh"),
                (bias, "bias"),
                (weight_in, "weight_in"),
                (weight_hn, "weight_hn"),
                (bias_n, "bias_n"),
            ),
        )

    out_t._backward = _backward
    return out_t, out_t[:, -1, :]


def lstm_decoder_seq(
    y0: Tensor,
    h0: Tensor,
    c0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_out: Tensor,
    bias_out: Tensor,
    horizon: int,
    out_chunks: int = 1,
) -> Tensor:
    """Fused autoregressive LSTM decoder rollout: one graph node.

    Runs ``horizon`` feedback steps of the Seq2Seq decoder discipline

        h_t, c_t = LSTMCell(y_{t-1}, (h_{t-1}, c_{t-1}))
        y_t      = h_t @ W_out + b_out

    where each step's prediction is the next step's input, so the whole
    rollout is inherently sequential — but every step is *one* batched
    ``lstm_cell``-equivalent over however many sequences (or carriers
    folded into the batch axis) are decoded at once.  The op-by-op loop
    records ``horizon * 3`` graph nodes; this primitive records one,
    with a hand-written BPTT whose weight gradients collapse into single
    ``(B*T, ·)`` matmuls.  Per-step arithmetic matches
    :func:`lstm_cell` + :func:`affine` exactly on the numpy backend
    (same expression order), so forward values are bit-identical to the
    loop composition.

    Returns the predictions as ``(B, horizon, O)`` where ``O`` is the
    head's output width (= the cell's input width, by feedback).

    ``out_chunks`` splits the head projection ``h_t @ W_out`` into that
    many equal row groups.  BLAS dispatches narrow matmuls (``O`` of 1)
    to a GEMV path whose rounding depends on the row count, so a rollout
    over carriers folded to ``B·C`` rows would drift from the per-carrier
    loop by ~1 ulp per step — compounding through the feedback.  Callers
    that fold C carriers carrier-major pass ``out_chunks=C`` so each
    group is projected at the same row count the loop oracle uses,
    keeping the fold bit-identical.  The wide gate matmuls are row-count
    invariant and stay fully batched.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if out_chunks < 1:
        raise ValueError("out_chunks must be >= 1")
    if obs.metrics_enabled():
        obs.counter("kernel.lstm_decoder_seq")
    y0, h0, c0 = _as_tensor(y0), _as_tensor(h0), _as_tensor(c0)
    batch = h0.data.shape[0]
    out_features = weight_out.data.shape[1]
    if weight_ih.data.shape[0] != out_features:
        raise ValueError(
            f"feedback width mismatch: cell input {weight_ih.data.shape[0]} "
            f"!= head output {out_features}"
        )
    if batch % out_chunks:
        raise ValueError(f"batch {batch} not divisible by out_chunks {out_chunks}")
    parents = (y0, h0, c0, weight_ih, weight_hh, bias, weight_out, bias_out)
    requires = _tensor.is_grad_enabled() and any(t.requires_grad for t in parents)
    be = backends.active()
    outputs, saved = be.lstm_decoder_forward(
        y0.data,
        h0.data,
        c0.data,
        weight_ih.data,
        weight_hh.data,
        bias.data,
        weight_out.data,
        bias_out.data,
        horizon,
        out_chunks,
        requires,
    )

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out_t

    def _backward() -> None:
        needs = {
            "y0": y0.requires_grad,
            "h0": h0.requires_grad,
            "c0": c0.requires_grad,
            "weight_ih": weight_ih.requires_grad,
            "weight_hh": weight_hh.requires_grad,
            "bias": bias.requires_grad,
            "weight_out": weight_out.requires_grad,
            "bias_out": bias_out.requires_grad,
        }
        grads = be.lstm_decoder_backward(
            out_t.grad,
            saved,
            y0.data,
            h0.data,
            weight_ih.data,
            weight_hh.data,
            weight_out.data,
            needs,
        )
        _accumulate_from(
            grads,
            (
                (y0, "y0"),
                (h0, "h0"),
                (c0, "c0"),
                (weight_ih, "weight_ih"),
                (weight_hh, "weight_hh"),
                (bias, "bias"),
                (weight_out, "weight_out"),
                (bias_out, "bias_out"),
            ),
        )

    out_t._backward = _backward
    return out_t
