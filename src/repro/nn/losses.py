"""Loss functions and regression metrics.

The paper trains and reports with RMSE on min-max normalized
throughput (Table 4 values are in normalized units); we provide the
same, plus MAE/MAPE helpers used in analysis.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (differentiable)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def rmse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Root mean squared error (differentiable)."""
    return mse_loss(pred, target).sqrt()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (differentiable)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    return (pred - target).abs().mean()


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """RMSE on plain arrays (evaluation metric)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.sqrt(np.mean((pred - target) ** 2)))


def mae(pred: np.ndarray, target: np.ndarray) -> float:
    """MAE on plain arrays."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.mean(np.abs(pred - target)))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error (%); small targets are floored."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    return float(np.mean(np.abs(pred - target) / np.maximum(np.abs(target), eps)) * 100.0)
