"""Generic mini-batch training loop with validation-based model selection.

Mirrors the paper's protocol (Appendix C.1): Adam, RMSE loss, the best
epoch chosen on the validation set, early stopping with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..backends import arena
from .losses import mse_loss
from .modules import Module
from .optim import Adam
from .tensor import Tensor, no_grad


def stack_trace_windows(
    trace_pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack per-trace window arrays into one training set.

    ``trace_pairs`` is a sequence of ``(x_i, y_i)`` with ``x_i`` of shape
    ``(n_i, T, F)`` (or ``(n_i, F)``) and matching ``y_i``; the result
    concatenates along the sample axis so one :meth:`Trainer.fit` call
    trains on every trace at once.  Each fused-kernel invocation then
    sweeps ``B·N`` stacked windows instead of one small per-trace batch,
    amortizing the per-call dispatch/BLAS setup cost that dominates
    many-small-traces training (see ``benchmarks/bench_perf_training.py``).
    """
    if not trace_pairs:
        raise ValueError("trace_pairs must contain at least one (x, y) pair")
    xs, ys = [], []
    for i, (x_i, y_i) in enumerate(trace_pairs):
        x_i = np.asarray(x_i)
        y_i = np.asarray(y_i)
        if len(x_i) != len(y_i):
            raise ValueError(f"trace {i}: x has {len(x_i)} windows but y has {len(y_i)}")
        xs.append(x_i)
        ys.append(y_i)
    base_x, base_y = xs[0].shape[1:], ys[0].shape[1:]
    for i, (x_i, y_i) in enumerate(zip(xs, ys)):
        if x_i.shape[1:] != base_x or y_i.shape[1:] != base_y:
            raise ValueError(
                f"trace {i} window shape {x_i.shape[1:]}/{y_i.shape[1:]} "
                f"does not match trace 0 ({base_x}/{base_y})"
            )
    return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)


@dataclass
class TrainingHistory:
    """Per-epoch loss curves plus the selected (best) epoch."""

    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class Trainer:
    """Train a model whose ``forward`` maps input batch -> prediction Tensor.

    Parameters
    ----------
    model:
        Any :class:`Module`.
    loss_fn:
        Differentiable loss ``(pred, target) -> Tensor``; defaults to MSE
        (equivalent to optimizing RMSE).
    forward_fn:
        Optional override used when the model requires non-array inputs
        (e.g. Prism5G takes an extra mask); called as
        ``forward_fn(model, x_batch)``.
    """

    def __init__(
        self,
        model: Module,
        lr: float = 0.01,
        batch_size: int = 128,
        max_epochs: int = 200,
        patience: int = 20,
        loss_fn: Callable[[Tensor, Tensor], Tensor] = mse_loss,
        forward_fn: Optional[Callable] = None,
        grad_clip: Optional[float] = 5.0,
        seed: int = 0,
        verbose: bool = False,
    ) -> None:
        self.model = model
        self.optimizer = Adam(model.parameters(), lr=lr, grad_clip=grad_clip)
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.loss_fn = loss_fn
        self.forward_fn = forward_fn or (lambda model, x: model(Tensor(x)))
        self.rng = np.random.default_rng(seed)
        self.seed = seed
        self.verbose = verbose
        #: the last :meth:`fit`'s history (``None`` before any fit, and
        #: for trainers rebuilt from a checkpoint).
        self.history: Optional[TrainingHistory] = None
        # set by fit_traces for the duration of its fit (manifest stamp)
        self._n_traces: Optional[int] = None

    def _epoch(self, x: np.ndarray, y: np.ndarray, train: bool) -> float:
        n = len(x)
        order = self.rng.permutation(n) if train else np.arange(n)
        total, count = 0.0, 0
        self.model.train(train)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            # open a fresh arena step window: kernel scratch from the
            # previous batch is dead by now, so its buffers get recycled
            arena.begin_step()
            if train:
                pred = self.forward_fn(self.model, x[idx])
                loss = self.loss_fn(pred, Tensor(y[idx]))
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
            else:
                with no_grad():  # validation never needs the graph
                    pred = self.forward_fn(self.model, x[idx])
                    loss = self.loss_fn(pred, Tensor(y[idx]))
            total += loss.item() * len(idx)
            count += len(idx)
        return total / max(count, 1)

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train and restore the best-validation-loss parameters."""
        if len(x_train) != len(y_train):
            raise ValueError("x_train and y_train must have equal length")
        history = TrainingHistory()
        self.history = history
        # best-model checkpoint buffers, allocated once and reused across
        # improving epochs (np.copyto) instead of rebuilding a deep-copied
        # state_dict every time validation improves
        best_state: Optional[Dict[str, np.ndarray]] = None
        params = dict(self.model.named_parameters())
        stale = 0
        instrumented = obs.metrics_enabled()
        try:
            # sample_window: continuous telemetry (series rows tagged
            # "train") while epochs run; no-op unless obs_sample_hz > 0
            with obs.sample_window("train"), obs.span(
                "train.fit",
                model=type(self.model).__name__,
                samples=len(x_train),
                batch_size=self.batch_size,
                max_epochs=self.max_epochs,
            ):
                for epoch in range(self.max_epochs):
                    # force=instrumented: real stopwatch for the epoch-duration
                    # histogram even in metrics mode (recorded to the timeline
                    # only when tracing); null span when obs is off
                    with obs.span("train.epoch", force=instrumented, epoch=epoch) as sp:
                        train_loss = self._epoch(x_train, y_train, train=True)
                        if x_val is not None and len(x_val):
                            val_loss = self._epoch(x_val, y_val, train=False)
                        else:
                            val_loss = train_loss
                        sp.set(train_loss=train_loss, val_loss=val_loss)
                    history.train_loss.append(train_loss)
                    history.val_loss.append(val_loss)
                    if instrumented:
                        obs.counter("train.epochs")
                        obs.gauge("train.loss", train_loss)
                        obs.gauge("train.val_loss", val_loss)
                        obs.histogram("train.epoch_ms", sp.duration_s * 1e3)
                    if val_loss < history.best_val_loss - 1e-9:
                        history.best_val_loss = val_loss
                        history.best_epoch = epoch
                        if best_state is None:
                            best_state = {name: p.data.copy() for name, p in params.items()}
                        else:
                            for name, p in params.items():
                                np.copyto(best_state[name], p.data)
                        stale = 0
                    else:
                        stale += 1
                    if self.verbose:
                        print(f"epoch {epoch:3d} train {train_loss:.5f} val {val_loss:.5f}")
                    if stale >= self.patience:
                        break
        finally:
            # close the arena step window: pooled kernel scratch must not
            # be handed out to callers running outside a Trainer step
            arena.end_run()
        if best_state is not None:
            for name, p in params.items():
                np.copyto(p.data, best_state[name])
        self.model.eval()
        if instrumented:
            obs.gauge("train.best_val_loss", history.best_val_loss)
            config = {
                "model": type(self.model).__name__,
                "n_parameters": int(sum(p.data.size for p in self.model.parameters())),
                "lr": self.optimizer.lr,
                "batch_size": self.batch_size,
                "max_epochs": self.max_epochs,
                "patience": self.patience,
                "n_train": len(x_train),
                "n_val": len(x_val) if x_val is not None else 0,
            }
            if self._n_traces is not None:
                config["n_traces"] = self._n_traces
            obs.write_manifest(
                kind="train",
                config=config,
                seed=self.seed,
                history={
                    "train_loss": history.train_loss,
                    "val_loss": history.val_loss,
                    "best_epoch": history.best_epoch,
                    "best_val_loss": history.best_val_loss,
                    "epochs_run": history.epochs_run,
                },
            )
        return history

    def fit_traces(
        self,
        train_traces: Sequence[Tuple[np.ndarray, np.ndarray]],
        val_traces: Optional[Sequence[Tuple[np.ndarray, np.ndarray]]] = None,
    ) -> TrainingHistory:
        """Train on several traces' windows as one stacked pass.

        Instead of fitting trace-by-trace (one small kernel call per
        trace per epoch), the per-trace window arrays are concatenated
        along the sample axis and trained as a single :meth:`fit` —
        every fused-kernel invocation then sweeps the stacked batch,
        amortizing per-call dispatch and BLAS setup across traces.  The
        epoch-level shuffle mixes windows across traces, which is also
        the statistically sound protocol for i.i.d. window sampling.
        """
        x_train, y_train = stack_trace_windows(train_traces)
        x_val = y_val = None
        if val_traces:
            x_val, y_val = stack_trace_windows(val_traces)
        self._n_traces = len(train_traces)
        try:
            return self.fit(x_train, y_train, x_val, y_val)
        finally:
            self._n_traces = None

    def predict(
        self,
        x: np.ndarray,
        batch_size: Optional[int] = None,
        float32: bool = False,
    ) -> np.ndarray:
        """Run the model in eval mode over ``x`` in batches.

        The whole pass runs under :class:`~repro.nn.tensor.no_grad`, so
        no computation graph is recorded — outputs are bit-identical to
        a grad-mode forward since the same numpy expressions execute.
        ``float32=True`` temporarily casts the model parameters (and the
        input) to float32 for a faster, lower-precision pass; weights
        are restored to their float64 values afterwards.
        """
        self.model.eval()
        bs = batch_size or self.batch_size
        outputs = []
        saved: Optional[list] = None
        if float32:
            saved = [(p, p.data) for p in self.model.parameters()]
            for p, data in saved:
                p.data = data.astype(np.float32)
            x = np.asarray(x, dtype=np.float32)
        try:
            with no_grad():
                for start in range(0, len(x), bs):
                    # kernel outputs escape this window as Tensor data, so
                    # the backends only pool internal scratch (see
                    # repro.backends.arena lifetime rules); the window just
                    # recycles that scratch batch over batch
                    arena.begin_step()
                    pred = self.forward_fn(self.model, x[start : start + bs])
                    outputs.append(np.asarray(pred.numpy(), dtype=np.float64))
        finally:
            arena.end_run()
            if saved is not None:
                for p, data in saved:
                    p.data = data
        return np.concatenate(outputs, axis=0)
