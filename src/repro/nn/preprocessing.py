"""Feature scaling utilities.

The paper normalizes all ML datasets with a min-max scaler before
training (Appendix C.1); we provide the same plus a standard scaler.
Both are fit on training data only and are exactly invertible on the
fitted range.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class MinMaxScaler:
    """Scale features to [0, 1] columnwise; constant columns map to 0."""

    def __init__(self) -> None:
        self.data_min: Optional[np.ndarray] = None
        self.data_max: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1])
        self.data_min = flat.min(axis=0)
        self.data_max = flat.max(axis=0)
        return self

    @property
    def _range(self) -> np.ndarray:
        span = self.data_max - self.data_min
        # span = max - min is non-negative; <= 0 marks constant features
        return np.where(span <= 0.0, 1.0, span)

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        return (x - self.data_min) / self._range

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, dtype=np.float64)
        return x * self._range + self.data_min

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def _check_fitted(self) -> None:
        if self.data_min is None:
            raise RuntimeError("scaler has not been fitted")


class StandardScaler:
    """Zero-mean / unit-variance scaling; zero-variance columns pass through."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1])
        self.mean = flat.mean(axis=0)
        std = flat.std(axis=0)
        self.std = np.where(std <= 0.0, 1.0, std)  # std >= 0; <= 0 marks constants
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("scaler has not been fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean) / self.std

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("scaler has not been fitted")
        return np.asarray(x, dtype=np.float64) * self.std + self.mean

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
