"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, a small but complete
autograd engine used by every neural model in this repository (the paper
uses PyTorch; PyTorch is unavailable offline, so we implement the same
math from scratch — see DESIGN.md, substitution table).

Gradients are accumulated by a topological-order backward pass over the
dynamically recorded computation graph.  Broadcasting is supported: the
gradient flowing into a broadcast operand is summed over the broadcast
axes so that ``grad.shape == data.shape`` always holds.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: global autograd switch — see :class:`no_grad` / :func:`is_grad_enabled`.
_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether new operations record backward graphs."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> bool:
    """Set the global autograd switch; returns the previous value."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


class no_grad:
    """Context manager (and decorator) disabling graph construction.

    Inside the context every tensor op computes forward values only: no
    parents, no backward closures, no gradient bookkeeping.  This is the
    inference fast path used by ``Trainer.predict`` and the Prism5G
    rollout — forward values are bit-identical to grad mode because the
    same numpy expressions run either way.
    """

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, *exc) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn):
        def wrapped(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapped


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    # float32 arrays pass through untouched (opt-in low-precision
    # inference); everything else is canonicalized to float64.
    if isinstance(value, np.ndarray) and value.dtype == np.float32:
        return value
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor that records operations for backprop."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        elif self.grad.shape == grad.shape:
            # in-place: the buffer is owned (created by the copy above)
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a sum of
        its elements for non-scalar outputs).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: ArrayLike, forward, back_self, back_other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            forward(self.data, other_t.data),
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )

        if requires:

            def _backward() -> None:
                g = out.grad
                if self.requires_grad:
                    self._accumulate(_unbroadcast(back_self(g, self.data, other_t.data), self.shape))
                if other_t.requires_grad:
                    other_t._accumulate(
                        _unbroadcast(back_other(g, self.data, other_t.data), other_t.shape)
                    )

            out._backward = _backward
        return out

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            np.divide,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data ** exponent, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            self.data @ other_t.data,
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )
        if not requires:
            return out

        def _backward() -> None:
            g = out.grad
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                    if a.ndim > 2:
                        grad_a = g[..., None] * b
                else:
                    grad_a = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(grad_a.reshape(a.shape) if grad_a.shape != a.shape and grad_a.size == a.size else grad_a, a.shape))
            if other_t.requires_grad:
                if a.ndim == 1:
                    grad_b = np.outer(a, g)
                elif b.ndim == 1:
                    grad_b = (np.swapaxes(a, -1, -2) @ g[..., None])[..., 0]
                    grad_b = _unbroadcast(grad_b, b.shape)
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ g
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Unary nonlinearities
    # ------------------------------------------------------------------
    def _unary(self, value: np.ndarray, local_grad: Callable[[], np.ndarray]) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * local_grad())

            out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        return self._unary(value, lambda: value)

    def log(self) -> "Tensor":
        return self._unary(np.log(self.data), lambda: 1.0 / self.data)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return self._unary(value, lambda: 1.0 - value * value)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.minimum(np.maximum(self.data, -60.0), 60.0)))
        return self._unary(value, lambda: value * (1.0 - value))

    def relu(self) -> "Tensor":
        value = np.maximum(self.data, 0.0)
        return self._unary(value, lambda: (self.data > 0).astype(np.float64))

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        return self._unary(value, lambda: 0.5 / value)

    def abs(self) -> "Tensor":
        return self._unary(np.abs(self.data), lambda: np.sign(self.data))

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (differentiable)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            dot = (g * value).sum(axis=axis, keepdims=True)
            self._accumulate(value * (g - dot))

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        if out.requires_grad:
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.reshape(shape), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.shape))

        if out.requires_grad:
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.transpose(axes_t), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            if axes_t is None:
                self._accumulate(out.grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(out.grad.transpose(tuple(inverse)))

        if out.requires_grad:
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data[index], requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        g = out.grad
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis if axis >= 0 else g.ndim + axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    if out.requires_grad:
        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    def _backward() -> None:
        pieces = np.split(out.grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    if out.requires_grad:
        out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable element selection; ``condition`` is a plain array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(
        np.where(cond, a.data, b.data),
        requires_grad=requires,
        _parents=(a, b) if requires else (),
    )

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    if out.requires_grad:
        out._backward = _backward
    return out


# ----------------------------------------------------------------------
# Fused sequence kernels
#
# The fused primitives (affine, lstm_cell, gru_cell, lstm_seq, gru_seq,
# lstm_decoder_seq) live in :mod:`repro.nn.kernels`: autograd
# bookkeeping there, array math in the active compute backend
# (:mod:`repro.backends`).  They are re-exported lazily below so
# ``from repro.nn.tensor import lstm_seq`` keeps working without an
# import cycle (kernels imports this module at load time).
# ----------------------------------------------------------------------
_KERNEL_EXPORTS = (
    "affine",
    "gru_cell",
    "gru_seq",
    "lstm_cell",
    "lstm_decoder_seq",
    "lstm_seq",
)


def __getattr__(name: str):
    if name in _KERNEL_EXPORTS:
        from . import kernels

        return getattr(kernels, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")



def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function (for testing)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        upper = fn(x)
        flat[i] = old - eps
        lower = fn(x)
        flat[i] = old
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad
