"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, a small but complete
autograd engine used by every neural model in this repository (the paper
uses PyTorch; PyTorch is unavailable offline, so we implement the same
math from scratch — see DESIGN.md, substitution table).

Gradients are accumulated by a topological-order backward pass over the
dynamically recorded computation graph.  Broadcasting is supported: the
gradient flowing into a broadcast operand is summed over the broadcast
axes so that ``grad.shape == data.shape`` always holds.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: global autograd switch — see :class:`no_grad` / :func:`is_grad_enabled`.
_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether new operations record backward graphs."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> bool:
    """Set the global autograd switch; returns the previous value."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


class no_grad:
    """Context manager (and decorator) disabling graph construction.

    Inside the context every tensor op computes forward values only: no
    parents, no backward closures, no gradient bookkeeping.  This is the
    inference fast path used by ``Trainer.predict`` and the Prism5G
    rollout — forward values are bit-identical to grad mode because the
    same numpy expressions run either way.
    """

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, *exc) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn):
        def wrapped(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapped


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    # float32 arrays pass through untouched (opt-in low-precision
    # inference); everything else is canonicalized to float64.
    if isinstance(value, np.ndarray) and value.dtype == np.float32:
        return value
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor that records operations for backprop."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        elif self.grad.shape == grad.shape:
            # in-place: the buffer is owned (created by the copy above)
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a sum of
        its elements for non-scalar outputs).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: ArrayLike, forward, back_self, back_other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            forward(self.data, other_t.data),
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )

        if requires:

            def _backward() -> None:
                g = out.grad
                if self.requires_grad:
                    self._accumulate(_unbroadcast(back_self(g, self.data, other_t.data), self.shape))
                if other_t.requires_grad:
                    other_t._accumulate(
                        _unbroadcast(back_other(g, self.data, other_t.data), other_t.shape)
                    )

            out._backward = _backward
        return out

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            np.divide,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data ** exponent, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            self.data @ other_t.data,
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )
        if not requires:
            return out

        def _backward() -> None:
            g = out.grad
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                    if a.ndim > 2:
                        grad_a = g[..., None] * b
                else:
                    grad_a = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(grad_a.reshape(a.shape) if grad_a.shape != a.shape and grad_a.size == a.size else grad_a, a.shape))
            if other_t.requires_grad:
                if a.ndim == 1:
                    grad_b = np.outer(a, g)
                elif b.ndim == 1:
                    grad_b = (np.swapaxes(a, -1, -2) @ g[..., None])[..., 0]
                    grad_b = _unbroadcast(grad_b, b.shape)
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ g
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Unary nonlinearities
    # ------------------------------------------------------------------
    def _unary(self, value: np.ndarray, local_grad: Callable[[], np.ndarray]) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * local_grad())

            out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        return self._unary(value, lambda: value)

    def log(self) -> "Tensor":
        return self._unary(np.log(self.data), lambda: 1.0 / self.data)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return self._unary(value, lambda: 1.0 - value * value)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.minimum(np.maximum(self.data, -60.0), 60.0)))
        return self._unary(value, lambda: value * (1.0 - value))

    def relu(self) -> "Tensor":
        value = np.maximum(self.data, 0.0)
        return self._unary(value, lambda: (self.data > 0).astype(np.float64))

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        return self._unary(value, lambda: 0.5 / value)

    def abs(self) -> "Tensor":
        return self._unary(np.abs(self.data), lambda: np.sign(self.data))

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (differentiable)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            dot = (g * value).sum(axis=axis, keepdims=True)
            self._accumulate(value * (g - dot))

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        if out.requires_grad:
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.reshape(shape), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.shape))

        if out.requires_grad:
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.transpose(axes_t), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            if axes_t is None:
                self._accumulate(out.grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(out.grad.transpose(tuple(inverse)))

        if out.requires_grad:
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data[index], requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        g = out.grad
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis if axis >= 0 else g.ndim + axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    if out.requires_grad:
        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    def _backward() -> None:
        pieces = np.split(out.grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    if out.requires_grad:
        out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable element selection; ``condition`` is a plain array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(
        np.where(cond, a.data, b.data),
        requires_grad=requires,
        _parents=(a, b) if requires else (),
    )

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    if out.requires_grad:
        out._backward = _backward
    return out


# ----------------------------------------------------------------------
# Fused sequence kernels
#
# The op-by-op LSTM/GRU cell composition records ~15 graph nodes per
# timestep (two matmuls, adds, four slices, four nonlinearities, the
# elementwise state update).  The kernels below compute the same numpy
# expressions — in the same evaluation order, so forward values are
# bit-identical — but record one or two nodes per step with a
# hand-written, fully vectorized backward.
# ----------------------------------------------------------------------
def _sigmoid_np(x: np.ndarray) -> np.ndarray:
    """Same clipped logistic as :meth:`Tensor.sigmoid` (bit-identical).

    ``minimum(maximum(x, lo), hi)`` selects the exact same values as
    ``np.clip`` (NaNs propagate identically) while skipping np.clip's
    dispatch overhead, which dominates the sequence kernels' step loops.
    """
    return 1.0 / (1.0 + np.exp(-np.minimum(np.maximum(x, -60.0), 60.0)))


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """:func:`_sigmoid_np` evaluated in place into ``out``.

    Same FP operation sequence (clamp, negate, exp, +1, reciprocal), so
    results are bit-identical — but with zero temporaries, which is what
    the sequence kernels' step loops are bound by.
    """
    np.maximum(x, -60.0, out=out)
    np.minimum(out, 60.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.reciprocal(out, out=out)
    return out


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _weight_grad(inp: np.ndarray, g: np.ndarray, weight_shape: Tuple[int, ...]) -> np.ndarray:
    """dW for ``out = inp @ W`` with ``inp (..., F)`` and ``g (..., O)``."""
    f, o = weight_shape
    return inp.reshape(-1, f).T @ g.reshape(-1, o)


def affine(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    h: Optional[Tensor] = None,
    weight_h: Optional[Tensor] = None,
) -> Tensor:
    """Fused ``x @ weight [+ h @ weight_h] [+ bias]`` as one graph node.

    Replaces the 2-3 node chain an op-by-op composition would record.
    Weights must be 2-D ``(in, out)``; ``x``/``h`` may carry leading
    batch/time axes.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if (h is None) != (weight_h is None):
        raise ValueError("h and weight_h must be passed together")
    value = x.data @ weight.data
    if h is not None:
        h = _as_tensor(h)
        weight_h = _as_tensor(weight_h)
        value = value + h.data @ weight_h.data
    if bias is not None:
        bias = _as_tensor(bias)
        value = value + bias.data
    operands = [t for t in (x, weight, h, weight_h, bias) if t is not None]
    requires = _GRAD_ENABLED and any(t.requires_grad for t in operands)
    out = Tensor(value, requires_grad=requires, _parents=tuple(operands) if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        g = out.grad
        if x.requires_grad:
            x._accumulate(g @ weight.data.T)
        if weight.requires_grad:
            weight._accumulate(_weight_grad(x.data, g, weight.shape))
        if h is not None:
            if h.requires_grad:
                h._accumulate(g @ weight_h.data.T)
            if weight_h.requires_grad:
                weight_h._accumulate(_weight_grad(h.data, g, weight_h.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(g, bias.shape))

    out._backward = _backward
    return out


def lstm_cell(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused LSTM step (gates packed ``[i, f, g, o]``): two graph nodes.

    Returns ``(h, c)``.  ``c`` is recorded as ``h``'s parent so the
    output-gate gradient computed in ``h``'s backward can be folded into
    the single gate-gradient matmul of ``c``'s backward.
    """
    x, h_prev, c_prev = _as_tensor(x), _as_tensor(h_prev), _as_tensor(c_prev)
    hidden = weight_hh.data.shape[0]
    gates = x.data @ weight_ih.data + h_prev.data @ weight_hh.data + bias.data
    i = _sigmoid_np(gates[:, 0 * hidden : 1 * hidden])
    f = _sigmoid_np(gates[:, 1 * hidden : 2 * hidden])
    g_in = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o = _sigmoid_np(gates[:, 3 * hidden : 4 * hidden])
    c_val = f * c_prev.data + i * g_in
    tanh_c = np.tanh(c_val)
    h_val = o * tanh_c

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    c_out = Tensor(c_val, requires_grad=requires, _parents=parents if requires else ())
    h_out = Tensor(h_val, requires_grad=requires, _parents=(c_out,) if requires else ())
    if not requires:
        return h_out, c_out

    shared: dict = {}

    def _h_backward() -> None:
        gh = h_out.grad
        c_out._accumulate(gh * (o * (1.0 - tanh_c * tanh_c)))
        shared["d_o"] = gh * tanh_c

    def _c_backward() -> None:
        gc = c_out.grad
        d_gates = np.empty_like(gates)
        d_gates[:, 0 * hidden : 1 * hidden] = (gc * g_in) * i * (1.0 - i)
        d_gates[:, 1 * hidden : 2 * hidden] = (gc * c_prev.data) * f * (1.0 - f)
        d_gates[:, 2 * hidden : 3 * hidden] = (gc * i) * (1.0 - g_in * g_in)
        d_o = shared.pop("d_o", None)
        if d_o is None:  # h was not part of the loss; only c flowed onward
            d_gates[:, 3 * hidden : 4 * hidden] = 0.0
        else:
            d_gates[:, 3 * hidden : 4 * hidden] = d_o * o * (1.0 - o)
        if c_prev.requires_grad:
            c_prev._accumulate(gc * f)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T)
        if h_prev.requires_grad:
            h_prev._accumulate(d_gates @ weight_hh.data.T)
        if weight_ih.requires_grad:
            weight_ih._accumulate(x.data.T @ d_gates)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev.data.T @ d_gates)
        if bias.requires_grad:
            bias._accumulate(d_gates.sum(axis=0))

    h_out._backward = _h_backward
    c_out._backward = _c_backward
    return h_out, c_out


def gru_cell(
    x: Tensor,
    h_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tensor:
    """Fused GRU step (gates packed ``[r, z]``): one graph node."""
    x, h_prev = _as_tensor(x), _as_tensor(h_prev)
    hidden = weight_hh.data.shape[0]
    gates = x.data @ weight_ih.data + h_prev.data @ weight_hh.data + bias.data
    r = _sigmoid_np(gates[:, :hidden])
    z = _sigmoid_np(gates[:, hidden:])
    rh = r * h_prev.data
    n = np.tanh(x.data @ weight_in.data + rh @ weight_hn.data + bias_n.data)
    h_val = (1.0 - z) * n + z * h_prev.data

    parents = (x, h_prev, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    out = Tensor(h_val, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        gh = out.grad
        dz = gh * (h_prev.data - n)
        dn_pre = (gh * (1.0 - z)) * (1.0 - n * n)
        drh = dn_pre @ weight_hn.data.T
        d_gates = np.empty_like(gates)
        d_gates[:, :hidden] = (drh * h_prev.data) * r * (1.0 - r)
        d_gates[:, hidden:] = dz * z * (1.0 - z)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T + dn_pre @ weight_in.data.T)
        if h_prev.requires_grad:
            h_prev._accumulate(gh * z + drh * r + d_gates @ weight_hh.data.T)
        if weight_ih.requires_grad:
            weight_ih._accumulate(x.data.T @ d_gates)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev.data.T @ d_gates)
        if bias.requires_grad:
            bias._accumulate(d_gates.sum(axis=0))
        if weight_in.requires_grad:
            weight_in._accumulate(x.data.T @ dn_pre)
        if weight_hn.requires_grad:
            weight_hn._accumulate(rh.T @ dn_pre)
        if bias_n.requires_grad:
            bias_n._accumulate(dn_pre.sum(axis=0))

    out._backward = _backward
    return out


def lstm_seq(
    x: Tensor,
    h0: Tensor,
    c0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor, Tensor]:
    """Fused single-layer LSTM over a whole ``(B, T, F)`` sequence.

    One graph node for the entire layer (plus a slice node for the
    final hidden state): the input projection ``x @ W_ih`` is hoisted
    out of the time loop as one batched matmul, and the backward is a
    hand-written BPTT sweep whose weight gradients collapse into single
    ``(B*T, ·)`` matmuls.  Per-step arithmetic matches the op-by-op
    cell composition exactly (same expression order), so forward values
    are bit-identical to :func:`lstm_cell` / the reference cell.

    Returns ``(outputs, h_T, c_T)`` with outputs ``(B, T, H)``.
    """
    if obs.metrics_enabled():
        obs.counter("kernel.lstm_seq")
    x, h0, c0 = _as_tensor(x), _as_tensor(h0), _as_tensor(c0)
    batch, time, _ = x.data.shape
    hidden = weight_hh.data.shape[0]
    parents = (x, h0, c0, weight_ih, weight_hh, bias)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)

    # hoisted input projection: one flat GEMM over all (t, b) rows (a
    # 3-D matmul would dispatch B tiny GEMMs), laid out time-major so
    # each step reads a contiguous (B, 4H) block
    x_tm = np.ascontiguousarray(x.data.transpose(1, 0, 2))
    gx = (x_tm.reshape(time * batch, -1) @ weight_ih.data).reshape(time, batch, -1)
    dtype = np.result_type(gx.dtype, h0.data.dtype, bias.data.dtype)
    # Scratch is laid out time-major so every per-step write lands in one
    # contiguous (B, ·) block, and every elementwise op below runs in
    # place (out=) with the exact operation order of the op-by-op cell —
    # same bits, no temporaries.  Activations are stored gate-major
    # (step, [i, f, g, o, tanh_c], B, H) so each gate view is a
    # contiguous (B, H) block: strided column views of a packed (B, 5H)
    # row defeat the SIMD ufunc loops (measured ~2.7x slower sigmoid).
    out_tm = np.empty((time, batch, hidden), dtype=dtype)
    gates = np.empty((batch, 4 * hidden), dtype=dtype)
    ig = np.empty((batch, hidden), dtype=dtype)
    c_pair = np.empty((2, batch, hidden), dtype=dtype)
    # materialized bias rows: the broadcast add of a (4H,) row measures
    # ~2x a same-shape add, and the loop pays it every step
    bias_rows = np.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows[:] = bias.data
    if requires:
        act = np.empty((time, 5, batch, hidden), dtype=dtype)
        c_hist = np.empty((time, batch, hidden), dtype=dtype)  # c entering step t
    else:
        step_act = np.empty((5, batch, hidden), dtype=dtype)
    h = h0.data
    c = c0.data
    for t in range(time):
        np.matmul(h, weight_hh.data, out=gates)
        np.add(gx[t], gates, out=gates)
        np.add(gates, bias_rows, out=gates)
        i, f, g_in, o, tanh_c = act[t] if requires else step_act
        _sigmoid_into(gates[:, 0 * hidden : 1 * hidden], i)
        _sigmoid_into(gates[:, 1 * hidden : 2 * hidden], f)
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=g_in)
        _sigmoid_into(gates[:, 3 * hidden : 4 * hidden], o)
        if requires:
            c_hist[t] = c
        c_new = c_pair[t & 1]
        np.multiply(f, c, out=c_new)
        np.multiply(i, g_in, out=ig)
        np.add(c_new, ig, out=c_new)  # f*c + i*g, same order as the cell
        np.tanh(c_new, out=tanh_c)
        c = c_new
        h = out_tm[t]
        np.multiply(o, tanh_c, out=h)
    outputs = np.ascontiguousarray(out_tm.transpose(1, 0, 2))
    c = c.copy()  # detach the final state from the ping-pong scratch

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    c_t = Tensor(c, requires_grad=requires, _parents=(out_t,) if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :], c_t

    shared: dict = {}

    def _c_backward() -> None:
        shared["dc_T"] = c_t.grad.copy()
        # make sure the sequence node's backward fires even when only
        # the cell state flows into the loss
        out_t._accumulate(np.zeros_like(outputs))

    def _backward() -> None:
        # time-major like the forward scratch: contiguous per-step reads
        # of the incoming grad and writes of the gate grads
        g_out = np.ascontiguousarray(out_t.grad.transpose(1, 0, 2))
        dc = shared.pop("dc_T", None)
        if dc is None:
            dc = np.zeros((batch, hidden), dtype=dtype)
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        dg_tm = np.empty((time, batch, 4 * hidden), dtype=dtype)
        dh = np.empty((batch, hidden), dtype=dtype)
        t1 = np.empty((batch, hidden), dtype=dtype)
        t2 = np.empty((batch, hidden), dtype=dtype)
        for t in range(time - 1, -1, -1):
            i, f, g_in, o, tanh_c = act[t]
            dg_step = dg_tm[t]
            np.add(g_out[t], dh_carry, out=dh)
            # dc += dh * (o * (1 - tanh_c^2)), same association as the cell
            np.multiply(tanh_c, tanh_c, out=t1)
            np.subtract(1.0, t1, out=t1)
            np.multiply(o, t1, out=t1)
            np.multiply(dh, t1, out=t1)
            np.add(dc, t1, out=dc)
            # gate grads: ((dc * pre) * gate) * (1 - gate), per gate
            np.multiply(dc, g_in, out=t1)
            np.multiply(t1, i, out=t1)
            np.subtract(1.0, i, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 0 * hidden : 1 * hidden])
            np.multiply(dc, c_hist[t], out=t1)
            np.multiply(t1, f, out=t1)
            np.subtract(1.0, f, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 1 * hidden : 2 * hidden])
            np.multiply(dc, i, out=t1)
            np.multiply(g_in, g_in, out=t2)
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 2 * hidden : 3 * hidden])
            np.multiply(dh, tanh_c, out=t1)
            np.multiply(t1, o, out=t1)
            np.subtract(1.0, o, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 3 * hidden : 4 * hidden])
            np.matmul(dg_step, weight_hh.data.T, out=dh_carry)
            np.multiply(dc, f, out=dc)
        if h0.requires_grad:
            h0._accumulate(dh_carry.copy())
        if c0.requires_grad:
            c0._accumulate(dc)
        # the collapsed grad matmuls stay time-major: weight grads are
        # sums over the same (t, b) row set either way (reassociated at
        # ulp level, within the documented gradient tolerance), and
        # skipping a batch-major restore saves a multi-MB transpose
        # copy per backward call
        flat_g = dg_tm.reshape(time * batch, 4 * hidden)
        if x.requires_grad:
            # one flat GEMM; the broadcast form would dispatch B small ones
            dx_tm = (flat_g @ weight_ih.data.T).reshape(time, batch, -1)
            x._accumulate(dx_tm.transpose(1, 0, 2))
        if weight_ih.requires_grad:
            weight_ih._accumulate(x_tm.reshape(time * batch, -1).T @ flat_g)
        if weight_hh.requires_grad:
            # h entering step t is h0 for t=0 and the step-(t-1) output
            h_prev = np.concatenate([h0.data[None], out_tm[:-1]], axis=0)
            weight_hh._accumulate(h_prev.reshape(time * batch, hidden).T @ flat_g)
        if bias.requires_grad:
            bias._accumulate(flat_g.sum(axis=0))

    out_t._backward = _backward
    c_t._backward = _c_backward
    return out_t, out_t[:, -1, :], c_t


def gru_seq(
    x: Tensor,
    h0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused single-layer GRU over a ``(B, T, F)`` sequence.

    Same design as :func:`lstm_seq`: hoisted input projections, one
    graph node per layer, hand-written BPTT.  Returns
    ``(outputs, h_T)``.
    """
    if obs.metrics_enabled():
        obs.counter("kernel.gru_seq")
    x, h0 = _as_tensor(x), _as_tensor(h0)
    batch, time, _ = x.data.shape
    hidden = weight_hh.data.shape[0]
    parents = (x, h0, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)

    gx = x.data @ weight_ih.data  # (B, T, 2H)
    nx = x.data @ weight_in.data  # (B, T, H)
    dtype = np.result_type(gx.dtype, h0.data.dtype, bias.data.dtype)
    outputs = np.empty((batch, time, hidden), dtype=dtype)
    if requires:
        r_all = np.empty((batch, time, hidden), dtype=dtype)
        z_all = np.empty_like(r_all)
        n_all = np.empty_like(r_all)
        rh_all = np.empty_like(r_all)
        h_prev_all = np.empty_like(r_all)
    h = h0.data
    for t in range(time):
        gates = gx[:, t] + h @ weight_hh.data + bias.data
        r = _sigmoid_np(gates[:, :hidden])
        z = _sigmoid_np(gates[:, hidden:])
        rh = r * h
        n = np.tanh(nx[:, t] + rh @ weight_hn.data + bias_n.data)
        if requires:
            r_all[:, t], z_all[:, t], n_all[:, t] = r, z, n
            rh_all[:, t] = rh
            h_prev_all[:, t] = h
        h = (1.0 - z) * n + z * h
        outputs[:, t] = h

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :]

    def _backward() -> None:
        g_out = out_t.grad
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        d_gates = np.empty((batch, time, 2 * hidden), dtype=dtype)
        dn_pre = np.empty((batch, time, hidden), dtype=dtype)
        w_hh_t = weight_hh.data.T
        w_hn_t = weight_hn.data.T
        for t in range(time - 1, -1, -1):
            dh = g_out[:, t] + dh_carry
            r, z, n = r_all[:, t], z_all[:, t], n_all[:, t]
            h_prev = h_prev_all[:, t]
            dz = dh * (h_prev - n)
            dnp = (dh * (1.0 - z)) * (1.0 - n * n)
            dn_pre[:, t] = dnp
            drh = dnp @ w_hn_t
            d_gates[:, t, :hidden] = (drh * h_prev) * r * (1.0 - r)
            d_gates[:, t, hidden:] = dz * z * (1.0 - z)
            dh_carry = dh * z + drh * r + d_gates[:, t] @ w_hh_t
        if h0.requires_grad:
            h0._accumulate(dh_carry)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T + dn_pre @ weight_in.data.T)
        flat_g = d_gates.reshape(batch * time, 2 * hidden)
        flat_n = dn_pre.reshape(batch * time, hidden)
        flat_x = x.data.reshape(batch * time, -1)
        if weight_ih.requires_grad:
            weight_ih._accumulate(flat_x.T @ flat_g)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev_all.reshape(batch * time, hidden).T @ flat_g)
        if bias.requires_grad:
            bias._accumulate(flat_g.sum(axis=0))
        if weight_in.requires_grad:
            weight_in._accumulate(flat_x.T @ flat_n)
        if weight_hn.requires_grad:
            weight_hn._accumulate(rh_all.reshape(batch * time, hidden).T @ flat_n)
        if bias_n.requires_grad:
            bias_n._accumulate(flat_n.sum(axis=0))

    out_t._backward = _backward
    return out_t, out_t[:, -1, :]


def lstm_decoder_seq(
    y0: Tensor,
    h0: Tensor,
    c0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_out: Tensor,
    bias_out: Tensor,
    horizon: int,
    out_chunks: int = 1,
) -> Tensor:
    """Fused autoregressive LSTM decoder rollout: one graph node.

    Runs ``horizon`` feedback steps of the Seq2Seq decoder discipline

        h_t, c_t = LSTMCell(y_{t-1}, (h_{t-1}, c_{t-1}))
        y_t      = h_t @ W_out + b_out

    where each step's prediction is the next step's input, so the whole
    rollout is inherently sequential — but every step is *one* batched
    ``lstm_cell``-equivalent over however many sequences (or carriers
    folded into the batch axis) are decoded at once.  The op-by-op loop
    records ``horizon * 3`` graph nodes; this primitive records one,
    with a hand-written BPTT whose weight gradients collapse into single
    ``(B*T, ·)`` matmuls.  Per-step arithmetic matches
    :func:`lstm_cell` + :func:`affine` exactly (same expression order),
    so forward values are bit-identical to the loop composition.

    Returns the predictions as ``(B, horizon, O)`` where ``O`` is the
    head's output width (= the cell's input width, by feedback).

    ``out_chunks`` splits the head projection ``h_t @ W_out`` into that
    many equal row groups.  BLAS dispatches narrow matmuls (``O`` of 1)
    to a GEMV path whose rounding depends on the row count, so a rollout
    over carriers folded to ``B·C`` rows would drift from the per-carrier
    loop by ~1 ulp per step — compounding through the feedback.  Callers
    that fold C carriers carrier-major pass ``out_chunks=C`` so each
    group is projected at the same row count the loop oracle uses,
    keeping the fold bit-identical.  The wide gate matmuls are row-count
    invariant and stay fully batched.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if out_chunks < 1:
        raise ValueError("out_chunks must be >= 1")
    if obs.metrics_enabled():
        obs.counter("kernel.lstm_decoder_seq")
    y0, h0, c0 = _as_tensor(y0), _as_tensor(h0), _as_tensor(c0)
    batch = h0.data.shape[0]
    hidden = weight_hh.data.shape[0]
    out_features = weight_out.data.shape[1]
    if weight_ih.data.shape[0] != out_features:
        raise ValueError(
            f"feedback width mismatch: cell input {weight_ih.data.shape[0]} "
            f"!= head output {out_features}"
        )
    if batch % out_chunks:
        raise ValueError(f"batch {batch} not divisible by out_chunks {out_chunks}")
    parents = (y0, h0, c0, weight_ih, weight_hh, bias, weight_out, bias_out)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    chunk_rows = batch // out_chunks

    def _project(h_rows: np.ndarray) -> np.ndarray:
        if out_chunks == 1:
            return h_rows @ weight_out.data + bias_out.data
        out = np.empty((batch, out_features), dtype=dtype)
        for j in range(out_chunks):
            rows = slice(j * chunk_rows, (j + 1) * chunk_rows)
            out[rows] = h_rows[rows] @ weight_out.data + bias_out.data
        return out

    dtype = np.result_type(y0.data.dtype, h0.data.dtype, bias.data.dtype)
    outputs = np.empty((batch, horizon, out_features), dtype=dtype)
    # Time-major scratch + in-place elementwise ops, mirroring
    # :func:`lstm_seq`: same FP operation order as the op-by-op cell, so
    # forward values stay bit-identical while the step loop allocates
    # nothing.  Input and hidden histories are rebuilt in the backward
    # from ``y0``/``outputs`` and ``h0``/``h_tm``.
    gates = np.empty((batch, 4 * hidden), dtype=dtype)
    hh = np.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows = np.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows[:] = bias.data
    ig = np.empty((batch, hidden), dtype=dtype)
    c_pair = np.empty((2, batch, hidden), dtype=dtype)
    if requires:
        # gate-major (step, [i,f,g,o,tanh_c], B, H): contiguous views,
        # see lstm_seq
        act = np.empty((horizon, 5, batch, hidden), dtype=dtype)
        c_hist = np.empty((horizon, batch, hidden), dtype=dtype)  # c entering step t
        h_tm = np.empty((horizon, batch, hidden), dtype=dtype)  # h leaving step t
    else:
        step_act = np.empty((5, batch, hidden), dtype=dtype)
        h_tm = np.empty((2, batch, hidden), dtype=dtype)
    h = h0.data
    c = c0.data
    y = y0.data
    for t in range(horizon):
        np.matmul(y, weight_ih.data, out=gates)
        np.matmul(h, weight_hh.data, out=hh)
        np.add(gates, hh, out=gates)
        np.add(gates, bias_rows, out=gates)
        i, f, g_in, o, tanh_c = act[t] if requires else step_act
        _sigmoid_into(gates[:, 0 * hidden : 1 * hidden], i)
        _sigmoid_into(gates[:, 1 * hidden : 2 * hidden], f)
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=g_in)
        _sigmoid_into(gates[:, 3 * hidden : 4 * hidden], o)
        if requires:
            c_hist[t] = c
        c_new = c_pair[t & 1]
        np.multiply(f, c, out=c_new)
        np.multiply(i, g_in, out=ig)
        np.add(c_new, ig, out=c_new)  # f*c + i*g, same order as the cell
        np.tanh(c_new, out=tanh_c)
        h = h_tm[t] if requires else h_tm[t & 1]
        np.multiply(o, tanh_c, out=h)
        c = c_new
        y = _project(h)
        outputs[:, t] = y

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out_t

    def _backward() -> None:
        g_out = out_t.grad  # (B, T, O)
        dy_feedback = np.zeros((batch, out_features), dtype=dtype)
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        dc = np.zeros((batch, hidden), dtype=dtype)
        dg_tm = np.empty((horizon, batch, 4 * hidden), dtype=dtype)
        dy_tm = np.empty((horizon, batch, out_features), dtype=dtype)
        dh = np.empty((batch, hidden), dtype=dtype)
        t1 = np.empty((batch, hidden), dtype=dtype)
        t2 = np.empty((batch, hidden), dtype=dtype)
        w_out_t = weight_out.data.T
        w_ih_t = weight_ih.data.T
        w_hh_t = weight_hh.data.T
        for t in range(horizon - 1, -1, -1):
            i, f, g_in, o, tanh_c = act[t]
            dg_step = dg_tm[t]
            dy = dy_tm[t]
            np.add(g_out[:, t], dy_feedback, out=dy)  # loss + next input grad
            np.matmul(dy, w_out_t, out=dh)
            np.add(dh, dh_carry, out=dh)
            # dc += dh * (o * (1 - tanh_c^2)), same association as the cell
            np.multiply(tanh_c, tanh_c, out=t1)
            np.subtract(1.0, t1, out=t1)
            np.multiply(o, t1, out=t1)
            np.multiply(dh, t1, out=t1)
            np.add(dc, t1, out=dc)
            np.multiply(dc, g_in, out=t1)
            np.multiply(t1, i, out=t1)
            np.subtract(1.0, i, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 0 * hidden : 1 * hidden])
            np.multiply(dc, c_hist[t], out=t1)
            np.multiply(t1, f, out=t1)
            np.subtract(1.0, f, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 1 * hidden : 2 * hidden])
            np.multiply(dc, i, out=t1)
            np.multiply(g_in, g_in, out=t2)
            np.subtract(1.0, t2, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 2 * hidden : 3 * hidden])
            np.multiply(dh, tanh_c, out=t1)
            np.multiply(t1, o, out=t1)
            np.subtract(1.0, o, out=t2)
            np.multiply(t1, t2, out=dg_step[:, 3 * hidden : 4 * hidden])
            np.matmul(dg_step, w_ih_t, out=dy_feedback)
            np.matmul(dg_step, w_hh_t, out=dh_carry)
            np.multiply(dc, f, out=dc)
        if y0.requires_grad:
            y0._accumulate(dy_feedback.copy())
        if h0.requires_grad:
            h0._accumulate(dh_carry.copy())
        if c0.requires_grad:
            c0._accumulate(dc)
        # the collapsed grad matmuls stay time-major (h_tm already is):
        # weight grads sum the same (t, b) rows either way, reassociated
        # at ulp level within the documented gradient tolerance, and the
        # batch-major restore would cost a multi-MB transpose copy
        flat_g = dg_tm.reshape(horizon * batch, 4 * hidden)
        flat_dy = dy_tm.reshape(horizon * batch, out_features)
        if weight_ih.requires_grad:
            # input entering step t: y0 at t=0, the step-(t-1) prediction after
            inp_tm = np.concatenate(
                [y0.data[None], outputs.transpose(1, 0, 2)[:-1]], axis=0
            )
            weight_ih._accumulate(inp_tm.reshape(horizon * batch, out_features).T @ flat_g)
        if weight_hh.requires_grad:
            h_prev = np.concatenate([h0.data[None], h_tm[:-1]], axis=0)
            weight_hh._accumulate(h_prev.reshape(horizon * batch, hidden).T @ flat_g)
        if bias.requires_grad:
            bias._accumulate(flat_g.sum(axis=0))
        if weight_out.requires_grad:
            weight_out._accumulate(h_tm.reshape(horizon * batch, hidden).T @ flat_dy)
        if bias_out.requires_grad:
            bias_out._accumulate(flat_dy.sum(axis=0))

    out_t._backward = _backward
    return out_t


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function (for testing)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        upper = fn(x)
        flat[i] = old - eps
        lower = fn(x)
        flat[i] = old
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad
