"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, a small but complete
autograd engine used by every neural model in this repository (the paper
uses PyTorch; PyTorch is unavailable offline, so we implement the same
math from scratch — see DESIGN.md, substitution table).

Gradients are accumulated by a topological-order backward pass over the
dynamically recorded computation graph.  Broadcasting is supported: the
gradient flowing into a broadcast operand is summed over the broadcast
axes so that ``grad.shape == data.shape`` always holds.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: global autograd switch — see :class:`no_grad` / :func:`is_grad_enabled`.
_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether new operations record backward graphs."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> bool:
    """Set the global autograd switch; returns the previous value."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)
    return previous


class no_grad:
    """Context manager (and decorator) disabling graph construction.

    Inside the context every tensor op computes forward values only: no
    parents, no backward closures, no gradient bookkeeping.  This is the
    inference fast path used by ``Trainer.predict`` and the Prism5G
    rollout — forward values are bit-identical to grad mode because the
    same numpy expressions run either way.
    """

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, *exc) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn):
        def wrapped(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapped


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    # float32 arrays pass through untouched (opt-in low-precision
    # inference); everything else is canonicalized to float64.
    if isinstance(value, np.ndarray) and value.dtype == np.float32:
        return value
    arr = np.asarray(value, dtype=np.float64)
    return arr


class Tensor:
    """A numpy-backed tensor that records operations for backprop."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph mechanics
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        elif self.grad.shape == grad.shape:
            # in-place: the buffer is owned (created by the copy above)
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a sum of
        its elements for non-scalar outputs).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen_on_stack = {id(node)}
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and id(parent) not in seen_on_stack:
                        stack.append((parent, iter(parent._parents)))
                        seen_on_stack.add(id(parent))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    seen_on_stack.discard(id(current))
                    if id(current) not in visited:
                        visited.add(id(current))
                        topo.append(current)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: ArrayLike, forward, back_self, back_other) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            forward(self.data, other_t.data),
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )

        if requires:

            def _backward() -> None:
                g = out.grad
                if self.requires_grad:
                    self._accumulate(_unbroadcast(back_self(g, self.data, other_t.data), self.shape))
                if other_t.requires_grad:
                    other_t._accumulate(
                        _unbroadcast(back_other(g, self.data, other_t.data), other_t.shape)
                    )

            out._backward = _backward
        return out

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._binary(other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._binary(
            other,
            np.divide,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data ** exponent, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        requires = _GRAD_ENABLED and (self.requires_grad or other_t.requires_grad)
        out = Tensor(
            self.data @ other_t.data,
            requires_grad=requires,
            _parents=(self, other_t) if requires else (),
        )
        if not requires:
            return out

        def _backward() -> None:
            g = out.grad
            a, b = self.data, other_t.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                    if a.ndim > 2:
                        grad_a = g[..., None] * b
                else:
                    grad_a = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(grad_a.reshape(a.shape) if grad_a.shape != a.shape and grad_a.size == a.size else grad_a, a.shape))
            if other_t.requires_grad:
                if a.ndim == 1:
                    grad_b = np.outer(a, g)
                elif b.ndim == 1:
                    grad_b = (np.swapaxes(a, -1, -2) @ g[..., None])[..., 0]
                    grad_b = _unbroadcast(grad_b, b.shape)
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ g
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Unary nonlinearities
    # ------------------------------------------------------------------
    def _unary(self, value: np.ndarray, local_grad: Callable[[], np.ndarray]) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        if requires:

            def _backward() -> None:
                self._accumulate(out.grad * local_grad())

            out._backward = _backward
        return out

    def exp(self) -> "Tensor":
        value = np.exp(self.data)
        return self._unary(value, lambda: value)

    def log(self) -> "Tensor":
        return self._unary(np.log(self.data), lambda: 1.0 / self.data)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        return self._unary(value, lambda: 1.0 - value * value)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return self._unary(value, lambda: value * (1.0 - value))

    def relu(self) -> "Tensor":
        value = np.maximum(self.data, 0.0)
        return self._unary(value, lambda: (self.data > 0).astype(np.float64))

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)
        return self._unary(value, lambda: 0.5 / value)

    def abs(self) -> "Tensor":
        return self._unary(np.abs(self.data), lambda: np.sign(self.data))

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis`` (differentiable)."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            dot = (g * value).sum(axis=axis, keepdims=True)
            self._accumulate(value * (g - dot))

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(value, requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            g = out.grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        if out.requires_grad:
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.reshape(shape), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            self._accumulate(out.grad.reshape(self.shape))

        if out.requires_grad:
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        axes_t: Optional[Tuple[int, ...]] = tuple(axes) if axes else None
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data.transpose(axes_t), requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            if axes_t is None:
                self._accumulate(out.grad.transpose())
            else:
                inverse = np.argsort(axes_t)
                self._accumulate(out.grad.transpose(tuple(inverse)))

        if out.requires_grad:
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        requires = _GRAD_ENABLED and self.requires_grad
        out = Tensor(self.data[index], requires_grad=requires, _parents=(self,) if requires else ())

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        if out.requires_grad:
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        g = out.grad
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis if axis >= 0 else g.ndim + axis] = slice(start, stop)
                t._accumulate(g[tuple(index)])

    if out.requires_grad:
        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    def _backward() -> None:
        pieces = np.split(out.grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    if out.requires_grad:
        out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable element selection; ``condition`` is a plain array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
    out = Tensor(
        np.where(cond, a.data, b.data),
        requires_grad=requires,
        _parents=(a, b) if requires else (),
    )

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    if out.requires_grad:
        out._backward = _backward
    return out


# ----------------------------------------------------------------------
# Fused sequence kernels
#
# The op-by-op LSTM/GRU cell composition records ~15 graph nodes per
# timestep (two matmuls, adds, four slices, four nonlinearities, the
# elementwise state update).  The kernels below compute the same numpy
# expressions — in the same evaluation order, so forward values are
# bit-identical — but record one or two nodes per step with a
# hand-written, fully vectorized backward.
# ----------------------------------------------------------------------
def _sigmoid_np(x: np.ndarray) -> np.ndarray:
    """Same clipped logistic as :meth:`Tensor.sigmoid` (bit-identical)."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _weight_grad(inp: np.ndarray, g: np.ndarray, weight_shape: Tuple[int, ...]) -> np.ndarray:
    """dW for ``out = inp @ W`` with ``inp (..., F)`` and ``g (..., O)``."""
    f, o = weight_shape
    return inp.reshape(-1, f).T @ g.reshape(-1, o)


def affine(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    h: Optional[Tensor] = None,
    weight_h: Optional[Tensor] = None,
) -> Tensor:
    """Fused ``x @ weight [+ h @ weight_h] [+ bias]`` as one graph node.

    Replaces the 2-3 node chain an op-by-op composition would record.
    Weights must be 2-D ``(in, out)``; ``x``/``h`` may carry leading
    batch/time axes.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if (h is None) != (weight_h is None):
        raise ValueError("h and weight_h must be passed together")
    value = x.data @ weight.data
    if h is not None:
        h = _as_tensor(h)
        weight_h = _as_tensor(weight_h)
        value = value + h.data @ weight_h.data
    if bias is not None:
        bias = _as_tensor(bias)
        value = value + bias.data
    operands = [t for t in (x, weight, h, weight_h, bias) if t is not None]
    requires = _GRAD_ENABLED and any(t.requires_grad for t in operands)
    out = Tensor(value, requires_grad=requires, _parents=tuple(operands) if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        g = out.grad
        if x.requires_grad:
            x._accumulate(g @ weight.data.T)
        if weight.requires_grad:
            weight._accumulate(_weight_grad(x.data, g, weight.shape))
        if h is not None:
            if h.requires_grad:
                h._accumulate(g @ weight_h.data.T)
            if weight_h.requires_grad:
                weight_h._accumulate(_weight_grad(h.data, g, weight_h.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(g, bias.shape))

    out._backward = _backward
    return out


def lstm_cell(
    x: Tensor,
    h_prev: Tensor,
    c_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused LSTM step (gates packed ``[i, f, g, o]``): two graph nodes.

    Returns ``(h, c)``.  ``c`` is recorded as ``h``'s parent so the
    output-gate gradient computed in ``h``'s backward can be folded into
    the single gate-gradient matmul of ``c``'s backward.
    """
    x, h_prev, c_prev = _as_tensor(x), _as_tensor(h_prev), _as_tensor(c_prev)
    hidden = weight_hh.data.shape[0]
    gates = x.data @ weight_ih.data + h_prev.data @ weight_hh.data + bias.data
    i = _sigmoid_np(gates[:, 0 * hidden : 1 * hidden])
    f = _sigmoid_np(gates[:, 1 * hidden : 2 * hidden])
    g_in = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o = _sigmoid_np(gates[:, 3 * hidden : 4 * hidden])
    c_val = f * c_prev.data + i * g_in
    tanh_c = np.tanh(c_val)
    h_val = o * tanh_c

    parents = (x, h_prev, c_prev, weight_ih, weight_hh, bias)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    c_out = Tensor(c_val, requires_grad=requires, _parents=parents if requires else ())
    h_out = Tensor(h_val, requires_grad=requires, _parents=(c_out,) if requires else ())
    if not requires:
        return h_out, c_out

    shared: dict = {}

    def _h_backward() -> None:
        gh = h_out.grad
        c_out._accumulate(gh * (o * (1.0 - tanh_c * tanh_c)))
        shared["d_o"] = gh * tanh_c

    def _c_backward() -> None:
        gc = c_out.grad
        d_gates = np.empty_like(gates)
        d_gates[:, 0 * hidden : 1 * hidden] = (gc * g_in) * i * (1.0 - i)
        d_gates[:, 1 * hidden : 2 * hidden] = (gc * c_prev.data) * f * (1.0 - f)
        d_gates[:, 2 * hidden : 3 * hidden] = (gc * i) * (1.0 - g_in * g_in)
        d_o = shared.pop("d_o", None)
        if d_o is None:  # h was not part of the loss; only c flowed onward
            d_gates[:, 3 * hidden : 4 * hidden] = 0.0
        else:
            d_gates[:, 3 * hidden : 4 * hidden] = d_o * o * (1.0 - o)
        if c_prev.requires_grad:
            c_prev._accumulate(gc * f)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T)
        if h_prev.requires_grad:
            h_prev._accumulate(d_gates @ weight_hh.data.T)
        if weight_ih.requires_grad:
            weight_ih._accumulate(x.data.T @ d_gates)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev.data.T @ d_gates)
        if bias.requires_grad:
            bias._accumulate(d_gates.sum(axis=0))

    h_out._backward = _h_backward
    c_out._backward = _c_backward
    return h_out, c_out


def gru_cell(
    x: Tensor,
    h_prev: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tensor:
    """Fused GRU step (gates packed ``[r, z]``): one graph node."""
    x, h_prev = _as_tensor(x), _as_tensor(h_prev)
    hidden = weight_hh.data.shape[0]
    gates = x.data @ weight_ih.data + h_prev.data @ weight_hh.data + bias.data
    r = _sigmoid_np(gates[:, :hidden])
    z = _sigmoid_np(gates[:, hidden:])
    rh = r * h_prev.data
    n = np.tanh(x.data @ weight_in.data + rh @ weight_hn.data + bias_n.data)
    h_val = (1.0 - z) * n + z * h_prev.data

    parents = (x, h_prev, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)
    out = Tensor(h_val, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out

    def _backward() -> None:
        gh = out.grad
        dz = gh * (h_prev.data - n)
        dn_pre = (gh * (1.0 - z)) * (1.0 - n * n)
        drh = dn_pre @ weight_hn.data.T
        d_gates = np.empty_like(gates)
        d_gates[:, :hidden] = (drh * h_prev.data) * r * (1.0 - r)
        d_gates[:, hidden:] = dz * z * (1.0 - z)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T + dn_pre @ weight_in.data.T)
        if h_prev.requires_grad:
            h_prev._accumulate(gh * z + drh * r + d_gates @ weight_hh.data.T)
        if weight_ih.requires_grad:
            weight_ih._accumulate(x.data.T @ d_gates)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev.data.T @ d_gates)
        if bias.requires_grad:
            bias._accumulate(d_gates.sum(axis=0))
        if weight_in.requires_grad:
            weight_in._accumulate(x.data.T @ dn_pre)
        if weight_hn.requires_grad:
            weight_hn._accumulate(rh.T @ dn_pre)
        if bias_n.requires_grad:
            bias_n._accumulate(dn_pre.sum(axis=0))

    out._backward = _backward
    return out


def lstm_seq(
    x: Tensor,
    h0: Tensor,
    c0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
) -> Tuple[Tensor, Tensor, Tensor]:
    """Fused single-layer LSTM over a whole ``(B, T, F)`` sequence.

    One graph node for the entire layer (plus a slice node for the
    final hidden state): the input projection ``x @ W_ih`` is hoisted
    out of the time loop as one batched matmul, and the backward is a
    hand-written BPTT sweep whose weight gradients collapse into single
    ``(B*T, ·)`` matmuls.  Per-step arithmetic matches the op-by-op
    cell composition exactly (same expression order), so forward values
    are bit-identical to :func:`lstm_cell` / the reference cell.

    Returns ``(outputs, h_T, c_T)`` with outputs ``(B, T, H)``.
    """
    x, h0, c0 = _as_tensor(x), _as_tensor(h0), _as_tensor(c0)
    batch, time, _ = x.data.shape
    hidden = weight_hh.data.shape[0]
    parents = (x, h0, c0, weight_ih, weight_hh, bias)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)

    gx = x.data @ weight_ih.data  # (B, T, 4H): hoisted input projection
    dtype = np.result_type(gx.dtype, h0.data.dtype, bias.data.dtype)
    outputs = np.empty((batch, time, hidden), dtype=dtype)
    if requires:
        i_all = np.empty((batch, time, hidden), dtype=dtype)
        f_all = np.empty_like(i_all)
        g_all = np.empty_like(i_all)
        o_all = np.empty_like(i_all)
        tanh_c_all = np.empty_like(i_all)
        h_prev_all = np.empty_like(i_all)
        c_prev_all = np.empty_like(i_all)
    h = h0.data
    c = c0.data
    for t in range(time):
        gates = gx[:, t] + h @ weight_hh.data + bias.data
        i = _sigmoid_np(gates[:, 0 * hidden : 1 * hidden])
        f = _sigmoid_np(gates[:, 1 * hidden : 2 * hidden])
        g_in = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid_np(gates[:, 3 * hidden : 4 * hidden])
        c_new = f * c + i * g_in
        tanh_c = np.tanh(c_new)
        if requires:
            i_all[:, t], f_all[:, t], g_all[:, t], o_all[:, t] = i, f, g_in, o
            tanh_c_all[:, t] = tanh_c
            h_prev_all[:, t] = h
            c_prev_all[:, t] = c
        c = c_new
        h = o * tanh_c
        outputs[:, t] = h

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    c_t = Tensor(c, requires_grad=requires, _parents=(out_t,) if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :], c_t

    shared: dict = {}

    def _c_backward() -> None:
        shared["dc_T"] = c_t.grad.copy()
        # make sure the sequence node's backward fires even when only
        # the cell state flows into the loss
        out_t._accumulate(np.zeros_like(outputs))

    def _backward() -> None:
        g_out = out_t.grad
        dc = shared.pop("dc_T", None)
        if dc is None:
            dc = np.zeros((batch, hidden), dtype=dtype)
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        d_gates = np.empty((batch, time, 4 * hidden), dtype=dtype)
        w_hh_t = weight_hh.data.T
        for t in range(time - 1, -1, -1):
            dh = g_out[:, t] + dh_carry
            i, f = i_all[:, t], f_all[:, t]
            g_in, o = g_all[:, t], o_all[:, t]
            tanh_c = tanh_c_all[:, t]
            dc += dh * (o * (1.0 - tanh_c * tanh_c))
            d_gates[:, t, 0 * hidden : 1 * hidden] = (dc * g_in) * i * (1.0 - i)
            d_gates[:, t, 1 * hidden : 2 * hidden] = (dc * c_prev_all[:, t]) * f * (1.0 - f)
            d_gates[:, t, 2 * hidden : 3 * hidden] = (dc * i) * (1.0 - g_in * g_in)
            d_gates[:, t, 3 * hidden : 4 * hidden] = (dh * tanh_c) * o * (1.0 - o)
            dh_carry = d_gates[:, t] @ w_hh_t
            dc *= f
        if h0.requires_grad:
            h0._accumulate(dh_carry)
        if c0.requires_grad:
            c0._accumulate(dc)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T)
        flat_g = d_gates.reshape(batch * time, 4 * hidden)
        if weight_ih.requires_grad:
            weight_ih._accumulate(x.data.reshape(batch * time, -1).T @ flat_g)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev_all.reshape(batch * time, hidden).T @ flat_g)
        if bias.requires_grad:
            bias._accumulate(flat_g.sum(axis=0))

    out_t._backward = _backward
    c_t._backward = _c_backward
    return out_t, out_t[:, -1, :], c_t


def gru_seq(
    x: Tensor,
    h0: Tensor,
    weight_ih: Tensor,
    weight_hh: Tensor,
    bias: Tensor,
    weight_in: Tensor,
    weight_hn: Tensor,
    bias_n: Tensor,
) -> Tuple[Tensor, Tensor]:
    """Fused single-layer GRU over a ``(B, T, F)`` sequence.

    Same design as :func:`lstm_seq`: hoisted input projections, one
    graph node per layer, hand-written BPTT.  Returns
    ``(outputs, h_T)``.
    """
    x, h0 = _as_tensor(x), _as_tensor(h0)
    batch, time, _ = x.data.shape
    hidden = weight_hh.data.shape[0]
    parents = (x, h0, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n)
    requires = _GRAD_ENABLED and any(t.requires_grad for t in parents)

    gx = x.data @ weight_ih.data  # (B, T, 2H)
    nx = x.data @ weight_in.data  # (B, T, H)
    dtype = np.result_type(gx.dtype, h0.data.dtype, bias.data.dtype)
    outputs = np.empty((batch, time, hidden), dtype=dtype)
    if requires:
        r_all = np.empty((batch, time, hidden), dtype=dtype)
        z_all = np.empty_like(r_all)
        n_all = np.empty_like(r_all)
        rh_all = np.empty_like(r_all)
        h_prev_all = np.empty_like(r_all)
    h = h0.data
    for t in range(time):
        gates = gx[:, t] + h @ weight_hh.data + bias.data
        r = _sigmoid_np(gates[:, :hidden])
        z = _sigmoid_np(gates[:, hidden:])
        rh = r * h
        n = np.tanh(nx[:, t] + rh @ weight_hn.data + bias_n.data)
        if requires:
            r_all[:, t], z_all[:, t], n_all[:, t] = r, z, n
            rh_all[:, t] = rh
            h_prev_all[:, t] = h
        h = (1.0 - z) * n + z * h
        outputs[:, t] = h

    out_t = Tensor(outputs, requires_grad=requires, _parents=parents if requires else ())
    if not requires:
        return out_t, out_t[:, -1, :]

    def _backward() -> None:
        g_out = out_t.grad
        dh_carry = np.zeros((batch, hidden), dtype=dtype)
        d_gates = np.empty((batch, time, 2 * hidden), dtype=dtype)
        dn_pre = np.empty((batch, time, hidden), dtype=dtype)
        w_hh_t = weight_hh.data.T
        w_hn_t = weight_hn.data.T
        for t in range(time - 1, -1, -1):
            dh = g_out[:, t] + dh_carry
            r, z, n = r_all[:, t], z_all[:, t], n_all[:, t]
            h_prev = h_prev_all[:, t]
            dz = dh * (h_prev - n)
            dnp = (dh * (1.0 - z)) * (1.0 - n * n)
            dn_pre[:, t] = dnp
            drh = dnp @ w_hn_t
            d_gates[:, t, :hidden] = (drh * h_prev) * r * (1.0 - r)
            d_gates[:, t, hidden:] = dz * z * (1.0 - z)
            dh_carry = dh * z + drh * r + d_gates[:, t] @ w_hh_t
        if h0.requires_grad:
            h0._accumulate(dh_carry)
        if x.requires_grad:
            x._accumulate(d_gates @ weight_ih.data.T + dn_pre @ weight_in.data.T)
        flat_g = d_gates.reshape(batch * time, 2 * hidden)
        flat_n = dn_pre.reshape(batch * time, hidden)
        flat_x = x.data.reshape(batch * time, -1)
        if weight_ih.requires_grad:
            weight_ih._accumulate(flat_x.T @ flat_g)
        if weight_hh.requires_grad:
            weight_hh._accumulate(h_prev_all.reshape(batch * time, hidden).T @ flat_g)
        if bias.requires_grad:
            bias._accumulate(flat_g.sum(axis=0))
        if weight_in.requires_grad:
            weight_in._accumulate(flat_x.T @ flat_n)
        if weight_hn.requires_grad:
            weight_hn._accumulate(rh_all.reshape(batch * time, hidden).T @ flat_n)
        if bias_n.requires_grad:
            bias_n._accumulate(flat_n.sum(axis=0))

    out_t._backward = _backward
    return out_t, out_t[:, -1, :]


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function (for testing)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        upper = fn(x)
        flat[i] = old - eps
        lower = fn(x)
        flat[i] = old
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad
