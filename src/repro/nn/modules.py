"""Neural-network building blocks on top of :mod:`repro.nn.tensor`.

These mirror the PyTorch modules used by the paper's implementation:
``Linear``, ``Embedding``, ``LSTM``, ``GRU``, causal ``Conv1d`` /
``TCN`` (for the TCN baseline), ``MLP`` and ``Sequential``.  All modules
expose ``parameters()`` / ``named_parameters()`` and a ``state_dict`` /
``load_state_dict`` pair for serialization.

Batch convention: sequence inputs are ``(batch, time, features)``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs, runtime
from .tensor import Tensor, affine, concat, gru_cell, gru_seq, lstm_cell, lstm_seq, stack


def _set_fused_mirror(enabled: bool) -> None:
    global _FUSED_KERNELS
    _FUSED_KERNELS = enabled


#: hot-loop mirror of ``runtime.flag("fused_kernels")`` — the fused
#: sequence kernels vs the op-by-op oracle path (kept for gradient
#: property tests and before/after benchmarking).  The canonical value
#: lives in :mod:`repro.runtime`; this module-level bool only exists so
#: forward passes read a plain global.
_FUSED_KERNELS = runtime.register_mirror("fused_kernels", _set_fused_mirror)


def fused_kernels_enabled() -> bool:
    return _FUSED_KERNELS


def set_fused_kernels(enabled: bool) -> bool:
    """Toggle the fused LSTM/GRU/affine kernels; returns previous value.

    .. deprecated:: use ``repro.runtime.configure(fused_kernels=...)``;
       this shim delegates there so both APIs stay consistent.
    """
    return runtime.set_flag("fused_kernels", enabled)


class fused_kernels:
    """Context manager pinning the fused-kernel switch."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled

    def __enter__(self) -> "fused_kernels":
        self._previous = set_fused_kernels(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_fused_kernels(self._previous)


class Module:
    """Base class: tracks sub-modules and parameters by attribute name."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int, shape: Tuple[int, ...]) -> np.ndarray:
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Affine map ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_glorot(rng, in_features, out_features, (in_features, out_features)), requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        if _FUSED_KERNELS:
            return affine(x, self.weight, self.bias)
        return x @ self.weight + self.bias


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)), requires_grad=True)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout; identity when ``training`` is False."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p <= 0.0:  # p validated in [0, 1)
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Chain modules, feeding each output into the next."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers."""

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        sizes = [in_features, *hidden, out_features]
        layers: List[Module] = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(a, b, rng=rng))
            if i < len(sizes) - 2:
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class LSTMCell(Module):
    """Single LSTM step; gates packed as [i, f, g, o]."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Tensor(_glorot(rng, input_size, hidden_size, (input_size, 4 * hidden_size)), requires_grad=True)
        self.weight_hh = Tensor(_glorot(rng, hidden_size, hidden_size, (hidden_size, 4 * hidden_size)), requires_grad=True)
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias of 1 aids training
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        if _FUSED_KERNELS:
            return lstm_cell(x, h_prev, c_prev, self.weight_ih, self.weight_hh, self.bias)
        return self.forward_reference(x, state)

    def forward_reference(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """Op-by-op composition (~15 graph nodes per step); the fused
        kernel must match it bit-for-bit forward and to numerical
        precision backward."""
        h_prev, c_prev = state
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class LSTM(Module):
    """Multi-layer LSTM over ``(batch, time, features)`` sequences."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            setattr(self, f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        batch, time, _ = x.shape
        if state is None:
            dtype = x.data.dtype
            state = [
                (
                    Tensor(np.zeros((batch, self.hidden_size), dtype=dtype)),
                    Tensor(np.zeros((batch, self.hidden_size), dtype=dtype)),
                )
                for _ in range(self.num_layers)
            ]
        else:
            state = list(state)  # never mutate the caller's list
        if _FUSED_KERNELS:
            # one fused graph node per layer covering the whole sequence
            out = x
            for layer, cell in enumerate(self.cells):
                h0, c0 = state[layer]
                out, h_t, c_t = lstm_seq(out, h0, c0, cell.weight_ih, cell.weight_hh, cell.bias)
                state[layer] = (h_t, c_t)
            return out, state
        if obs.metrics_enabled():
            obs.counter("kernel.lstm_loop")
        outputs: List[Tensor] = []
        for t in range(time):
            inp = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h, c = cell.forward_reference(inp, state[layer])
                state[layer] = (h, c)
                inp = h
            outputs.append(inp)
        return stack(outputs, axis=1), state


class GRUCell(Module):
    """Single GRU step; gates packed as [r, z]."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Tensor(_glorot(rng, input_size, hidden_size, (input_size, 2 * hidden_size)), requires_grad=True)
        self.weight_hh = Tensor(_glorot(rng, hidden_size, hidden_size, (hidden_size, 2 * hidden_size)), requires_grad=True)
        self.bias = Tensor(np.zeros(2 * hidden_size), requires_grad=True)
        self.weight_in = Tensor(_glorot(rng, input_size, hidden_size, (input_size, hidden_size)), requires_grad=True)
        self.weight_hn = Tensor(_glorot(rng, hidden_size, hidden_size, (hidden_size, hidden_size)), requires_grad=True)
        self.bias_n = Tensor(np.zeros(hidden_size), requires_grad=True)

    def forward(self, x: Tensor, h_prev: Tensor) -> Tensor:
        if _FUSED_KERNELS:
            return gru_cell(
                x, h_prev,
                self.weight_ih, self.weight_hh, self.bias,
                self.weight_in, self.weight_hn, self.bias_n,
            )
        return self.forward_reference(x, h_prev)

    def forward_reference(self, x: Tensor, h_prev: Tensor) -> Tensor:
        """Op-by-op composition kept as the fused kernel's oracle."""
        gates = x @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        hs = self.hidden_size
        r = gates[:, :hs].sigmoid()
        z = gates[:, hs:].sigmoid()
        n = (x @ self.weight_in + (r * h_prev) @ self.weight_hn + self.bias_n).tanh()
        return (1.0 - z) * n + z * h_prev


class GRU(Module):
    """Multi-layer GRU over ``(batch, time, features)`` sequences."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.cells = []
        for layer in range(num_layers):
            cell = GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            setattr(self, f"cell{layer}", cell)
            self.cells.append(cell)

    def forward(self, x: Tensor, state: Optional[List[Tensor]] = None) -> Tuple[Tensor, List[Tensor]]:
        batch, time, _ = x.shape
        if state is None:
            state = [
                Tensor(np.zeros((batch, self.hidden_size), dtype=x.data.dtype))
                for _ in range(self.num_layers)
            ]
        else:
            state = list(state)  # never mutate the caller's list
        if _FUSED_KERNELS:
            out = x
            for layer, cell in enumerate(self.cells):
                out, h_t = gru_seq(
                    out, state[layer],
                    cell.weight_ih, cell.weight_hh, cell.bias,
                    cell.weight_in, cell.weight_hn, cell.bias_n,
                )
                state[layer] = h_t
            return out, state
        if obs.metrics_enabled():
            obs.counter("kernel.gru_loop")
        outputs: List[Tensor] = []
        for t in range(time):
            inp = x[:, t, :]
            for layer, cell in enumerate(self.cells):
                h = cell.forward_reference(inp, state[layer])
                state[layer] = h
                inp = h
            outputs.append(inp)
        return stack(outputs, axis=1), state


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Tensor(np.ones(normalized_shape), requires_grad=True)
        self.bias = Tensor(np.zeros(normalized_shape), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((var + self.eps) ** -0.5)
        return normalized * self.weight + self.bias


class CausalSelfAttention(Module):
    """Single-head causal self-attention over ``(batch, time, features)``.

    Future positions are masked out with a large negative bias before
    the softmax, so position ``t`` attends only to ``<= t``.
    """

    def __init__(self, embed_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.query = Linear(embed_dim, embed_dim, rng=rng)
        self.key = Linear(embed_dim, embed_dim, rng=rng)
        self.value = Linear(embed_dim, embed_dim, rng=rng)
        self.out = Linear(embed_dim, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        _, time, _ = x.shape
        q = self.query(x)
        k = self.key(x)
        v = self.value(x)
        scores = (q @ k.transpose(0, 2, 1)) * (1.0 / math.sqrt(self.embed_dim))
        causal_bias = np.triu(np.full((time, time), -1e9), k=1)
        weights = (scores + Tensor(causal_bias)).softmax(axis=-1)
        return self.out(weights @ v)


class TransformerEncoder(Module):
    """Tiny pre-activation transformer: attention + MLP with residuals.

    The paper lists transformers as a drop-in alternative to the RNN
    block of Prism5G (future directions, §9); this module provides that
    option.  Input is projected to ``hidden`` and positional ramps are
    added so attention can distinguish time steps.
    """

    def __init__(
        self,
        input_size: int,
        hidden: int,
        num_layers: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden = hidden
        self.proj = Linear(input_size, hidden, rng=rng)
        self.blocks = []
        for i in range(num_layers):
            attention = CausalSelfAttention(hidden, rng=rng)
            feedforward = MLP(hidden, [2 * hidden], hidden, rng=rng)
            norm_a = LayerNorm(hidden)
            norm_f = LayerNorm(hidden)
            setattr(self, f"attn{i}", attention)
            setattr(self, f"ff{i}", feedforward)
            setattr(self, f"norm_a{i}", norm_a)
            setattr(self, f"norm_f{i}", norm_f)
            self.blocks.append((attention, feedforward, norm_a, norm_f))

    def forward(self, x: Tensor, state=None) -> Tuple[Tensor, None]:
        batch, time, _ = x.shape
        position = np.broadcast_to(
            np.linspace(-1.0, 1.0, time)[None, :, None], (batch, time, 1)
        )
        h = self.proj(x) + Tensor(np.tile(position, (1, 1, self.hidden)) * 0.1)
        for attention, feedforward, norm_a, norm_f in self.blocks:
            h = h + attention(norm_a(h))
            h = h + feedforward(norm_f(h))
        return h, None


class CausalConv1d(Module):
    """1-D convolution with left padding so output only sees the past.

    Input/output shape: ``(batch, time, channels)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        fan_in = in_channels * kernel_size
        self.weight = Tensor(
            _glorot(rng, fan_in, out_channels, (kernel_size, in_channels, out_channels)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        batch, time, _ = x.shape
        pad = (self.kernel_size - 1) * self.dilation
        padded = concat([Tensor(np.zeros((batch, pad, self.in_channels))), x], axis=1)
        # Sum over kernel taps: y[t] = sum_k x[t - (K-1-k)*d] @ W[k]
        terms = []
        for k in range(self.kernel_size):
            start = k * self.dilation
            window = padded[:, start : start + time, :]
            terms.append(window @ self.weight[k])
        out = terms[0]
        for term in terms[1:]:
            out = out + term
        return out + self.bias


class TCNBlock(Module):
    """Residual temporal block: two dilated causal convs + ReLU."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng=rng)
        self.conv2 = CausalConv1d(out_channels, out_channels, kernel_size, dilation, rng=rng)
        self.downsample = Linear(in_channels, out_channels, rng=rng) if in_channels != out_channels else None

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv2(self.conv1(x).relu()).relu()
        residual = x if self.downsample is None else self.downsample(x)
        return out + residual


class TCN(Module):
    """Temporal convolutional network (Bai et al. style) over sequences."""

    def __init__(
        self,
        input_size: int,
        channels: Sequence[int],
        kernel_size: int = 3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.blocks = []
        prev = input_size
        for i, ch in enumerate(channels):
            block = TCNBlock(prev, ch, kernel_size, dilation=2 ** i, rng=rng)
            setattr(self, f"block{i}", block)
            self.blocks.append(block)
            prev = ch

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x
