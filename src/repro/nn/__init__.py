"""Numpy-based neural network substrate (autograd, modules, training).

Replaces PyTorch, which the paper uses but is unavailable offline.
"""

from .losses import mae, mae_loss, mape, mse_loss, rmse, rmse_loss
from .modules import (
    MLP,
    TCN,
    CausalConv1d,
    CausalSelfAttention,
    Dropout,
    Embedding,
    GRU,
    GRUCell,
    LayerNorm,
    Linear,
    LSTM,
    LSTMCell,
    Module,
    ReLU,
    Sequential,
    Tanh,
    TCNBlock,
    TransformerEncoder,
)
from .optim import Adam, Optimizer, SGD
from .preprocessing import MinMaxScaler, StandardScaler
from .serialization import load_state, save_state
from .tensor import Tensor, concat, numerical_gradient, stack, where
from .training import Trainer, TrainingHistory

__all__ = [
    "Adam",
    "CausalConv1d",
    "CausalSelfAttention",
    "Dropout",
    "Embedding",
    "GRU",
    "GRUCell",
    "LayerNorm",
    "Linear",
    "LSTM",
    "LSTMCell",
    "MLP",
    "MinMaxScaler",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "StandardScaler",
    "TCN",
    "TCNBlock",
    "Tanh",
    "Tensor",
    "TransformerEncoder",
    "Trainer",
    "TrainingHistory",
    "concat",
    "load_state",
    "mae",
    "mae_loss",
    "mape",
    "mse_loss",
    "numerical_gradient",
    "rmse",
    "rmse_loss",
    "save_state",
    "stack",
    "where",
]
