"""Prism5G: the CA-aware deep-learning throughput predictor (paper §5).

Architecture (Fig 16):

1. **Per-CC modeling** — a weights-shared RNN (LSTM by default, GRU
   optional: the paper notes the building block is swappable) encodes
   each component carrier's feature history ``X_c`` after gating it
   with the RRC-derived activity mask: ``X'_c = X_c (.) I``.
2. **CA event monitoring** — the binary mask vector ``I`` (built from
   RRC SCell add/release signaling) is embedded into a dense vector
   ``E`` describing the current channel combination.
3. **Fusion learning** — ``h_f = Fusion([h_1..h_C, E])`` captures the
   inter-carrier interplay (power splits, RB throttling) that §4.3
   shows cannot be inferred from any single CC.
4. **Aggregated prediction** — per-CC MLP heads on ``h'_c = h_c + h_f``
   predict each carrier's future throughput; the aggregate is their
   (mask-gated) sum: ``y = sum_c I_c * MLP(h'_c)``.

Input packing: one flat array per time step —
``[cc0 features.., cc1 features.., ..., mask bits.., aggregate tput]``
(see :func:`pack_inputs`) so the standard Trainer can batch it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs, runtime
from ..nn.modules import (
    Embedding,
    Linear,
    LSTM,
    LSTMCell,
    GRU,
    MLP,
    Module,
    TransformerEncoder,
    fused_kernels_enabled,
)
from ..nn.tensor import Tensor, concat, lstm_decoder_seq, no_grad, stack

def _set_batched_mirror(enabled: bool) -> None:
    global _BATCHED_CC
    _BATCHED_CC = enabled


#: hot-loop mirror of ``runtime.flag("batched_cc")`` — the
#: carrier-folded (batched) forward vs the per-CC Python loop (kept as
#: a bit-identity oracle for the property tests and before/after
#: benchmarking).  The canonical value lives in :mod:`repro.runtime`.
_BATCHED_CC = runtime.register_mirror("batched_cc", _set_batched_mirror)

#: row cap per fused-kernel call in the folded forward.  Recurrent step
#: arrays at the full fold height (C·B rows) spill the L2 cache, so the
#: folded path runs the encoder/decoder over row blocks of at most this
#: many sequences.  Values are unaffected: wide-GEMM rows are invariant
#: to batch height, everything else is elementwise.
#:
#: The default is benchmark-derived, not hand-picked: it is the median
#: winner of :func:`tune_fold_chunk_rows` on the reference container
#: (see ``benchmarks/bench_perf_training.py --tune``), which times real
#: chunked encoder passes over the candidate grid.  Re-derive on new
#: hardware with ``tune_fold_chunk_rows(apply=True)``; the value in
#: effect (plus the tuning evidence, when a tune ran in-process) is
#: stamped into every run manifest via ``repro.obs.manifest.tuning``.
_FOLD_CHUNK_ROWS = 256

#: evidence from the last in-process :func:`tune_fold_chunk_rows` run
#: (``None`` when the compiled-in default is in effect untuned).
_FOLD_TUNING: Optional[Dict[str, object]] = None


def fold_chunk_rows() -> int:
    """The encoder/decoder fold-chunk row cap currently in effect."""
    return _FOLD_CHUNK_ROWS


def set_fold_chunk_rows(rows: int) -> int:
    """Override the fold-chunk row cap; returns the previous value."""
    global _FOLD_CHUNK_ROWS
    rows = int(rows)
    if rows < 1:
        raise ValueError("fold chunk rows must be >= 1")
    previous = _FOLD_CHUNK_ROWS
    _FOLD_CHUNK_ROWS = rows
    return previous


def tune_fold_chunk_rows(
    rows: int = 2048,
    time_steps: int = 16,
    features: int = 10,
    hidden: int = 64,
    candidates: Sequence[int] = (128, 256, 384, 512, 768, 1024, 2048),
    repeats: int = 3,
    apply: bool = True,
    seed: int = 0,
) -> Dict[str, object]:
    """Pick the fold-chunk crossover by timing real chunked encoder passes.

    Runs a no-grad LSTM encoder forward over a ``(rows, time_steps,
    features)`` fold at every candidate row cap (``repeats`` times
    each, best-of taken to reject scheduler noise) and selects the
    fastest.  Chunking never changes values — wide-GEMM rows are
    batch-height invariant — so this is purely a throughput decision
    and safe to apply mid-run.  With ``apply=True`` the winner becomes
    the process-wide cap (:func:`set_fold_chunk_rows`) and the evidence
    is kept for manifest stamping.
    """
    from time import perf_counter

    rng = np.random.default_rng(seed)
    folded = rng.standard_normal((int(rows), int(time_steps), int(features)))
    encoder = LSTM(int(features), int(hidden))
    timings: Dict[int, float] = {}
    with no_grad():
        for cap in candidates:
            cap = int(cap)
            best = math.inf
            for _ in range(max(1, int(repeats))):
                start_t = perf_counter()
                n_blocks = -(-len(folded) // cap)
                base, rem = divmod(len(folded), n_blocks)
                start = 0
                for j in range(n_blocks):
                    stop = start + base + (1 if j < rem else 0)
                    encoder(Tensor(folded[start:stop]))
                    start = stop
                best = min(best, perf_counter() - start_t)
            timings[cap] = best
    chosen = min(timings, key=lambda cap: timings[cap])
    result: Dict[str, object] = {
        "chosen_rows": chosen,
        "batch_rows": int(rows),
        "time_steps": int(time_steps),
        "hidden": int(hidden),
        "timings_s": {str(cap): timings[cap] for cap in sorted(timings)},
        "applied": bool(apply),
    }
    if apply:
        global _FOLD_TUNING
        set_fold_chunk_rows(chosen)
        _FOLD_TUNING = result
    return result


def batched_cc_enabled() -> bool:
    return _BATCHED_CC


def set_batched_cc(enabled: bool) -> bool:
    """Toggle the carrier-folded forward; returns the previous value.

    .. deprecated:: use ``repro.runtime.configure(batched_cc=...)``;
       this shim delegates there so both APIs stay consistent.
    """
    return runtime.set_flag("batched_cc", enabled)


class batched_cc:
    """Context manager pinning the carrier-folding switch."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled

    def __enter__(self) -> "batched_cc":
        self._previous = set_batched_cc(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_batched_cc(self._previous)


def pack_inputs(x: np.ndarray, mask: np.ndarray, y_hist: np.ndarray) -> np.ndarray:
    """Pack (n, T, C, F) features + (n, T, C) mask + (n, T) history.

    Returns a flat (n, T, C*F + C + 1) array; models unpack it knowing
    (C, F).
    """
    n, t, c, f = x.shape
    if mask.shape != (n, t, c):
        raise ValueError(f"mask shape {mask.shape} does not match features {(n, t, c)}")
    if y_hist.shape != (n, t):
        raise ValueError(f"y_hist shape {y_hist.shape} does not match {(n, t)}")
    return np.concatenate(
        [x.reshape(n, t, c * f), mask, y_hist[..., None]], axis=2
    )


def unpack_inputs(packed: np.ndarray, n_ccs: int, n_features: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_inputs`."""
    n, t, d = packed.shape
    expected = n_ccs * n_features + n_ccs + 1
    if d != expected:
        raise ValueError(f"packed width {d} != expected {expected} for C={n_ccs}, F={n_features}")
    x = packed[:, :, : n_ccs * n_features].reshape(n, t, n_ccs, n_features)
    mask = packed[:, :, n_ccs * n_features : n_ccs * n_features + n_ccs]
    y_hist = packed[:, :, -1]
    return x, mask, y_hist


class Prism5G(Module):
    """The CA-aware throughput prediction model.

    Parameters
    ----------
    n_ccs, n_features:
        Carrier-slot count C and per-CC feature count F.
    horizon:
        Output sequence length (10 in the paper).
    hidden:
        RNN/MLP hidden width (paper: 128; scaled down by default since
        the numpy substrate trains on CPU).
    rnn:
        ``"lstm"`` (paper default), ``"gru"``, or ``"transformer"``
        (the paper's future-work variant) — the swappable block.
    use_state_trigger:
        Gate inputs and outputs with the RRC mask (ablation: Table 13
        "No State").
    use_fusion:
        Enable the fusion module (ablation: Table 13 "No Fusion").
    embed_dim:
        Dense size of the channel-combination embedding E.
    head:
        ``"decoder"`` (default): a weight-shared autoregressive LSTM
        decoder emits the horizon step by step per carrier — the same
        sequence-output discipline as Lumos5G's Seq2Seq, which trains
        markedly better on this substrate.  ``"mlp"``: the paper's
        literal one-shot MLP head (kept for fidelity/ablation).
    """

    def __init__(
        self,
        n_ccs: int,
        n_features: int,
        horizon: int = 10,
        hidden: int = 32,
        rnn: str = "lstm",
        use_state_trigger: bool = True,
        use_fusion: bool = True,
        embed_dim: int = 8,
        head: str = "decoder",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if rnn not in ("lstm", "gru", "transformer"):
            raise ValueError("rnn must be 'lstm', 'gru' or 'transformer'")
        if head not in ("decoder", "mlp"):
            raise ValueError("head must be 'decoder' or 'mlp'")
        rng = np.random.default_rng(seed)
        self.n_ccs = n_ccs
        self.n_features = n_features
        self.horizon = horizon
        self.hidden = hidden
        self.use_state_trigger = use_state_trigger
        self.use_fusion = use_fusion
        self.head_kind = head
        # shared per-CC encoder: features + own mask bit + aggregate history
        in_size = n_features + 2
        if rnn == "lstm":
            self.encoder = LSTM(in_size, hidden, num_layers=2, rng=rng)
        elif rnn == "gru":
            self.encoder = GRU(in_size, hidden, num_layers=2, rng=rng)
        else:  # the paper's future-work variant (§9): transformer block
            self.encoder = TransformerEncoder(in_size, hidden, num_layers=1, rng=rng)
        self._rnn_kind = rnn
        self.combo_embedding = Embedding(2 ** n_ccs, embed_dim, rng=rng)
        self.fusion = MLP(n_ccs * hidden + embed_dim, [hidden], hidden, rng=rng)
        if head == "mlp":
            self.head = MLP(hidden, [hidden], horizon, rng=rng)
        else:
            self.decoder_cell = LSTMCell(1, hidden, rng=rng)
            self.decoder_out = Linear(hidden, 1, rng=rng)

    def _decode(self, h_c: Tensor, chunks: int = 1) -> Tensor:
        """Roll the shared decoder ``horizon`` steps from state ``h_c``.

        With the fused kernels enabled the whole rollout is one
        :func:`~repro.nn.tensor.lstm_decoder_seq` graph node; the
        step-by-step loop is kept as its bit-identity oracle.
        ``chunks`` (the carrier count when folding) splits the narrow
        head projection so its GEMV rounding matches the per-CC loop.
        """
        batch = h_c.shape[0]
        dtype = h_c.data.dtype
        if fused_kernels_enabled():
            preds = lstm_decoder_seq(
                Tensor(np.zeros((batch, 1), dtype=dtype)),
                h_c,
                Tensor(np.zeros((batch, self.hidden), dtype=dtype)),
                self.decoder_cell.weight_ih,
                self.decoder_cell.weight_hh,
                self.decoder_cell.bias,
                self.decoder_out.weight,
                self.decoder_out.bias,
                self.horizon,
                out_chunks=chunks,
            )
            return preds.reshape(batch, self.horizon)
        return self._decode_loop(h_c)

    def _decode_loop(self, h_c: Tensor) -> Tensor:
        """Op-by-op decoder rollout (oracle for the fused primitive)."""
        batch = h_c.shape[0]
        hidden_state = h_c
        dtype = h_c.data.dtype
        cell_state = Tensor(np.zeros((batch, self.hidden), dtype=dtype))
        step_input = Tensor(np.zeros((batch, 1), dtype=dtype))
        outputs: List[Tensor] = []
        for _ in range(self.horizon):
            hidden_state, cell_state = self.decoder_cell(step_input, (hidden_state, cell_state))
            prediction = self.decoder_out(hidden_state)
            outputs.append(prediction)
            step_input = prediction
        return concat(outputs, axis=1)

    def _apply_head(self, h_c: Tensor) -> Tensor:
        if self.head_kind == "mlp":
            return self.head(h_c)
        return self._decode(h_c)

    # ------------------------------------------------------------------
    def _forward_folded(self, data: np.ndarray) -> Tensor:
        """Carrier-folded forward: one encoder/decoder call for all CCs.

        The per-CC inputs ``(B, T, C, F+2)`` are folded carrier-major to
        ``(C*B, T, F+2)`` — row ``c*B + b`` is carrier ``c`` of sample
        ``b`` — so the weight-shared encoder runs as a single fused
        sequence kernel over ``C*B`` sequences instead of ``C`` separate
        calls, and the decoder rollout likewise folds carriers into the
        batch axis.  Values are bit-identical to the per-CC loop: the
        wide GEMMs produce the same rows regardless of batch height,
        every other op is elementwise or a pure reshape, and the narrow
        head projections are evaluated per carrier-contiguous chunk so
        their GEMV rounding matches the loop's row count (see
        :func:`~repro.nn.tensor.lstm_decoder_seq`).
        """
        x, mask, y_hist = unpack_inputs(data, self.n_ccs, self.n_features)
        n, t, c, f = x.shape

        features = x * mask[..., None] if self.use_state_trigger else x
        hist = np.broadcast_to(y_hist[:, :, None, None], (n, t, c, 1))
        folded = np.concatenate([features, mask[..., None], hist], axis=3)
        # (B, T, C, F+2) -> (C*B, T, F+2), carrier-major
        folded = folded.transpose(2, 0, 1, 3).reshape(c * n, t, f + 2)

        rows = c * n
        if rows > _FOLD_CHUNK_ROWS and self._rnn_kind != "transformer":
            # L2 blocking: at full fold height the recurrent step loop's
            # working set spills the cache, so run the (row-independent)
            # encoder over near-equal row blocks.  The wide gate GEMMs
            # are batch-height invariant, so the fold stays bit-identical.
            n_blocks = -(-rows // _FOLD_CHUNK_ROWS)
            base, rem = divmod(rows, n_blocks)
            h_parts: List[Tensor] = []
            start = 0
            for j in range(n_blocks):
                stop = start + base + (1 if j < rem else 0)
                block_out, _ = self.encoder(Tensor(folded[start:stop]))
                h_parts.append(block_out[:, -1, :])
                start = stop
            h_last = concat(h_parts, axis=0).reshape(c, n, self.hidden)
        else:
            enc_out, _ = self.encoder(Tensor(folded))
            h_last = enc_out[:, -1, :].reshape(c, n, self.hidden)

        if self.use_fusion:
            combo_index = self._combo_indices(mask)
            embed = self.combo_embedding(combo_index)
            h_cat = h_last.transpose(1, 0, 2).reshape(n, c * self.hidden)
            h_fusion = self.fusion(concat([h_cat, embed], axis=1))
            h_head = h_last + h_fusion.reshape(1, n, self.hidden)
        else:
            h_head = h_last

        if self.head_kind == "decoder" and fused_kernels_enabled():
            if rows > _FOLD_CHUNK_ROWS:
                # same L2 blocking for the rollout; per-carrier blocks
                # keep the head's GEMV row count equal to the loop's
                preds = concat([self._decode(h_head[cc]) for cc in range(c)], axis=0)
            else:
                preds = self._decode(h_head.reshape(c * n, self.hidden), chunks=c)
        else:
            # mlp head / unfused decoder: narrow output GEMMs are not
            # batch-height invariant, so apply the head per carrier
            preds = concat([self._apply_head(h_head[cc]) for cc in range(c)], axis=0)
        preds = preds.reshape(c, n, self.horizon)
        if self.use_state_trigger:
            preds = preds * Tensor(np.ascontiguousarray(mask[:, -1, :].T)[:, :, None])

        # sequential per-CC adds (not a tree reduction) so the aggregate
        # matches the loop oracle bit for bit
        total = preds[0]
        for cc in range(1, c):
            total = total + preds[cc]
        per_cc_flat = preds.transpose(1, 2, 0).reshape(n, self.horizon * c)
        return concat([total, per_cc_flat], axis=1)

    def _per_cc_predictions(self, packed) -> List[Tensor]:
        """Per-carrier forecast tensors, each (batch, horizon).

        The per-CC Python loop — kept as the bit-identity oracle for
        :meth:`_forward_folded` (toggle with :func:`set_batched_cc`).
        """
        data = packed.data if isinstance(packed, Tensor) else np.asarray(packed)
        x, mask, y_hist = unpack_inputs(data, self.n_ccs, self.n_features)

        hidden_states: List[Tensor] = []
        for c in range(self.n_ccs):
            features_c = x[:, :, c, :]
            mask_c = mask[:, :, c : c + 1]
            if self.use_state_trigger:
                features_c = features_c * mask_c  # X'_c = X_c (.) I
            inp = Tensor(np.concatenate([features_c, mask_c, y_hist[..., None]], axis=2))
            out, _ = self.encoder(inp)
            hidden_states.append(out[:, -1, :])

        if self.use_fusion:
            combo_index = self._combo_indices(mask)
            embed = self.combo_embedding(combo_index)
            h_fusion = self.fusion(concat(hidden_states + [embed], axis=1))
        else:
            h_fusion = None

        last_mask = mask[:, -1, :]
        preds: List[Tensor] = []
        for c in range(self.n_ccs):
            h_c = hidden_states[c] if h_fusion is None else hidden_states[c] + h_fusion
            pred_c = self._apply_head(h_c)
            if self.use_state_trigger:
                pred_c = pred_c * Tensor(last_mask[:, c : c + 1])
            preds.append(pred_c)
        return preds

    def forward(self, packed: Tensor) -> Tensor:
        """Predict ``(batch, horizon * (1 + C))``: aggregate then per-CC.

        Columns ``[:horizon]`` are the aggregate forecast (the sum of
        the per-CC heads); the rest are the per-CC forecasts flattened
        ``(horizon, C)``-major, used for per-carrier supervision and
        Fig 33-34 style per-cell plots.  Use
        :meth:`aggregate_prediction` / :meth:`predict_per_cc` to slice,
        or :meth:`predict_all` for both in one pass.
        """
        data = packed.data if isinstance(packed, Tensor) else np.asarray(packed)
        if obs.metrics_enabled():
            obs.counter("kernel.prism.folded" if _BATCHED_CC else "kernel.prism.loop")
        if _BATCHED_CC:
            return self._forward_folded(data)
        per_cc = self._per_cc_predictions(packed)
        total: Optional[Tensor] = None
        for pred_c in per_cc:
            total = pred_c if total is None else total + pred_c
        per_cc_stacked = stack(per_cc, axis=2)  # (B, H, C)
        batch = per_cc_stacked.shape[0]
        return concat([total, per_cc_stacked.reshape(batch, self.horizon * self.n_ccs)], axis=1)

    def _combo_indices(self, mask: np.ndarray) -> np.ndarray:
        """Encode the final-step activity pattern as an integer id."""
        last = (mask[:, -1, :] > 0.5).astype(np.int64)
        weights = (1 << np.arange(self.n_ccs)).astype(np.int64)
        return last @ weights

    # ------------------------------------------------------------------
    def predict_all(self, packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One inference forward returning ``(aggregate, per_cc)``.

        ``aggregate`` has shape (batch, horizon); ``per_cc`` has shape
        (batch, C, horizon).  Callers that need both (Fig 33-34 style
        plots) should use this instead of calling
        :meth:`aggregate_prediction` then :meth:`predict_per_cc`, which
        would run the network twice.
        """
        with no_grad():  # pure inference: skip graph construction
            out = self.forward(Tensor(np.asarray(packed))).numpy()
        agg = out[:, : self.horizon]
        per_cc = np.ascontiguousarray(
            out[:, self.horizon :].reshape(-1, self.horizon, self.n_ccs).transpose(0, 2, 1)
        )
        return agg, per_cc

    def aggregate_prediction(self, packed: np.ndarray) -> np.ndarray:
        """Aggregate forecast only, shape (batch, horizon)."""
        return self.predict_all(packed)[0]

    def predict_per_cc(self, packed: np.ndarray) -> np.ndarray:
        """Per-carrier predictions, shape (batch, C, horizon) (Fig 33-34)."""
        return self.predict_all(packed)[1]
