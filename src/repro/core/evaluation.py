"""Evaluation harness: trains predictors on a sub-dataset, reports RMSE.

Single entry point behind Table 4 (main comparison), Table 13
(ablation) and Table 14 (generalizability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..data.datasets import MLDataset
from ..data.splits import random_split, trace_level_split
from ..data.windowing import WindowedDataset
from .predictors import DeepConfig, Predictor


@dataclass
class EvaluationResult:
    """RMSE per predictor on one dataset, plus the improvement metric."""

    dataset_name: str
    rmse: Dict[str, float] = field(default_factory=dict)
    predictions: Dict[str, np.ndarray] = field(default_factory=dict)

    def improvement_over_best_baseline(self, ours: str = "Prism5G") -> float:
        """Paper's Improv.%: RMSE reduction vs the best non-Prism baseline."""
        baselines = {k: v for k, v in self.rmse.items() if not k.startswith(ours)}
        if ours not in self.rmse or not baselines:
            raise ValueError("need Prism5G and at least one baseline")
        best = min(baselines.values())
        return (best - self.rmse[ours]) / best * 100.0


def make_default_predictors(config: Optional[DeepConfig] = None, include: Optional[Sequence[str]] = None):
    """Instantiate the Table 4 predictor line-up."""
    from .predictors import (
        GBDTPredictor,
        LSTMPredictor,
        Lumos5GPredictor,
        Prism5GPredictor,
        ProphetPredictor,
        RFPredictor,
        TCNPredictor,
    )

    config = config or DeepConfig()
    lineup: Dict[str, Predictor] = {
        "Prophet": ProphetPredictor(),
        "LSTM": LSTMPredictor(config),
        "TCN": TCNPredictor(config),
        "Lumos5G": Lumos5GPredictor(config),
        "GBDT": GBDTPredictor(),
        "RF": RFPredictor(),
        "Prism5G": Prism5GPredictor(config),
    }
    if include is not None:
        lineup = {name: lineup[name] for name in include}
    return lineup


def evaluate_predictors(
    dataset: MLDataset,
    predictors: Dict[str, Predictor],
    split: str = "random",
    seed: int = 0,
    keep_predictions: bool = False,
    dataset_name: str = "",
) -> EvaluationResult:
    """Split, fit every predictor, and report test RMSE.

    ``split`` is ``"random"`` (Table 4 protocol) or ``"trace"``
    (Table 14 generalizability protocol).
    """
    splitter = random_split if split == "random" else trace_level_split
    train, val, test = splitter(dataset.windows, 0.5, 0.2, 0.3, seed=seed)
    result = EvaluationResult(dataset_name=dataset_name or (dataset.spec.name if dataset.spec else ""))
    with obs.span(
        "evaluate.run",
        dataset=result.dataset_name,
        split=split,
        predictors=sorted(predictors),
    ):
        for name, predictor in predictors.items():
            with obs.span("evaluate.fit", predictor=name):
                predictor.fit(train, val)
            with obs.span("evaluate.predict", predictor=name, samples=len(test)):
                pred = predictor.predict(test)
            result.rmse[name] = float(np.sqrt(np.mean((pred - test.y) ** 2)))
            if obs.metrics_enabled():
                obs.counter("evaluate.predictors")
                obs.gauge(f"evaluate.rmse.{name}", result.rmse[name])
            if keep_predictions:
                result.predictions[name] = pred
    obs.write_manifest(
        kind="evaluation",
        config={
            "dataset": result.dataset_name,
            "split": split,
            "predictors": sorted(predictors),
            "n_train": len(train),
            "n_val": len(val),
            "n_test": len(test),
        },
        seed=seed,
        extra={"rmse": result.rmse},
    )
    return result


def evaluate_on_new_traces(
    predictors: Dict[str, Predictor],
    train_dataset: MLDataset,
    new_windows: WindowedDataset,
    seed: int = 0,
) -> Dict[str, float]:
    """Fit on one dataset, test on windows from entirely new routes.

    The new windows must already be normalized with the training
    dataset's scalers (Table 14, row 2).
    """
    train, val, _ = random_split(train_dataset.windows, 0.5, 0.2, 0.3, seed=seed)
    out: Dict[str, float] = {}
    for name, predictor in predictors.items():
        predictor.fit(train, val)
        pred = predictor.predict(new_windows)
        out[name] = float(np.sqrt(np.mean((pred - new_windows.y) ** 2)))
    return out
