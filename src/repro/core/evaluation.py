"""Evaluation harness: trains predictors on a sub-dataset, reports RMSE.

Single entry point behind Table 4 (main comparison), Table 13
(ablation) and Table 14 (generalizability).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .. import obs
from ..data.datasets import MLDataset
from ..data.splits import random_split, trace_level_split
from ..data.windowing import WindowedDataset
from ..nn.losses import rmse
from .predictors import (
    TABLE4_LINEUP,
    DeepConfig,
    Predictor,
    create_predictor,
    registered_predictors,
)


@dataclass
class EvaluationResult:
    """RMSE per predictor on one dataset, plus the improvement metric."""

    dataset_name: str
    rmse: Dict[str, float] = field(default_factory=dict)
    predictions: Dict[str, np.ndarray] = field(default_factory=dict)

    def improvement_over_best_baseline(self, ours: str = "Prism5G") -> float:
        """Paper's Improv.%: RMSE reduction vs the best non-Prism baseline."""
        baselines = {k: v for k, v in self.rmse.items() if not k.startswith(ours)}
        if ours not in self.rmse or not baselines:
            raise ValueError("need Prism5G and at least one baseline")
        best = min(baselines.values())
        return (best - self.rmse[ours]) / best * 100.0


def make_default_predictors(
    config: Optional[DeepConfig] = None, include: Optional[Sequence[str]] = None
) -> Dict[str, Predictor]:
    """Instantiate the Table 4 predictor line-up from the registry.

    ``include`` selects a subset by name — any registered name works,
    including the Table 13 ablations.  Unknown names raise
    ``ValueError`` listing the registered predictors.
    """
    config = config or DeepConfig()
    names = TABLE4_LINEUP if include is None else tuple(include)
    unknown = sorted(set(names) - set(registered_predictors()))
    if unknown:
        raise ValueError(
            f"unknown predictor(s) {unknown}; registered predictors: {registered_predictors()}"
        )
    return {name: create_predictor(name, config) for name in names}


def evaluate_predictors(
    dataset: MLDataset,
    predictors: Dict[str, Predictor],
    split: str = "random",
    seed: int = 0,
    keep_predictions: bool = False,
    dataset_name: str = "",
) -> EvaluationResult:
    """Split, fit every predictor, and report test RMSE.

    ``split`` is ``"random"`` (Table 4 protocol) or ``"trace"``
    (Table 14 generalizability protocol).
    """
    splitter = random_split if split == "random" else trace_level_split
    train, val, test = splitter(dataset.windows, 0.5, 0.2, 0.3, seed=seed)
    result = EvaluationResult(dataset_name=dataset_name or (dataset.spec.name if dataset.spec else ""))
    with obs.span(
        "evaluate.run",
        dataset=result.dataset_name,
        split=split,
        predictors=sorted(predictors),
    ):
        for name, predictor in predictors.items():
            with obs.span("evaluate.fit", predictor=name):
                predictor.fit(train, val)
            with obs.span("evaluate.predict", predictor=name, samples=len(test)):
                pred = predictor.predict(test)
            result.rmse[name] = rmse(pred, test.y)
            if obs.metrics_enabled():
                obs.counter("evaluate.predictors")
                obs.gauge(f"evaluate.rmse.{name}", result.rmse[name])
            if keep_predictions:
                result.predictions[name] = pred
    obs.write_manifest(
        kind="evaluation",
        config={
            "dataset": result.dataset_name,
            "split": split,
            "predictors": sorted(predictors),
            "n_train": len(train),
            "n_val": len(val),
            "n_test": len(test),
        },
        seed=seed,
        extra={"rmse": result.rmse},
    )
    return result


def evaluate_on_new_traces(
    predictors: Dict[str, Predictor],
    train_dataset: MLDataset,
    new_windows: WindowedDataset,
    seed: int = 0,
) -> Dict[str, float]:
    """Fit on one dataset, test on windows from entirely new routes.

    The new windows must already be normalized with the training
    dataset's scalers (Table 14, row 2).
    """
    train, val, _ = random_split(train_dataset.windows, 0.5, 0.2, 0.3, seed=seed)
    out: Dict[str, float] = {}
    for name, predictor in predictors.items():
        predictor.fit(train, val)
        pred = predictor.predict(new_windows)
        out[name] = rmse(pred, new_windows.y)
    return out
