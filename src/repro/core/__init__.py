"""Prism5G model, baseline predictors, and the evaluation harness."""

from .evaluation import (
    EvaluationResult,
    evaluate_on_new_traces,
    evaluate_predictors,
    make_default_predictors,
)
from .predictors import (
    DeepConfig,
    GBDTPredictor,
    LSTMPredictor,
    Lumos5GPredictor,
    PREDICTOR_REGISTRY,
    Predictor,
    Prism5GPredictor,
    ProphetPredictor,
    RFPredictor,
    TCNPredictor,
)
from .prism5g import Prism5G, pack_inputs, unpack_inputs

__all__ = [
    "DeepConfig",
    "EvaluationResult",
    "GBDTPredictor",
    "LSTMPredictor",
    "Lumos5GPredictor",
    "PREDICTOR_REGISTRY",
    "Predictor",
    "Prism5G",
    "Prism5GPredictor",
    "ProphetPredictor",
    "RFPredictor",
    "TCNPredictor",
    "evaluate_on_new_traces",
    "evaluate_predictors",
    "make_default_predictors",
    "pack_inputs",
    "unpack_inputs",
]
