"""Prism5G model, baseline predictors, and the evaluation harness."""

from .evaluation import (
    EvaluationResult,
    evaluate_on_new_traces,
    evaluate_predictors,
    make_default_predictors,
)
from .predictors import (
    DeepConfig,
    GBDTPredictor,
    LSTMPredictor,
    Lumos5GPredictor,
    PREDICTOR_REGISTRY,
    Predictor,
    Prism5GPredictor,
    ProphetPredictor,
    RFPredictor,
    TABLE4_LINEUP,
    TCNPredictor,
    create_predictor,
    register_predictor,
    registered_predictors,
)
from .prism5g import Prism5G, pack_inputs, unpack_inputs

__all__ = [
    "DeepConfig",
    "EvaluationResult",
    "GBDTPredictor",
    "LSTMPredictor",
    "Lumos5GPredictor",
    "PREDICTOR_REGISTRY",
    "Predictor",
    "Prism5G",
    "Prism5GPredictor",
    "ProphetPredictor",
    "RFPredictor",
    "TABLE4_LINEUP",
    "TCNPredictor",
    "create_predictor",
    "evaluate_on_new_traces",
    "evaluate_predictors",
    "make_default_predictors",
    "register_predictor",
    "registered_predictors",
    "pack_inputs",
    "unpack_inputs",
]
