"""Uniform fit/predict API over every throughput predictor in the paper.

Baselines (§6.1): Prophet (statistics-only), LSTM [28], TCN [9],
Lumos5G's Seq2Seq [32], GBDT [32] and RF [4]; plus Prism5G itself and
its ablations.  Every predictor consumes a
:class:`~repro.data.windowing.WindowedDataset` (normalized) and emits
``(n, horizon)`` forecasts, so Table 4 / Table 13 / Table 14 all run
through one evaluation loop.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from ..data.windowing import WindowedDataset, flatten_for_trees
from ..forecast.prophet import StructuralProphet
from ..nn.losses import rmse
from ..nn.modules import Linear, LSTM, LSTMCell, Module, TCN, fused_kernels_enabled
from ..nn.serialization import load_state, read_checkpoint_metadata, save_state
from ..nn.tensor import Tensor, concat, lstm_decoder_seq
from ..nn.training import Trainer
from ..trees.boosting import GradientBoostingRegressor
from ..trees.forest import RandomForestRegressor
from .prism5g import Prism5G, pack_inputs


class Predictor:
    """Base predictor: fit on windows, predict (n, horizon)."""

    name = "base"
    #: True for predictors whose constructor takes a :class:`DeepConfig`
    #: (the registry passes the shared config through to those).
    requires_config = False

    def fit(self, train: WindowedDataset, val: Optional[WindowedDataset] = None) -> "Predictor":
        raise NotImplementedError

    def predict(self, dataset: WindowedDataset) -> np.ndarray:
        raise NotImplementedError

    def evaluate(self, dataset: WindowedDataset) -> float:
        """RMSE over the full horizon (the paper's metric)."""
        return rmse(self.predict(dataset), dataset.y)


# ----------------------------------------------------------------------
# Registry: one table mapping names to predictor factories
# ----------------------------------------------------------------------
#: factory signature: ``factory(config) -> Predictor`` (``config`` is a
#: :class:`DeepConfig`, ignored by the non-deep predictors).
PredictorFactory = Callable[[Optional["DeepConfig"]], "Predictor"]

_PREDICTOR_FACTORIES: Dict[str, PredictorFactory] = {}


def register_predictor(name: str, factory: Optional[PredictorFactory] = None):
    """Register a predictor under ``name``; usable as a decorator.

    Decorating a :class:`Predictor` subclass registers a factory that
    instantiates it (passing the :class:`DeepConfig` through when the
    class is a deep predictor); decorating a plain callable registers it
    as-is.  Everything that resolves predictor names — Table 4's
    ``make_default_predictors``, the CLI ``--predictors`` flag, the
    experiment pipeline, and the ablation line-up — reads this one
    table.

    ::

        @register_predictor("LSTM")
        class LSTMPredictor(_DeepPredictor): ...

        @register_predictor("Prism5G (no fusion)")
        def _no_fusion(config=None):
            return Prism5GPredictor(config, use_fusion=False)
    """
    if name in _PREDICTOR_FACTORIES:
        raise ValueError(f"predictor {name!r} is already registered")

    def decorate(obj):
        if isinstance(obj, type) and issubclass(obj, Predictor):
            if getattr(obj, "requires_config", False):
                _PREDICTOR_FACTORIES[name] = lambda config=None, cls=obj: cls(config)
            else:
                _PREDICTOR_FACTORIES[name] = lambda config=None, cls=obj: cls()
        else:
            _PREDICTOR_FACTORIES[name] = obj
        return obj

    if factory is not None:
        return decorate(factory)
    return decorate


def registered_predictors() -> List[str]:
    """Sorted names of every registered predictor (incl. ablations)."""
    return sorted(_PREDICTOR_FACTORIES)


def create_predictor(name: str, config: Optional["DeepConfig"] = None) -> "Predictor":
    """Instantiate a registered predictor by name.

    Raises ``ValueError`` naming the registered predictors when the
    name is unknown — never a bare ``KeyError``.
    """
    try:
        factory = _PREDICTOR_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; registered predictors: {registered_predictors()}"
        ) from None
    return factory(config)


# ----------------------------------------------------------------------
# Statistics-only: Prophet
# ----------------------------------------------------------------------
@register_predictor("Prophet")
class ProphetPredictor(Predictor):
    """Refit a structural model on each window's history (rolling refit).

    This mirrors the paper's cross-validation protocol for Prophet: the
    model sees only the throughput history, no radio features.
    """

    name = "Prophet"

    def __init__(self, n_changepoints: int = 3, alpha: float = 0.5) -> None:
        self.n_changepoints = n_changepoints
        self.alpha = alpha

    def fit(self, train: WindowedDataset, val: Optional[WindowedDataset] = None) -> "ProphetPredictor":
        return self  # refit per window at prediction time

    def predict(self, dataset: WindowedDataset) -> np.ndarray:
        horizon = dataset.horizon
        out = np.empty((len(dataset), horizon))
        for i, history in enumerate(dataset.y_hist):
            model = StructuralProphet(n_changepoints=self.n_changepoints, alpha=self.alpha)
            out[i] = model.fit(history).predict(horizon)
        return out


# ----------------------------------------------------------------------
# Deep baselines (CA-blind: flattened features)
# ----------------------------------------------------------------------
class _SeqRegressor(Module):
    """LSTM encoder -> linear head on the last hidden state."""

    def __init__(self, in_size: int, hidden: int, horizon: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.rnn = LSTM(in_size, hidden, num_layers=2, rng=rng)
        self.head = Linear(hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out, _ = self.rnn(x)
        return self.head(out[:, -1, :])


class _TCNRegressor(Module):
    """TCN stack -> linear head on the last time step."""

    def __init__(self, in_size: int, hidden: int, horizon: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.tcn = TCN(in_size, [hidden, hidden], kernel_size=3, rng=rng)
        self.head = Linear(hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.tcn(x)[:, -1, :])


class _Seq2Seq(Module):
    """Lumos5G-style encoder/decoder (Seq2Seq) regressor.

    The encoder LSTM summarizes the history; the decoder LSTM cell
    rolls forward ``horizon`` steps feeding back its own prediction.
    """

    def __init__(self, in_size: int, hidden: int, horizon: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.horizon = horizon
        self.encoder = LSTM(in_size, hidden, num_layers=1, rng=rng)
        self.decoder_cell = LSTMCell(1, hidden, rng=rng)
        self.head = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        _, state = self.encoder(x)
        h, c = state[0]
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        step_input = Tensor(data[:, -1, -1:])  # last observed throughput
        if fused_kernels_enabled():
            # whole rollout as one graph node (hand-written BPTT)
            preds = lstm_decoder_seq(
                step_input,
                h,
                c,
                self.decoder_cell.weight_ih,
                self.decoder_cell.weight_hh,
                self.decoder_cell.bias,
                self.head.weight,
                self.head.bias,
                self.horizon,
            )
            return preds.reshape(data.shape[0], self.horizon)
        outputs = []
        for _ in range(self.horizon):
            h, c = self.decoder_cell(step_input, (h, c))
            pred = self.head(h)
            outputs.append(pred)
            step_input = pred
        return concat(outputs, axis=1)


@dataclass
class DeepConfig:
    """Shared hyperparameters for the deep predictors."""

    hidden: int = 32
    lr: float = 0.01
    batch_size: int = 128
    max_epochs: int = 60
    patience: int = 10
    seed: int = 0


class _DeepPredictor(Predictor):
    """Common packing + Trainer plumbing for all deep models.

    ``tput_history_only`` reproduces the published input contract of the
    LSTM [28] and TCN [9] baselines, which forecast from the bandwidth
    time series alone; the feature-based baselines (Lumos5G, trees) and
    Prism5G consume the full Table 3 feature set.
    """

    tput_history_only = False
    requires_config = True

    def __init__(self, config: Optional[DeepConfig] = None) -> None:
        self.config = config or DeepConfig()
        self.trainer: Optional[Trainer] = None
        self._build_args: Optional[Dict[str, int]] = None

    def _packed(self, dataset: WindowedDataset) -> np.ndarray:
        if self.tput_history_only:
            return dataset.y_hist[..., None]
        return pack_inputs(dataset.x, dataset.mask, dataset.y_hist)

    def _build(self, in_size: int, n_ccs: int, n_features: int, horizon: int) -> Module:
        raise NotImplementedError

    def _prepare(self, train: WindowedDataset) -> "tuple[np.ndarray, Module]":
        """Pack the inputs and build the model, recording the build shape.

        The recorded shape is what makes checkpoints self-describing:
        :meth:`load_checkpoint` rebuilds an identical architecture from
        the stored args without needing the training data.
        """
        x_train = self._packed(train)
        self._build_args = {
            "in_size": int(x_train.shape[2]),
            "n_ccs": int(train.n_ccs),
            "n_features": int(train.x.shape[3]),
            "horizon": int(train.horizon),
        }
        return x_train, self._build(**self._build_args)

    def fit(self, train: WindowedDataset, val: Optional[WindowedDataset] = None) -> "_DeepPredictor":
        x_train, model = self._prepare(train)
        self.trainer = Trainer(
            model,
            lr=self.config.lr,
            batch_size=self.config.batch_size,
            max_epochs=self.config.max_epochs,
            patience=self.config.patience,
            seed=self.config.seed,
        )
        x_val = self._packed(val) if val is not None and len(val) else None
        y_val = val.y if val is not None and len(val) else None
        self.trainer.fit(x_train, train.y, x_val, y_val)
        return self

    def predict(self, dataset: WindowedDataset, float32: bool = False) -> np.ndarray:
        if self.trainer is None:
            raise RuntimeError("predictor has not been fitted")
        return self.trainer.predict(self._packed(dataset), float32=float32)

    # ------------------------------------------------------------------
    # checkpointing
    def save_checkpoint(self, path) -> None:
        """Persist the fitted model with a self-describing metadata header.

        The header records the predictor name, the build shape, and the
        :class:`DeepConfig`, so :meth:`load_checkpoint` can rebuild the
        exact architecture and fail with a clear error on mismatch.
        """
        if self.trainer is None or self._build_args is None:
            raise RuntimeError("predictor has not been fitted")
        save_state(
            self.trainer.model,
            path,
            metadata={
                "predictor": self.name,
                "build": self._build_args,
                "deep_config": asdict(self.config),
            },
        )

    def load_checkpoint(self, path) -> "_DeepPredictor":
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        Rebuilds the architecture from the stored build args and this
        predictor's :class:`DeepConfig`, then loads the weights.  A
        checkpoint from a different predictor, or weights whose shapes
        disagree with the rebuilt architecture (e.g. a different
        ``hidden`` size), raises ``ValueError`` with the offending
        names/shapes instead of crashing mid-forward.
        """
        meta = read_checkpoint_metadata(path)
        if meta is None or "build" not in meta.get("metadata", {}):
            raise ValueError(
                f"{path}: not a predictor checkpoint (no metadata header); "
                "re-save with Predictor.save_checkpoint"
            )
        saved_for = meta["metadata"].get("predictor")
        if saved_for != self.name:
            raise ValueError(
                f"{path}: checkpoint was saved by predictor {saved_for!r}, "
                f"cannot load into {self.name!r}"
            )
        self._build_args = {k: int(v) for k, v in meta["metadata"]["build"].items()}
        model = self._build(**self._build_args)
        load_state(model, path)
        model.eval()
        self.trainer = Trainer(
            model,
            lr=self.config.lr,
            batch_size=self.config.batch_size,
            max_epochs=self.config.max_epochs,
            patience=self.config.patience,
            seed=self.config.seed,
        )
        return self


@register_predictor("LSTM")
class LSTMPredictor(_DeepPredictor):
    """Bandwidth-history LSTM (Mei et al. [28]): time series in, no radio features."""

    name = "LSTM"
    tput_history_only = True

    def _build(self, in_size: int, n_ccs: int, n_features: int, horizon: int) -> Module:
        return _SeqRegressor(in_size, self.config.hidden, horizon, seed=self.config.seed)


@register_predictor("TCN")
class TCNPredictor(_DeepPredictor):
    """Temporal convolutional forecaster (Chen et al. [9]): time series only."""

    name = "TCN"
    tput_history_only = True

    def _build(self, in_size: int, n_ccs: int, n_features: int, horizon: int) -> Module:
        return _TCNRegressor(in_size, self.config.hidden, horizon, seed=self.config.seed)


@register_predictor("Lumos5G")
class Lumos5GPredictor(_DeepPredictor):
    """Lumos5G's Seq2Seq architecture [32] on UE-side features."""

    name = "Lumos5G"

    def _build(self, in_size: int, n_ccs: int, n_features: int, horizon: int) -> Module:
        return _Seq2Seq(in_size, self.config.hidden, horizon, seed=self.config.seed)


@register_predictor("Prism5G")
class Prism5GPredictor(_DeepPredictor):
    """The paper's CA-aware model (optionally ablated).

    Trains with joint supervision: MSE on the aggregate forecast plus
    ``cc_loss_weight`` x MSE on the per-carrier forecasts (their sum is
    the aggregate, paper §5.2).  Per-CC targets come from
    ``WindowedDataset.y_cc`` when available.
    """

    name = "Prism5G"

    def __init__(
        self,
        config: Optional[DeepConfig] = None,
        use_state_trigger: bool = True,
        use_fusion: bool = True,
        rnn: str = "lstm",
        cc_loss_weight: float = 0.5,
        lr_scale: float = 0.3,
        head: str = "decoder",
    ) -> None:
        super().__init__(config)
        self.use_state_trigger = use_state_trigger
        self.use_fusion = use_fusion
        self.rnn = rnn
        self.head = head
        self.cc_loss_weight = cc_loss_weight
        # the shared encoder accumulates gradients from C carrier replicas,
        # so its effective step size is ~C-fold larger; scale the lr down.
        self.lr_scale = lr_scale
        if not use_state_trigger and use_fusion:
            self.name = "Prism5G (no state)"
        elif use_state_trigger and not use_fusion:
            self.name = "Prism5G (no fusion)"
        self.model: Optional[Prism5G] = None

    def _build(self, in_size: int, n_ccs: int, n_features: int, horizon: int) -> Module:
        self.model = Prism5G(
            n_ccs=n_ccs,
            n_features=n_features,
            horizon=horizon,
            hidden=self.config.hidden,
            rnn=self.rnn,
            use_state_trigger=self.use_state_trigger,
            use_fusion=self.use_fusion,
            head=self.head,
            seed=self.config.seed,
        )
        return self.model

    def _packed_targets(self, dataset: WindowedDataset) -> np.ndarray:
        """Aggregate targets followed by per-CC targets (flattened)."""
        horizon = dataset.horizon
        if dataset.y_cc is None:
            return dataset.y
        per_cc = dataset.y_cc.reshape(len(dataset), horizon * dataset.n_ccs)
        return np.concatenate([dataset.y, per_cc], axis=1)

    def fit(self, train: WindowedDataset, val: Optional[WindowedDataset] = None) -> "Prism5GPredictor":
        x_train, model = self._prepare(train)
        horizon = train.horizon
        has_cc = train.y_cc is not None
        weight = self.cc_loss_weight

        def loss_fn(pred: Tensor, target: Tensor) -> Tensor:
            agg = pred[:, :horizon] - target[:, :horizon]
            loss = (agg * agg).mean()
            if has_cc:
                cc = pred[:, horizon:] - target[:, horizon:]
                loss = loss + weight * (cc * cc).mean()
            return loss

        self.trainer = Trainer(
            model,
            lr=self.config.lr * self.lr_scale,
            batch_size=self.config.batch_size,
            max_epochs=self.config.max_epochs,
            patience=self.config.patience,
            seed=self.config.seed,
            loss_fn=loss_fn,
        )
        x_val = self._packed(val) if val is not None and len(val) else None
        y_val = self._packed_targets(val) if val is not None and len(val) else None
        self.trainer.fit(x_train, self._packed_targets(train), x_val, y_val)
        return self

    def predict(self, dataset: WindowedDataset, float32: bool = False) -> np.ndarray:
        if self.trainer is None:
            raise RuntimeError("predictor has not been fitted")
        return self.trainer.predict(self._packed(dataset), float32=float32)[:, : dataset.horizon]

    def predict_all(self, dataset: WindowedDataset) -> "tuple[np.ndarray, np.ndarray]":
        """``(aggregate, per_cc)`` forecasts from one forward pass.

        Callers that need both (Figs 33-34) should use this instead of
        ``predict`` + ``predict_per_cc``, which runs the network twice.
        """
        if self.model is None:
            raise RuntimeError("predictor has not been fitted")
        return self.model.predict_all(self._packed(dataset))

    def predict_per_cc(self, dataset: WindowedDataset) -> np.ndarray:
        """Per-carrier forecasts (paper Figs 33-34)."""
        if self.model is None:
            raise RuntimeError("predictor has not been fitted")
        return self.model.predict_per_cc(self._packed(dataset))


# ----------------------------------------------------------------------
# Classical ML (Appendix C.1 protocol: flattened history features)
# ----------------------------------------------------------------------
class _TreePredictor(Predictor):
    """One regressor per horizon step over flattened windows."""

    def __init__(self) -> None:
        self.models: List = []

    def _new_model(self, seed: int):
        raise NotImplementedError

    def fit(self, train: WindowedDataset, val: Optional[WindowedDataset] = None) -> "_TreePredictor":
        features = flatten_for_trees(train)
        self.models = []
        for step in range(train.horizon):
            model = self._new_model(seed=step)
            model.fit(features, train.y[:, step])
            self.models.append(model)
        return self

    def predict(self, dataset: WindowedDataset) -> np.ndarray:
        if not self.models:
            raise RuntimeError("predictor has not been fitted")
        features = flatten_for_trees(dataset)
        return np.stack([model.predict(features) for model in self.models], axis=1)


@register_predictor("GBDT")
class GBDTPredictor(_TreePredictor):
    """Gradient-boosted trees (used by Lumos5G [32])."""

    name = "GBDT"

    def __init__(self, n_estimators: int = 60, max_depth: int = 3, learning_rate: float = 0.1) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate

    def _new_model(self, seed: int) -> GradientBoostingRegressor:
        return GradientBoostingRegressor(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            learning_rate=self.learning_rate,
            subsample=0.8,
            seed=seed,
        )


@register_predictor("RF")
class RFPredictor(_TreePredictor):
    """Random forest (Alimpertis et al. [4])."""

    name = "RF"

    def __init__(self, n_estimators: int = 30, max_depth: int = 10) -> None:
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth

    def _new_model(self, seed: int) -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=self.n_estimators, max_depth=self.max_depth, seed=seed
        )


# ----------------------------------------------------------------------
# Ablations (Table 13): registered as factories so the pipeline and the
# CLI can name them directly.
# ----------------------------------------------------------------------
@register_predictor("Prism5G (no state)")
def _prism5g_no_state(config: Optional[DeepConfig] = None) -> Prism5GPredictor:
    return Prism5GPredictor(config, use_state_trigger=False)


@register_predictor("Prism5G (no fusion)")
def _prism5g_no_fusion(config: Optional[DeepConfig] = None) -> Prism5GPredictor:
    return Prism5GPredictor(config, use_fusion=False)


#: Table 4's predictor line-up, in column order.
TABLE4_LINEUP: "tuple[str, ...]" = (
    "Prophet",
    "LSTM",
    "TCN",
    "Lumos5G",
    "GBDT",
    "RF",
    "Prism5G",
)

#: legacy name→class map, kept for back-compat; new code should resolve
#: names through :func:`create_predictor` / :func:`registered_predictors`.
PREDICTOR_REGISTRY: Dict[str, Type[Predictor]] = {
    "Prophet": ProphetPredictor,
    "LSTM": LSTMPredictor,
    "TCN": TCNPredictor,
    "Lumos5G": Lumos5GPredictor,
    "GBDT": GBDTPredictor,
    "RF": RFPredictor,
    "Prism5G": Prism5GPredictor,
}
