"""repro.pipeline — config-driven, resumable experiment pipeline.

One typed, JSON-serializable :class:`ExperimentConfig` is the single
source of truth for an end-to-end paper run: the trace source (a
Table 11 sub-dataset spec or a measurement campaign), the windowing
parameters, the :class:`~repro.core.predictors.DeepConfig`, the
split/seed protocol, the predictor line-up (resolved through the
predictor registry), and the kernel-path dispatch flags
(:mod:`repro.runtime`).  Its canonical content hash — computed with
:func:`repro.runtime.canonical_hash`, the same recipe the trace cache
and the obs manifests use — identifies the run everywhere:

* the run directory is ``<out_dir>/<name>-<hash>``;
* every stage marker and the final ``result.json`` embed the hash;
* every obs manifest written during the run carries it
  (``obs.run_context``);
* the trace cache folds the runtime synthesis fingerprint into its
  keys, so cached traces can never disagree with the configured
  dispatch path.

The run is composed of four :class:`Stage` objects::

    Synthesize -> BuildDataset -> Train -> Evaluate

Each stage persists a typed artifact (traces via
:mod:`repro.data.cache`, the windowed dataset as ``.npz``, model
checkpoints via :mod:`repro.nn.serialization` with a versioned
metadata header, metrics as JSON) and records a completion marker.  A
re-run of the same config skips every completed stage; a killed run
resumes where it stopped — the train stage even resumes per predictor,
skipping checkpoints that were already written.

CLI entry point::

    repro5g run experiment.json            # end-to-end
    repro5g run experiment.json --force    # ignore completed stages
"""

from __future__ import annotations

import json
import pickle
import re
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from . import obs, runtime
from .core.evaluation import EvaluationResult
from .core.predictors import (
    DeepConfig,
    Predictor,
    _DeepPredictor,
    create_predictor,
    registered_predictors,
)
from .data.cache import TraceCache
from .data.datasets import (
    MLDataset,
    SubDatasetSpec,
    load_dataset,
    normalize_windows,
    save_dataset,
    subdataset_cache_config,
)
from .data.splits import random_split, trace_level_split
from .data.windowing import WindowedDataset, window_traces
from .ran.campaign import CampaignConfig, campaign_cache_config, run_campaign
from .ran.traces import TraceSet

#: folded into the experiment hash so semantic changes to the pipeline
#: invalidate old run directories.
EXPERIMENT_SCHEMA = "repro-experiment-v1"

#: env override for the default run-artifact root.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

_VALID_OPERATORS = ("OpX", "OpY", "OpZ")
_VALID_MOBILITY = ("walking", "driving")
_VALID_TIMESCALES = ("short", "long")
_VALID_SPLITS = ("random", "trace")
_VALID_SOURCES = ("subdataset", "campaign")


def default_runs_dir() -> Path:
    import os

    return Path(os.environ.get(RUNS_DIR_ENV) or "runs")


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "_", name).strip("_").lower() or "x"


# ---------------------------------------------------------------------------
# stage markers — the resume protocol
#
# A *marker* is a small JSON file recording that one named stage of a
# run completed for one exact content hash.  The experiment pipeline
# stages and the city-campaign shards share these helpers, so both
# resume the same way: a marker from a different hash (or a corrupt
# file) simply does not count as completion.


def stage_marker_path(root: Union[str, Path], stage: str) -> Path:
    """Where the completion marker for ``stage`` lives under ``root``."""
    return Path(root) / "stages" / f"{stage}.json"


def read_stage_marker(root: Union[str, Path], stage: str, run_hash: str) -> Optional[Dict]:
    """Load a stage marker, or ``None`` when absent/corrupt/hash-mismatched."""
    try:
        data = json.loads(stage_marker_path(root, stage).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    # a marker from a different config (or pipeline version) does not
    # count as completion — the hash is the contract
    if not isinstance(data, dict) or data.get("experiment_hash") != run_hash:
        return None
    return data


def write_stage_marker(
    root: Union[str, Path],
    stage: str,
    run_hash: str,
    artifact: Optional[Path],
    detail: Optional[Dict] = None,
) -> Path:
    """Record completion of ``stage`` for ``run_hash`` (write-last contract)."""
    path = stage_marker_path(root, stage)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "stage": stage,
        "experiment_hash": run_hash,
        "artifact": None if artifact is None else str(artifact),
        "completed_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "detail": detail or {},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one end-to-end run.

    JSON round-trips exactly (:meth:`to_dict` / :meth:`from_dict`), and
    :meth:`hash` is a stable canonical content hash — two configs with
    the same values hash identically regardless of construction order.
    """

    name: str = "experiment"
    #: trace source: a Table 11 sub-dataset ("subdataset") or a full
    #: measurement campaign ("campaign").
    source: str = "subdataset"
    operator: str = "OpZ"
    mobility: str = "driving"
    timescale: str = "long"
    n_traces: int = 5
    samples_per_trace: int = 200
    #: :class:`~repro.ran.campaign.CampaignConfig` field overrides,
    #: used only when ``source == "campaign"``.
    campaign: Optional[Dict] = None
    # windowing
    history: int = 10
    horizon: int = 10
    max_ccs: int = 4
    stride: int = 1
    # protocol
    predictors: Tuple[str, ...] = ("Prophet", "LSTM", "Prism5G")
    split: str = "random"
    seed: int = 0
    deep: DeepConfig = field(default_factory=DeepConfig)
    #: kernel-path dispatch flags applied for the whole run (defaults:
    #: every fast path on, compute backend as currently selected — so a
    #: ``REPRO_BACKEND`` preset flows into unconfigured experiments).
    runtime: Dict[str, object] = field(
        default_factory=lambda: {**runtime.default_flags(), "backend": runtime.backend_name()}
    )

    def __post_init__(self) -> None:
        if isinstance(self.deep, dict):
            self.deep = DeepConfig(**self.deep)
        self.predictors = tuple(self.predictors)
        if self.source not in _VALID_SOURCES:
            raise ValueError(f"source must be one of {_VALID_SOURCES}, got {self.source!r}")
        if self.operator not in _VALID_OPERATORS:
            raise ValueError(f"operator must be one of {_VALID_OPERATORS}, got {self.operator!r}")
        if self.mobility not in _VALID_MOBILITY:
            raise ValueError(f"mobility must be one of {_VALID_MOBILITY}, got {self.mobility!r}")
        if self.timescale not in _VALID_TIMESCALES:
            raise ValueError(
                f"timescale must be one of {_VALID_TIMESCALES}, got {self.timescale!r}"
            )
        if self.split not in _VALID_SPLITS:
            raise ValueError(f"split must be one of {_VALID_SPLITS}, got {self.split!r}")
        if not self.predictors:
            raise ValueError("predictors must name at least one registered predictor")
        unknown = sorted(set(self.predictors) - set(registered_predictors()))
        if unknown:
            raise ValueError(
                f"unknown predictor(s) {unknown}; registered predictors: {registered_predictors()}"
            )
        unknown_flags = sorted(set(self.runtime) - set(runtime.ALL_FLAG_NAMES))
        if unknown_flags:
            raise ValueError(
                f"unknown runtime flag(s) {unknown_flags}; known flags: {list(runtime.ALL_FLAG_NAMES)}"
            )
        filled: Dict[str, object] = {}
        for flag in runtime.ALL_FLAG_NAMES:
            if flag in runtime.VALUE_FLAG_NAMES:
                default = runtime.backend_name() if flag == "backend" else runtime.flag(flag)
                filled[flag] = str(self.runtime.get(flag, default)).strip().lower()
            else:
                filled[flag] = bool(self.runtime.get(flag, True))
        self.runtime = filled

    # ------------------------------------------------------------------
    @property
    def spec(self) -> SubDatasetSpec:
        return SubDatasetSpec(self.operator, self.mobility, self.timescale)

    def campaign_config(self) -> CampaignConfig:
        overrides = dict(self.campaign or {})
        overrides.setdefault("seed", self.seed)
        overrides.setdefault("dt_s", self.spec.dt_s)
        for key in ("operators", "scenarios", "rats"):
            if key in overrides:
                overrides[key] = tuple(overrides[key])
        return CampaignConfig(**overrides)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        data = asdict(self)
        data["predictors"] = list(self.predictors)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown experiment config key(s) {unknown}; valid keys: {sorted(known)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentConfig":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("experiment config must be a JSON object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentConfig":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def hash(self) -> str:
        """Canonical content hash identifying this run everywhere."""
        return runtime.canonical_hash(self.to_dict(), schema=EXPERIMENT_SCHEMA)


# ---------------------------------------------------------------------------
# pipeline context + stages


@dataclass
class StageStatus:
    """Outcome of one stage execution."""

    stage: str
    status: str  #: "completed" or "skipped" (artifact already present)
    artifact: Optional[str] = None
    duration_s: float = 0.0
    detail: Optional[Dict] = None


class PipelineContext:
    """Mutable state threaded through the stages of one run."""

    def __init__(self, config: ExperimentConfig, run_dir: Path, force: bool = False) -> None:
        self.config = config
        self.run_dir = Path(run_dir)
        self.force = force
        self.hash = config.hash()
        self.traces: Optional[TraceSet] = None
        self.dataset: Optional[MLDataset] = None
        self.predictors: Dict[str, Predictor] = {}
        self.result: Optional[EvaluationResult] = None
        self._splits: Optional[Tuple[WindowedDataset, ...]] = None

    # ------------------------------------------------------------------
    @property
    def trace_cache(self) -> TraceCache:
        return TraceCache(self.run_dir / "traces")

    @property
    def synth_config(self) -> Dict:
        config = self.config
        if config.source == "campaign":
            return campaign_cache_config(config.campaign_config())
        return subdataset_cache_config(
            config.spec, config.n_traces, config.samples_per_trace, config.seed
        )

    def splits(self) -> Tuple[WindowedDataset, WindowedDataset, WindowedDataset]:
        """The (train, val, test) split — deterministic in the config seed.

        Cached per context; recomputed identically across processes and
        across resumed runs, which is what lets the train and evaluate
        stages agree on the protocol without persisting index arrays.
        """
        if self.dataset is None:
            raise RuntimeError("dataset not built yet")
        if self._splits is None:
            splitter = random_split if self.config.split == "random" else trace_level_split
            self._splits = splitter(self.dataset.windows, 0.5, 0.2, 0.3, seed=self.config.seed)
        return self._splits

    def marker_path(self, stage: str) -> Path:
        return stage_marker_path(self.run_dir, stage)

    def read_marker(self, stage: str) -> Optional[Dict]:
        return read_stage_marker(self.run_dir, stage, self.hash)

    def write_marker(self, stage: str, artifact: Optional[Path], detail: Optional[Dict] = None) -> None:
        write_stage_marker(self.run_dir, stage, self.hash, artifact, detail)


class Stage:
    """One resumable pipeline step persisting a typed artifact.

    ``execute`` is template code: skip (loading the artifact) when the
    completion marker and artifact are present for this exact config
    hash, otherwise run and write the marker last — so a run killed
    mid-stage re-runs that stage, and only that stage, on resume.
    """

    name = "stage"

    def artifact(self, ctx: PipelineContext) -> Optional[Path]:
        return None

    def is_complete(self, ctx: PipelineContext) -> bool:
        if ctx.read_marker(self.name) is None:
            return False
        artifact = self.artifact(ctx)
        return artifact is None or artifact.exists()

    def load(self, ctx: PipelineContext) -> None:
        """Populate ``ctx`` from the persisted artifact (on skip)."""

    def run(self, ctx: PipelineContext) -> Optional[Dict]:
        """Do the work, persist the artifact; returns marker detail."""
        raise NotImplementedError

    def execute(self, ctx: PipelineContext) -> StageStatus:
        with obs.sample_window(f"stage.{self.name}"), obs.span(
            f"pipeline.{self.name}", experiment=ctx.hash
        ):
            start = time.perf_counter()
            if not ctx.force and self.is_complete(ctx):
                self.load(ctx)
                status = StageStatus(
                    stage=self.name,
                    status="skipped",
                    artifact=_opt_str(self.artifact(ctx)),
                    duration_s=time.perf_counter() - start,
                    detail=(ctx.read_marker(self.name) or {}).get("detail"),
                )
            else:
                detail = self.run(ctx)
                ctx.write_marker(self.name, self.artifact(ctx), detail)
                status = StageStatus(
                    stage=self.name,
                    status="completed",
                    artifact=_opt_str(self.artifact(ctx)),
                    duration_s=time.perf_counter() - start,
                    detail=detail,
                )
            if obs.metrics_enabled():
                obs.counter(f"pipeline.stage.{status.status}")
        return status


def _opt_str(path: Optional[Path]) -> Optional[str]:
    return None if path is None else str(path)


class SynthesizeStage(Stage):
    """Synthesize the raw trace set into the run's trace cache."""

    name = "synthesize"

    def artifact(self, ctx: PipelineContext) -> Optional[Path]:
        return ctx.trace_cache.path_for(ctx.synth_config)

    def is_complete(self, ctx: PipelineContext) -> bool:
        # the trace cache is itself content-addressed; its manifest is
        # the completion signal (markers stay for uniform bookkeeping)
        return ctx.read_marker(self.name) is not None and ctx.trace_cache.contains(ctx.synth_config)

    def load(self, ctx: PipelineContext) -> None:
        ctx.traces = ctx.trace_cache.get(ctx.synth_config)

    def run(self, ctx: PipelineContext) -> Optional[Dict]:
        config = ctx.config
        if config.source == "campaign":
            result = run_campaign(config.campaign_config(), cache=ctx.trace_cache)
            ctx.traces = result.traces
        else:
            from .data.datasets import generate_traces

            ctx.traces = generate_traces(
                config.spec,
                n_traces=config.n_traces,
                samples_per_trace=config.samples_per_trace,
                seed=config.seed,
                cache=ctx.trace_cache,
            )
        return {
            "n_traces": len(list(ctx.traces)),
            "cache_key": ctx.trace_cache.path_for(ctx.synth_config).name,
        }


class BuildDatasetStage(Stage):
    """Window + normalize the traces into the training dataset artifact."""

    name = "build_dataset"

    def artifact(self, ctx: PipelineContext) -> Optional[Path]:
        return ctx.run_dir / "dataset.npz"

    def load(self, ctx: PipelineContext) -> None:
        ctx.dataset = load_dataset(self.artifact(ctx))

    def run(self, ctx: PipelineContext) -> Optional[Dict]:
        if ctx.traces is None:
            raise RuntimeError("synthesize stage must run before build_dataset")
        config = ctx.config
        windows = window_traces(
            list(ctx.traces), config.history, config.horizon, config.max_ccs, config.stride
        )
        dataset = normalize_windows(windows)
        if config.source == "subdataset":
            dataset.spec = config.spec
        ctx.dataset = dataset
        save_dataset(dataset, self.artifact(ctx))
        return {"n_windows": len(windows), "n_ccs": int(windows.n_ccs)}


class TrainStage(Stage):
    """Fit every configured predictor; persist checkpoints as they finish.

    Deep predictors are checkpointed through
    :mod:`repro.nn.serialization` (versioned metadata header); the
    classical/statistical ones are pickled.  Each predictor's artifact
    is written immediately after its fit, so a killed run resumes with
    only the unfitted predictors left to train.
    """

    name = "train"

    def artifact(self, ctx: PipelineContext) -> Optional[Path]:
        return ctx.run_dir / "checkpoints"

    def checkpoint_path(self, ctx: PipelineContext, name: str) -> Path:
        predictor = ctx.predictors.get(name) or create_predictor(name, ctx.config.deep)
        suffix = ".npz" if isinstance(predictor, _DeepPredictor) else ".pkl"
        return ctx.run_dir / "checkpoints" / f"{_slug(name)}{suffix}"

    def is_complete(self, ctx: PipelineContext) -> bool:
        return ctx.read_marker(self.name) is not None and all(
            self.checkpoint_path(ctx, name).exists() for name in ctx.config.predictors
        )

    def _restore(self, ctx: PipelineContext, name: str, path: Path) -> Predictor:
        predictor = create_predictor(name, ctx.config.deep)
        if isinstance(predictor, _DeepPredictor):
            predictor.load_checkpoint(path)
        else:
            with path.open("rb") as handle:
                predictor = pickle.load(handle)
        return predictor

    def load(self, ctx: PipelineContext) -> None:
        for name in ctx.config.predictors:
            ctx.predictors[name] = self._restore(ctx, name, self.checkpoint_path(ctx, name))

    def run(self, ctx: PipelineContext) -> Optional[Dict]:
        if ctx.dataset is None:
            raise RuntimeError("build_dataset stage must run before train")
        train, val, _ = ctx.splits()
        detail: Dict[str, Dict] = {}
        for name in ctx.config.predictors:
            path = self.checkpoint_path(ctx, name)
            if path.exists() and not ctx.force:
                # resume-after-kill: this predictor already finished
                ctx.predictors[name] = self._restore(ctx, name, path)
                detail[name] = {"status": "resumed"}
                continue
            with obs.span("pipeline.train.fit", predictor=name):
                predictor = create_predictor(name, ctx.config.deep)
                predictor.fit(train, val)
            info: Dict = {"status": "fitted"}
            if isinstance(predictor, _DeepPredictor):
                predictor.save_checkpoint(path)
                history = predictor.trainer.history if predictor.trainer else None
                if history is not None:
                    info["best_val_loss"] = history.best_val_loss
                    info["epochs_run"] = history.epochs_run
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(path.suffix + ".tmp")
                with tmp.open("wb") as handle:
                    pickle.dump(predictor, handle)
                tmp.replace(path)
            ctx.predictors[name] = predictor
            detail[name] = info
        return detail


class EvaluateStage(Stage):
    """Score every fitted predictor on the held-out test split."""

    name = "evaluate"

    def artifact(self, ctx: PipelineContext) -> Optional[Path]:
        return ctx.run_dir / "result.json"

    def load(self, ctx: PipelineContext) -> None:
        data = json.loads(self.artifact(ctx).read_text(encoding="utf-8"))
        ctx.result = EvaluationResult(dataset_name=data["dataset"], rmse=data["rmse"])

    def run(self, ctx: PipelineContext) -> Optional[Dict]:
        if ctx.dataset is None or not ctx.predictors:
            raise RuntimeError("train stage must run before evaluate")
        config = ctx.config
        train, val, test = ctx.splits()
        dataset_name = (
            ctx.dataset.spec.name if ctx.dataset.spec is not None else config.name
        )
        result = EvaluationResult(dataset_name=dataset_name)
        for name in config.predictors:
            with obs.span("pipeline.evaluate", predictor=name):
                # Predictor.evaluate is the one definition of the paper
                # metric (RMSE over the full horizon, nn.losses.rmse)
                result.rmse[name] = ctx.predictors[name].evaluate(test)
        ctx.result = result
        payload = {
            "experiment": config.name,
            "experiment_hash": ctx.hash,
            "dataset": dataset_name,
            "split": config.split,
            "seed": config.seed,
            "n_train": len(train),
            "n_val": len(val),
            "n_test": len(test),
            "rmse": result.rmse,
        }
        if "Prism5G" in result.rmse and len(result.rmse) > 1:
            payload["improvement_pct"] = result.improvement_over_best_baseline()
        artifact = self.artifact(ctx)
        artifact.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        obs.write_manifest(
            kind="experiment",
            config=config.to_dict(),
            seed=config.seed,
            extra={"rmse": result.rmse, "run_dir": str(ctx.run_dir)},
        )
        return {"rmse": result.rmse}


#: the canonical stage order of an end-to-end run.
DEFAULT_STAGES: Tuple[Stage, ...] = (
    SynthesizeStage(),
    BuildDatasetStage(),
    TrainStage(),
    EvaluateStage(),
)


@dataclass
class ExperimentResult:
    """Everything `run_experiment` hands back."""

    config: ExperimentConfig
    hash: str
    run_dir: Path
    stages: List[StageStatus]
    rmse: Dict[str, float]

    @property
    def all_skipped(self) -> bool:
        """True when every stage was a cache hit (nothing recomputed)."""
        return all(stage.status == "skipped" for stage in self.stages)


def run_dir_for(config: ExperimentConfig, out_dir: Union[str, Path, None] = None) -> Path:
    """The run directory for a config: ``<out_dir>/<name>-<hash>``."""
    return Path(out_dir) if out_dir is not None else default_runs_dir() / f"{_slug(config.name)}-{config.hash()}"


def run_experiment(
    config: ExperimentConfig,
    out_dir: Union[str, Path, None] = None,
    force: bool = False,
    stages: Optional[Sequence[Stage]] = None,
) -> ExperimentResult:
    """Execute (or resume) an experiment end to end.

    The config's runtime flags are pinned for the duration of the run
    (and restored afterwards); the experiment hash is exposed through
    :class:`repro.obs.run_context` so every manifest written by nested
    subsystems carries it.  ``force=True`` re-runs every stage even
    when artifacts exist.
    """
    run_dir = run_dir_for(config, out_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    experiment_hash = config.hash()
    config.save(run_dir / "experiment.json")
    statuses: List[StageStatus] = []
    with runtime.use(**config.runtime), obs.run_context(experiment_hash):
        # the outer sample_window keeps one telemetry thread alive across
        # all stages; per-stage windows only push/pop their row label
        with obs.sample_window("pipeline"), obs.span(
            "pipeline.run", experiment=experiment_hash, label=config.name
        ):
            ctx = PipelineContext(config, run_dir, force=force)
            for stage in stages if stages is not None else DEFAULT_STAGES:
                statuses.append(stage.execute(ctx))
    rmse = dict(ctx.result.rmse) if ctx.result is not None else {}
    summary = {
        "experiment": config.name,
        "experiment_hash": experiment_hash,
        "run_dir": str(run_dir),
        "stages": [asdict(status) for status in statuses],
        "rmse": rmse,
    }
    (run_dir / "run.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    obs.flush()
    return ExperimentResult(
        config=config, hash=experiment_hash, run_dir=run_dir, stages=statuses, rmse=rmse
    )
