"""repro.obs — metrics, span tracing, and run manifests.

One process-local observability layer shared by every subsystem
(simulator, cache, parallel map, trainer, kernels, evaluation):

* **Metrics** — ``obs.counter("cache.hit")``, ``obs.gauge(...)``,
  ``obs.histogram("train.epoch_ms", 12.5)``; snapshot/reset/JSON via
  the :class:`~repro.obs.metrics.MetricsRegistry`.
* **Spans** — ``with obs.span("simulate.run", cells=n):`` produces
  nested wall-time spans (pid/tid tagged) that spill to per-process
  JSONL files and export to Chrome ``chrome://tracing`` format;
  :mod:`repro.parallel` workers merge into the parent timeline.
* **Run manifests** — ``obs.write_manifest(kind="train", ...)`` records
  config hash, kernel-path toggles, seed, git SHA, the merged metric
  snapshot and per-epoch history at the end of a run.

Modes, selected by the ``REPRO_OBS`` env var or :func:`configure`:

``off``
    The default.  Every entry point returns immediately (spans hand
    back one shared null object; nothing is allocated or recorded) —
    hot loops additionally guard with :func:`metrics_enabled` /
    :func:`trace_enabled` so the disabled path is a near-no-op.
``metrics``
    Counters/gauges/histograms and run manifests, no span spill files.
``trace``
    Everything: metrics plus spans spilled under the observability
    directory (``REPRO_OBS_DIR``, default ``.repro-obs``).
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from .manifest import (
    LATEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    git_sha,
    kernel_paths,
    latest_manifest,
    write_manifest_file,
)
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .tracing import NULL_SPAN, Span, SpanTracer, chrome_trace as _spans_to_chrome, read_spans as _read_span_dir

OBS_ENV = "REPRO_OBS"
OBS_DIR_ENV = "REPRO_OBS_DIR"

MODE_OFF = "off"
MODE_METRICS = "metrics"
MODE_TRACE = "trace"
_MODES = (MODE_OFF, MODE_METRICS, MODE_TRACE)

_LOG = logging.getLogger("repro.obs")

_MODE = MODE_OFF
_DIR: Optional[Path] = None
_REGISTRY = MetricsRegistry()
_TRACER = SpanTracer()
_RUN_HASH: Optional[str] = None

__all__ = [
    "OBS_ENV",
    "OBS_DIR_ENV",
    "MODE_OFF",
    "MODE_METRICS",
    "MODE_TRACE",
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "MANIFEST_SCHEMA",
    "configure",
    "mode",
    "obs_dir",
    "enabled",
    "metrics_enabled",
    "trace_enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "flush",
    "reset",
    "snapshot",
    "merged_snapshot",
    "log_warning",
    "read_spans",
    "chrome_trace",
    "write_chrome_trace",
    "write_manifest",
    "latest_manifest",
    "build_manifest",
    "run_context",
    "run_hash",
    "config_hash",
    "git_sha",
    "kernel_paths",
    "child_after_fork",
]


# ---------------------------------------------------------------------------
# configuration


def _mode_from_env() -> str:
    raw = (os.environ.get(OBS_ENV) or "").strip().lower()
    if raw in ("", "0", "off", "false", "no", "none"):
        return MODE_OFF
    if raw in ("1", "on", "metrics", "true", "yes"):
        return MODE_METRICS
    if raw in ("2", "trace", "all", "full"):
        return MODE_TRACE
    return MODE_OFF


def configure(mode: Optional[str] = None, directory: Union[str, Path, None] = None) -> str:
    """Select the observability mode and spill directory.

    ``mode`` / ``directory`` default to the ``REPRO_OBS`` /
    ``REPRO_OBS_DIR`` environment variables (``off`` and ``.repro-obs``
    when unset).  Returns the resolved mode.  Safe to call repeatedly;
    the registry and span buffers are kept (use :func:`reset` to clear).
    """
    global _MODE, _DIR
    resolved = (mode or _mode_from_env()).strip().lower()
    if resolved not in _MODES:
        raise ValueError(f"obs mode must be one of {_MODES}, got {resolved!r}")
    if directory is None:
        directory = os.environ.get(OBS_DIR_ENV) or ".repro-obs"
    _MODE = resolved
    _DIR = Path(directory)
    _TRACER.directory = _DIR if resolved == MODE_TRACE else None
    return _MODE


def mode() -> str:
    return _MODE


def obs_dir() -> Path:
    """The observability directory (spans, worker metrics, manifests)."""
    return _DIR if _DIR is not None else Path(os.environ.get(OBS_DIR_ENV) or ".repro-obs")


def enabled() -> bool:
    """True in ``metrics`` or ``trace`` mode."""
    return _MODE != MODE_OFF


def metrics_enabled() -> bool:
    return _MODE != MODE_OFF


def trace_enabled() -> bool:
    return _MODE == MODE_TRACE


# ---------------------------------------------------------------------------
# metrics entry points (early-return when disabled)


def counter(name: str, value: float = 1.0) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.counter(name, value)


def gauge(name: str, value: float) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.gauge(name, value)


def histogram(name: str, value: float, buckets: Optional[Sequence[float]] = None) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.histogram(name, value, buckets)


def snapshot() -> Dict:
    """This process's metrics (counters/gauges/histograms)."""
    return _REGISTRY.snapshot()


def merged_snapshot() -> Dict:
    """Local metrics merged with worker spill files (``metrics-*.json``).

    Counters and histograms sum across processes; gauges stay local
    (a point-in-time value from a dead worker is not meaningful).
    """
    merged = MetricsRegistry()
    merged.merge_snapshot(_REGISTRY.snapshot())
    snap = merged.snapshot()
    snap["gauges"] = _REGISTRY.snapshot()["gauges"]
    directory = obs_dir()
    if directory.exists():
        own = f"metrics-{os.getpid()}.json"
        for path in sorted(directory.glob("metrics-*.json")):
            if path.name == own:
                continue
            try:
                worker = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(worker, dict):
                merged.merge_snapshot(worker)
        snap_all = merged.snapshot()
        snap_all["gauges"] = snap["gauges"]
        return snap_all
    return snap


def reset() -> None:
    """Clear metrics and buffered spans (spill files are left on disk)."""
    _REGISTRY.reset()
    _TRACER.reset()


def log_warning(event: str, **fields) -> None:
    """Structured warning: logged via :mod:`logging` and counted.

    Always logs (warnings should never be silently dropped); the
    ``<event>`` counter increments only when metrics are enabled.
    """
    _LOG.warning("%s %s", event, json.dumps(fields, sort_keys=True, default=str))
    if _MODE != MODE_OFF:
        _REGISTRY.counter(event)


# ---------------------------------------------------------------------------
# spans


def span(name: str, force: bool = False, **attrs) -> Union[Span, "tracing._NullSpan"]:
    """Context manager timing a named region.

    Disabled path: returns the shared :data:`NULL_SPAN` singleton (no
    allocation, no clock reads).  ``force=True`` returns a real
    stopwatch span even when tracing is off — it measures
    ``duration_s`` but is only recorded to the timeline in ``trace``
    mode (used by the perf bench so wall-clock numbers and the trace
    come from one source).
    """
    if _MODE == MODE_TRACE:
        return _TRACER.span(name, attrs)
    if force:
        return _TRACER.span(name, attrs, record=False)
    return NULL_SPAN


def flush() -> None:
    """Spill buffered spans and (in trace mode) this process's metrics.

    Workers call this after each item so their data survives pool
    teardown (``Pool.__exit__`` terminates workers without ``atexit``).
    """
    if _MODE != MODE_TRACE:
        return
    _TRACER.flush()
    directory = obs_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"metrics-{os.getpid()}.json"
        path.write_text(_REGISTRY.to_json(), encoding="utf-8")
    except OSError:  # pragma: no cover - read-only dirs: spans still flushed
        pass


def child_after_fork() -> None:
    """Reset inherited buffers in a freshly forked worker.

    Passed as the pool initializer by :func:`repro.parallel.parallel_map`
    so workers start with an empty span stack/buffer and zeroed metrics
    (otherwise the parent's open spans and counts, copied by ``fork``,
    would be double-reported through the worker spill files).
    """
    _TRACER.reset()
    _REGISTRY.reset()


# ---------------------------------------------------------------------------
# exports


def read_spans(directory: Union[str, Path, None] = None) -> list:
    """All spans spilled under ``directory`` (default: the obs dir)."""
    return _read_span_dir(Path(directory) if directory is not None else obs_dir())


def chrome_trace(directory: Union[str, Path, None] = None) -> Dict:
    """Chrome trace-event dict built from the spilled spans."""
    return _spans_to_chrome(read_spans(directory))


def write_chrome_trace(out_path: Union[str, Path], directory: Union[str, Path, None] = None) -> Path:
    """Convert spilled spans to a Chrome-loadable trace JSON file."""
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(chrome_trace(directory)) + "\n", encoding="utf-8")
    return out_path


def run_hash() -> Optional[str]:
    """The active experiment's canonical config hash (or ``None``)."""
    return _RUN_HASH


class run_context:
    """Context manager tagging every manifest with one experiment hash.

    The pipeline (:mod:`repro.pipeline`) wraps a whole run in this, so
    manifests written by nested subsystems (``Trainer.fit``, the
    evaluation harness, the campaign driver) all carry the same
    ``experiment_hash`` without those subsystems knowing about
    experiments at all.
    """

    def __init__(self, value: Optional[str]) -> None:
        self.value = value
        self._previous: Optional[str] = None

    def __enter__(self) -> "run_context":
        global _RUN_HASH
        self._previous = _RUN_HASH
        _RUN_HASH = self.value
        return self

    def __exit__(self, *exc) -> None:
        global _RUN_HASH
        _RUN_HASH = self._previous


def write_manifest(
    kind: str,
    config: Optional[Mapping] = None,
    seed: Optional[int] = None,
    history: Optional[Mapping] = None,
    extra: Optional[Mapping] = None,
    directory: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Write a run manifest (and refresh ``latest.json``); returns its path.

    No-op returning ``None`` when observability is off — callers can
    invoke it unconditionally at the end of a run.  The metrics field
    is the *merged* snapshot (parent + spilled worker metrics).  Inside
    an :class:`run_context` the manifest additionally carries the
    experiment hash.
    """
    if _MODE == MODE_OFF:
        return None
    flush()
    manifest = build_manifest(
        kind,
        config=config,
        seed=seed,
        history=history,
        metrics=merged_snapshot(),
        extra=extra,
        mode=_MODE,
        run_hash=_RUN_HASH,
    )
    return write_manifest_file(manifest, Path(directory) if directory is not None else obs_dir())


# pick up REPRO_OBS / REPRO_OBS_DIR at import so plain library use (and
# spawn-started workers) honour the env knob without an explicit call.
configure()
