"""repro.obs — metrics, span tracing, continuous telemetry, manifests.

One process-local observability layer shared by every subsystem
(simulator, cache, parallel map, trainer, kernels, evaluation):

* **Metrics** — ``obs.counter("cache.hit")``, ``obs.gauge(...)``,
  ``obs.histogram("train.epoch_ms", 12.5)``; snapshot/reset/JSON via
  the :class:`~repro.obs.metrics.MetricsRegistry`.
* **Spans** — ``with obs.span("simulate.run", cells=n):`` produces
  nested wall-time spans (pid/tid tagged) that spill to per-process
  JSONL files and export to Chrome ``chrome://tracing`` format;
  :mod:`repro.parallel` workers merge into the parent timeline.
* **Continuous telemetry** — ``with obs.sample_window("train"):``
  keeps a daemon thread snapshotting counters, gauges,
  histogram-derived p50/p95/p99 quantiles, RSS/CPU/GC, and collapsed
  stacks at ``obs_sample_hz`` (a :mod:`repro.runtime` value flag,
  default 0 = off) into a bounded ring buffer plus per-pid
  ``series-<pid>.jsonl`` / ``flame-<pid>.txt`` spill files.  Windows
  are refcounted: the first one entered starts the thread, the last
  one exited stops and flushes it (DESIGN §6f).
* **Exporters & SLOs** — Prometheus text exposition / JSONL over any
  snapshot (:mod:`repro.obs.export`), declarative perf budgets and the
  BENCH trend gate (:mod:`repro.obs.slo`).
* **Run manifests** — ``obs.write_manifest(kind="train", ...)`` records
  config hash, kernel-path toggles, seed, git SHA, the merged metric
  snapshot, per-epoch history, and the telemetry file inventory at the
  end of a run.

Modes, selected by the ``REPRO_OBS`` env var or :func:`configure`:

``off``
    The default.  Every entry point returns immediately (spans hand
    back one shared null object; nothing is allocated or recorded) —
    hot loops additionally guard with :func:`metrics_enabled` /
    :func:`trace_enabled` so the disabled path is a near-no-op.  No
    sampler thread is ever started.
``metrics``
    Counters/gauges/histograms, run manifests, telemetry sampling
    (when ``obs_sample_hz`` > 0), and per-process metric spills —
    no span spill files.
``trace``
    Everything: metrics plus spans spilled under the observability
    directory (``REPRO_OBS_DIR``, default ``.repro-obs``).
"""

from __future__ import annotations

import json
import logging
import os
import threading
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from .. import runtime as _runtime
from . import export, slo, timeseries
from .export import (
    jsonl_lines,
    parse_prometheus_text,
    prometheus_text,
    snapshots_equal,
    write_jsonl,
    write_prometheus,
)
from .manifest import (
    LATEST_NAME,
    MANIFEST_SCHEMA,
    build_manifest,
    config_hash,
    git_sha,
    kernel_paths,
    latest_manifest,
    write_manifest_file,
)
from .metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from .sampler import (
    FLAME_FILE_PREFIX,
    ResourceSampler,
    StackSampler,
    read_flame as _read_flame_dir,
)
from .slo import (
    SLO_SCHEMA,
    Violation,
    check_bench_file,
    check_bench_trend,
    evaluate_slo,
    load_slo,
)
from .timeseries import (
    DEFAULT_QUANTILES,
    RingBuffer,
    SampleClock,
    SERIES_FILE_PREFIX,
    TimeSeriesSampler,
    bucket_quantiles,
    read_series as _read_series_dir,
)
from .tracing import NULL_SPAN, Span, SpanTracer, chrome_trace as _spans_to_chrome, read_spans as _read_span_dir

OBS_ENV = "REPRO_OBS"
OBS_DIR_ENV = "REPRO_OBS_DIR"

MODE_OFF = "off"
MODE_METRICS = "metrics"
MODE_TRACE = "trace"
_MODES = (MODE_OFF, MODE_METRICS, MODE_TRACE)

_LOG = logging.getLogger("repro.obs")

_MODE = MODE_OFF
_DIR: Optional[Path] = None
_REGISTRY = MetricsRegistry()
_TRACER = SpanTracer()
_RUN_HASH: Optional[str] = None

#: write-through mirror of the ``obs_sample_hz`` runtime value flag
#: (registered at the bottom of this module); hot guards read this
#: float instead of calling back into :mod:`repro.runtime`.
_SAMPLE_HZ = 0.0

_SAMPLER: Optional[TimeSeriesSampler] = None
_SAMPLE_WINDOWS = 0
_SAMPLE_LOCK = threading.Lock()

__all__ = [
    "OBS_ENV",
    "OBS_DIR_ENV",
    "MODE_OFF",
    "MODE_METRICS",
    "MODE_TRACE",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "SERIES_FILE_PREFIX",
    "FLAME_FILE_PREFIX",
    "SLO_SCHEMA",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "TimeSeriesSampler",
    "RingBuffer",
    "SampleClock",
    "ResourceSampler",
    "StackSampler",
    "Violation",
    "MANIFEST_SCHEMA",
    "configure",
    "mode",
    "obs_dir",
    "enabled",
    "metrics_enabled",
    "trace_enabled",
    "sampling_enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
    "sample_window",
    "current_sampler",
    "flush",
    "reset",
    "snapshot",
    "merged_snapshot",
    "log_warning",
    "read_spans",
    "read_series",
    "read_flame",
    "bucket_quantiles",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "jsonl_lines",
    "write_jsonl",
    "write_prometheus",
    "snapshots_equal",
    "load_slo",
    "evaluate_slo",
    "check_bench_file",
    "check_bench_trend",
    "write_manifest",
    "latest_manifest",
    "build_manifest",
    "run_context",
    "run_hash",
    "config_hash",
    "git_sha",
    "kernel_paths",
    "child_after_fork",
]


# ---------------------------------------------------------------------------
# configuration


def _mode_from_env() -> str:
    raw = (os.environ.get(OBS_ENV) or "").strip().lower()
    if raw in ("", "0", "off", "false", "no", "none"):
        return MODE_OFF
    if raw in ("1", "on", "metrics", "true", "yes"):
        return MODE_METRICS
    if raw in ("2", "trace", "all", "full"):
        return MODE_TRACE
    return MODE_OFF


def configure(mode: Optional[str] = None, directory: Union[str, Path, None] = None) -> str:
    """Select the observability mode and spill directory.

    ``mode`` / ``directory`` default to the ``REPRO_OBS`` /
    ``REPRO_OBS_DIR`` environment variables (``off`` and ``.repro-obs``
    when unset).  Returns the resolved mode.  Safe to call repeatedly;
    the registry and span buffers are kept (use :func:`reset` to clear).
    """
    global _MODE, _DIR
    resolved = (mode or _mode_from_env()).strip().lower()
    if resolved not in _MODES:
        raise ValueError(f"obs mode must be one of {_MODES}, got {resolved!r}")
    if directory is None:
        directory = os.environ.get(OBS_DIR_ENV) or ".repro-obs"
    _MODE = resolved
    _DIR = Path(directory)
    _TRACER.directory = _DIR if resolved == MODE_TRACE else None
    return _MODE


def mode() -> str:
    return _MODE


def obs_dir() -> Path:
    """The observability directory (spans, worker metrics, manifests)."""
    return _DIR if _DIR is not None else Path(os.environ.get(OBS_DIR_ENV) or ".repro-obs")


def enabled() -> bool:
    """True in ``metrics`` or ``trace`` mode."""
    return _MODE != MODE_OFF


def metrics_enabled() -> bool:
    return _MODE != MODE_OFF


def trace_enabled() -> bool:
    return _MODE == MODE_TRACE


def sampling_enabled() -> bool:
    """True when a :func:`sample_window` would actually sample.

    Requires observability on (``metrics`` or ``trace`` mode) *and* a
    positive ``obs_sample_hz`` runtime flag — with either missing,
    ``sample_window`` is a shared-nothing no-op (no thread, no
    allocation beyond the context object itself).
    """
    return _MODE != MODE_OFF and _SAMPLE_HZ > 0.0


# ---------------------------------------------------------------------------
# metrics entry points (early-return when disabled)


def counter(name: str, value: float = 1.0) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.counter(name, value)


def gauge(name: str, value: float) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.gauge(name, value)


def histogram(name: str, value: float, buckets: Optional[Sequence[float]] = None) -> None:
    if _MODE == MODE_OFF:
        return
    _REGISTRY.histogram(name, value, buckets)


def snapshot() -> Dict:
    """This process's metrics (counters/gauges/histograms)."""
    return _REGISTRY.snapshot()


def _spill_pid(filename: str) -> Optional[int]:
    """The pid encoded in a ``metrics-<pid>.json`` spill filename."""
    stem = filename[len("metrics-") : -len(".json")]
    try:
        return int(stem)
    except ValueError:
        return None


def merged_snapshot() -> Dict:
    """Local metrics merged with worker spill files (``metrics-*.json``).

    Counters and histograms sum across processes.  Gauges are
    point-in-time values: local names stay last-write-wins, and each
    worker's gauges merge under a ``<name>.pid<N>`` suffix (pid taken
    from the spill filename) so e.g. a campaign worker's peak-RSS gauge
    survives pool teardown instead of being dropped.
    """
    merged = MetricsRegistry()
    local = _REGISTRY.snapshot()
    merged.merge_snapshot(local)
    directory = obs_dir()
    if directory.exists():
        own = f"metrics-{os.getpid()}.json"
        for path in sorted(directory.glob("metrics-*.json")):
            if path.name == own:
                continue
            try:
                worker = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(worker, dict):
                merged.merge_snapshot(worker, gauge_pid=_spill_pid(path.name))
    snap = merged.snapshot()
    snap["gauges"].update(local["gauges"])
    return snap


def reset() -> None:
    """Clear metrics and buffered spans (spill files are left on disk)."""
    _REGISTRY.reset()
    _TRACER.reset()


def log_warning(event: str, **fields) -> None:
    """Structured warning: logged via :mod:`logging` and counted.

    Always logs (warnings should never be silently dropped); the
    ``<event>`` counter increments only when metrics are enabled.
    """
    _LOG.warning("%s %s", event, json.dumps(fields, sort_keys=True, default=str))
    if _MODE != MODE_OFF:
        _REGISTRY.counter(event)


# ---------------------------------------------------------------------------
# spans


def span(name: str, force: bool = False, **attrs) -> Union[Span, "tracing._NullSpan"]:
    """Context manager timing a named region.

    Disabled path: returns the shared :data:`NULL_SPAN` singleton (no
    allocation, no clock reads).  ``force=True`` returns a real
    stopwatch span even when tracing is off — it measures
    ``duration_s`` but is only recorded to the timeline in ``trace``
    mode (used by the perf bench so wall-clock numbers and the trace
    come from one source).
    """
    if _MODE == MODE_TRACE:
        return _TRACER.span(name, attrs)
    if force:
        return _TRACER.span(name, attrs, record=False)
    return NULL_SPAN


# ---------------------------------------------------------------------------
# continuous telemetry (sample windows)


def _new_sampler() -> TimeSeriesSampler:
    directory: Optional[Path] = obs_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)  # type: ignore[union-attr]
    except OSError:
        log_warning("obs.sample.dir_error", path=str(directory))
        directory = None  # memory-only: ring buffer still fills
    return TimeSeriesSampler(
        interval_s=1.0 / _SAMPLE_HZ,
        source=snapshot,
        resources=ResourceSampler(),
        stacks=StackSampler(),
        directory=directory,
    )


def current_sampler() -> Optional[TimeSeriesSampler]:
    """The live sampler while inside a sample window, else ``None``."""
    return _SAMPLER


class sample_window:
    """Refcounted region during which the telemetry sampler runs.

    ::

        with obs.sample_window("train"):
            trainer.fit(...)

    The first window entered in a process starts the sampling daemon
    thread; nested/overlapping windows just push their label (rows
    carry ``"window": "train;epoch"``-style joined labels); the last
    window exited stops the thread and flushes the spill files.  When
    sampling is disabled (obs off or ``obs_sample_hz`` = 0) entering is
    a no-op: no thread, no lock contention, nothing allocated.
    """

    __slots__ = ("label", "_active")

    def __init__(self, label: str) -> None:
        self.label = label
        self._active = False

    def __enter__(self) -> "sample_window":
        global _SAMPLER, _SAMPLE_WINDOWS
        if not sampling_enabled():
            return self
        with _SAMPLE_LOCK:
            if _SAMPLER is None:
                _SAMPLER = _new_sampler()
                _SAMPLER.start()
            _SAMPLE_WINDOWS += 1
            _SAMPLER.push_label(self.label)
            self._active = True
        return self

    def __exit__(self, *exc: object) -> bool:
        global _SAMPLER, _SAMPLE_WINDOWS
        if not self._active:
            return False
        self._active = False
        stopping: Optional[TimeSeriesSampler] = None
        sampler: Optional[TimeSeriesSampler] = None
        with _SAMPLE_LOCK:
            sampler = _SAMPLER
            _SAMPLE_WINDOWS = max(0, _SAMPLE_WINDOWS - 1)
            if _SAMPLE_WINDOWS == 0:
                stopping, _SAMPLER = _SAMPLER, None
        if stopping is not None:
            # stop before popping: the final row stop() takes still
            # carries this window's label, so even windows shorter than
            # one sample interval leave an attributable row behind
            stopping.stop()  # joins the thread, takes a final row, flushes
            stopping.pop_label(self.label)
        elif sampler is not None:
            sampler.pop_label(self.label)
        return False


def flush() -> None:
    """Spill everything buffered in this process to the obs directory.

    Spans spill in ``trace`` mode; the metrics snapshot
    (``metrics-<pid>.json``) and any pending telemetry rows spill
    whenever observability is on — workers call this after each item so
    their counters *and gauges* survive pool teardown (``Pool.__exit__``
    terminates workers without ``atexit``).
    """
    if _MODE == MODE_OFF:
        return
    if _MODE == MODE_TRACE:
        _TRACER.flush()
    sampler = _SAMPLER
    if sampler is not None:
        sampler.flush()
    directory = obs_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"metrics-{os.getpid()}.json"
        path.write_text(_REGISTRY.to_json(), encoding="utf-8")
    except OSError:  # pragma: no cover - read-only dirs: spans still flushed
        pass


def child_after_fork() -> None:
    """Rebuild obs state in a freshly forked worker.

    Passed as the pool initializer by :func:`repro.parallel.parallel_map`.
    Two jobs: (1) start with an empty span stack/buffer and zeroed
    metrics, so the parent's open spans and counts copied by ``fork``
    are not double-reported through the worker spill files; (2) replace
    — not merely reset — the registry, tracer, and sampler state,
    because the parent's sampler thread does not survive the fork and
    may have been holding their locks at the fork instant (``reset``
    would deadlock on an orphaned lock).
    """
    global _REGISTRY, _TRACER, _SAMPLER, _SAMPLE_WINDOWS, _SAMPLE_LOCK
    _SAMPLE_LOCK = threading.Lock()
    _SAMPLER = None
    _SAMPLE_WINDOWS = 0
    _REGISTRY = MetricsRegistry()
    _TRACER = SpanTracer(_DIR if _MODE == MODE_TRACE else None)


# ---------------------------------------------------------------------------
# exports


def read_spans(directory: Union[str, Path, None] = None) -> list:
    """All spans spilled under ``directory`` (default: the obs dir)."""
    return _read_span_dir(Path(directory) if directory is not None else obs_dir())


def read_series(directory: Union[str, Path, None] = None) -> list:
    """All telemetry rows spilled under ``directory`` (default: obs dir)."""
    return _read_series_dir(Path(directory) if directory is not None else obs_dir())


def read_flame(directory: Union[str, Path, None] = None) -> Dict[str, int]:
    """Merged collapsed stacks spilled under ``directory`` (default: obs dir)."""
    return _read_flame_dir(Path(directory) if directory is not None else obs_dir())


def chrome_trace(directory: Union[str, Path, None] = None) -> Dict:
    """Chrome trace-event dict built from the spilled spans."""
    return _spans_to_chrome(read_spans(directory))


def write_chrome_trace(out_path: Union[str, Path], directory: Union[str, Path, None] = None) -> Path:
    """Convert spilled spans to a Chrome-loadable trace JSON file."""
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(chrome_trace(directory)) + "\n", encoding="utf-8")
    return out_path


def run_hash() -> Optional[str]:
    """The active experiment's canonical config hash (or ``None``)."""
    return _RUN_HASH


class run_context:
    """Context manager tagging every manifest with one experiment hash.

    The pipeline (:mod:`repro.pipeline`) wraps a whole run in this, so
    manifests written by nested subsystems (``Trainer.fit``, the
    evaluation harness, the campaign driver) all carry the same
    ``experiment_hash`` without those subsystems knowing about
    experiments at all.
    """

    def __init__(self, value: Optional[str]) -> None:
        self.value = value
        self._previous: Optional[str] = None

    def __enter__(self) -> "run_context":
        global _RUN_HASH
        self._previous = _RUN_HASH
        _RUN_HASH = self.value
        return self

    def __exit__(self, *exc) -> None:
        global _RUN_HASH
        _RUN_HASH = self._previous


def _telemetry_inventory(directory: Path) -> Dict:
    """The manifest's telemetry block: sample rate + spill-file census."""
    info: Dict = {"obs_sample_hz": _SAMPLE_HZ}
    try:
        if directory.exists():
            info["series_files"] = sorted(
                p.name for p in directory.glob(f"{SERIES_FILE_PREFIX}*.jsonl")
            )
            info["flame_files"] = sorted(
                p.name for p in directory.glob(f"{FLAME_FILE_PREFIX}*.txt")
            )
    except OSError:  # pragma: no cover - directory races
        pass
    return info


def write_manifest(
    kind: str,
    config: Optional[Mapping] = None,
    seed: Optional[int] = None,
    history: Optional[Mapping] = None,
    extra: Optional[Mapping] = None,
    directory: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Write a run manifest (and refresh ``latest.json``); returns its path.

    No-op returning ``None`` when observability is off — callers can
    invoke it unconditionally at the end of a run.  The metrics field
    is the *merged* snapshot (parent + spilled worker metrics), which
    is also exported alongside the manifest as ``metrics.prom``
    (Prometheus text exposition) and ``metrics.jsonl``; the manifest's
    ``extra.telemetry`` block records the sample rate and the telemetry
    spill files present.  Inside a :class:`run_context` the manifest
    additionally carries the experiment hash.
    """
    if _MODE == MODE_OFF:
        return None
    flush()
    out_dir = Path(directory) if directory is not None else obs_dir()
    metrics = merged_snapshot()
    telemetry = _telemetry_inventory(out_dir)
    try:
        telemetry["exports"] = [
            write_prometheus(metrics, out_dir / "metrics.prom").name,
            write_jsonl(metrics, out_dir / "metrics.jsonl").name,
        ]
    except OSError:
        log_warning("obs.export.write_error", path=str(out_dir))
    manifest = build_manifest(
        kind,
        config=config,
        seed=seed,
        history=history,
        metrics=metrics,
        extra={**dict(extra or {}), "telemetry": telemetry},
        mode=_MODE,
        run_hash=_RUN_HASH,
    )
    return write_manifest_file(manifest, out_dir)


# pick up REPRO_OBS / REPRO_OBS_DIR at import so plain library use (and
# spawn-started workers) honour the env knob without an explicit call.
configure()


def _set_sample_hz(value: object) -> None:
    global _SAMPLE_HZ
    _SAMPLE_HZ = float(str(value))


# write-through mirror: runtime.configure(obs_sample_hz=...) updates
# _SAMPLE_HZ immediately; the return value initializes it in sync.
_runtime.register_mirror("obs_sample_hz", _set_sample_hz)
