"""Resource and stack sampling: RSS/CPU/GC readings plus flamegraphs.

Two samplers that the telemetry thread (:mod:`repro.obs.timeseries`)
ticks once per interval:

* :class:`ResourceSampler` — process RSS from ``/proc/self/statm``
  (falling back to ``resource.getrusage`` off-Linux), CPU utilisation
  from ``os.times`` deltas, and cumulative GC collections from
  :mod:`gc`.  No psutil: everything comes from the stdlib and procfs.
  Each reading is also published as ``obs.rss.mb`` /
  ``obs.rss.peak_mb`` / ``obs.cpu.pct`` / ``obs.gc.collections``
  gauges, so peak RSS survives into manifests and — via the
  ``<name>.pid<N>`` gauge merge — across campaign worker teardown.

* :class:`StackSampler` — a low-overhead interval stack sampler:
  ``sys._current_frames()`` is walked for every thread (except the
  sampling thread itself), frames collapse to
  ``module:function;module:function`` strings, and identical stacks
  accumulate counts — exactly the collapsed-stack format Brendan
  Gregg's ``flamegraph.pl`` (or speedscope) consumes.  Stacks spill to
  ``flame-<pid>.txt`` and :func:`read_flame` merges files across
  processes.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set

FLAME_FILE_PREFIX = "flame-"

#: frames deeper than this are truncated (runaway recursion guard)
_MAX_STACK_DEPTH = 64

_PAGE_SIZE = 4096
try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover - exotic hosts
    pass


def read_rss_mb() -> Optional[float]:
    """Resident set size in MiB, or ``None`` when unreadable.

    Primary source is ``/proc/self/statm`` (second field, pages);
    off-Linux the ``resource`` module's peak-RSS is used as a proxy.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - non-procfs hosts
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return float(peak_kb) / 1024.0
    except (ImportError, OSError, ValueError):  # pragma: no cover
        return None


def cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    t = os.times()
    return float(t.user + t.system)


def gc_collections() -> int:
    """Total GC collections across all generations so far."""
    try:
        return int(sum(s.get("collections", 0) for s in gc.get_stats()))
    except (AttributeError, TypeError):  # pragma: no cover - minimal runtimes
        return 0


class ResourceSampler:
    """Per-tick RSS/CPU/GC readings with a running peak-RSS watermark."""

    def __init__(self) -> None:
        self.peak_rss_mb = 0.0
        self._last_cpu_s = cpu_seconds()
        self._last_wall = time.perf_counter()

    def sample(self) -> Dict[str, float]:
        """One reading: ``{"rss_mb", "peak_rss_mb", "cpu_pct", "gc_collections"}``.

        ``cpu_pct`` is CPU time consumed since the previous call divided
        by the wall time elapsed (×100; can exceed 100 on multithreaded
        phases).  Also publishes the readings as obs gauges when metrics
        are enabled.
        """
        now = time.perf_counter()
        cpu_s = cpu_seconds()
        wall_dt = now - self._last_wall
        cpu_pct = 100.0 * (cpu_s - self._last_cpu_s) / wall_dt if wall_dt > 0 else 0.0
        self._last_wall = now
        self._last_cpu_s = cpu_s
        rss = read_rss_mb()
        reading: Dict[str, float] = {
            "cpu_pct": round(cpu_pct, 2),
            "gc_collections": gc_collections(),
        }
        if rss is not None:
            if rss > self.peak_rss_mb:
                self.peak_rss_mb = rss
            reading["rss_mb"] = round(rss, 2)
            reading["peak_rss_mb"] = round(self.peak_rss_mb, 2)
        from repro import obs  # function-scope: repro.obs imports this module

        if obs.metrics_enabled():
            if rss is not None:
                obs.gauge("obs.rss.mb", reading["rss_mb"])
                obs.gauge("obs.rss.peak_mb", reading["peak_rss_mb"])
            obs.gauge("obs.cpu.pct", reading["cpu_pct"])
            obs.gauge("obs.gc.collections", reading["gc_collections"])
        return reading


class StackSampler:
    """Interval stack sampler emitting collapsed-stack flamegraph lines."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._skip: Set[int] = set()
        self._lock = threading.Lock()
        self.samples = 0

    def skip_thread(self, ident: int) -> None:
        """Exclude a thread (the sampler's own) from collection."""
        self._skip.add(int(ident))

    def sample_once(self) -> int:
        """Collapse every live thread's stack once; returns stacks taken."""
        taken = 0
        frames = sys._current_frames()
        for ident, frame in frames.items():
            if ident in self._skip:
                continue
            parts: List[str] = []
            f = frame
            while f is not None and len(parts) < _MAX_STACK_DEPTH:
                module = f.f_globals.get("__name__", "?")
                parts.append(f"{module}:{f.f_code.co_name}")
                f = f.f_back
            if not parts:
                continue
            key = ";".join(reversed(parts))  # root first, leaf last
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
            taken += 1
        self.samples += taken
        from repro import obs  # function-scope: repro.obs imports this module

        obs.counter("obs.flame.samples", taken)
        return taken

    def collapsed(self) -> Dict[str, int]:
        """Snapshot of stack → sample count."""
        with self._lock:
            return dict(self._counts)

    def write(self, path: Path) -> Path:
        """Rewrite ``path`` with the cumulative collapsed stacks."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [f"{stack} {count}" for stack, count in sorted(self.collapsed().items())]
        path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        return path

    def write_dir(self, directory: Path) -> Optional[Path]:
        """Spill to ``<directory>/flame-<pid>.txt`` (counts are cumulative)."""
        try:
            return self.write(Path(directory) / f"{FLAME_FILE_PREFIX}{os.getpid()}.txt")
        except OSError:  # pragma: no cover - read-only dirs
            return None


def merge_collapsed(stacks: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum several collapsed-stack dicts into one."""
    merged: Dict[str, int] = {}
    for table in stacks:
        for stack, count in table.items():
            merged[stack] = merged.get(stack, 0) + int(count)
    return merged


def read_flame(directory: Path) -> Dict[str, int]:
    """Merge every ``flame-*.txt`` under ``directory`` (stack → count)."""
    directory = Path(directory)
    tables: List[Dict[str, int]] = []
    if not directory.exists():
        return {}
    for path in sorted(directory.glob(f"{FLAME_FILE_PREFIX}*.txt")):
        table: Dict[str, int] = {}
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            if not stack:
                continue
            try:
                table[stack] = table.get(stack, 0) + int(count)
            except ValueError:
                continue
        tables.append(table)
    return merge_collapsed(tables)
