"""Declarative perf budgets (SLOs) evaluated against run telemetry.

A budget file (schema ``repro-slo-v1``) states what a healthy run looks
like::

    {
      "schema": "repro-slo-v1",
      "budgets": {
        "stage_wall_s":  {"pipeline.stage.train": 30.0, "pipeline": 120.0},
        "peak_rss_mb":   2048,
        "counter_max":   {"obs.sample.drops": 0, "*.spill_error": 0},
        "counter_min":   {"obs.sample.ticks": 1},
        "end_to_end_regression": 1.15
      }
    }

``stage_wall_s`` keys are :mod:`fnmatch` globs over *span names* (the
limit bounds the longest matching span); ``counter_max`` /
``counter_min`` globs match counter names in the merged snapshot;
``peak_rss_mb`` bounds the ``obs.rss.peak_mb`` gauge family (including
``.pid<N>``-suffixed worker gauges) and any ``peak_rss_mb`` column in
the telemetry series.  :func:`evaluate_slo` returns
:class:`Violation` records (and publishes ``obs.slo.violations``);
``repro5g obs check-slo`` exits non-zero when any are returned.

``end_to_end_regression`` feeds :func:`check_bench_trend`, the
``BENCH_perf.json`` trend gate: the latest recorded ``end_to_end``
wall time may not exceed the stored baseline by more than the given
ratio (default 1.15, i.e. >15% regression fails).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

SLO_SCHEMA = "repro-slo-v1"

#: default end-to-end trend limit: >15% slower than baseline fails.
DEFAULT_REGRESSION_LIMIT = 1.15

_BUDGET_KEYS = frozenset(
    {"stage_wall_s", "peak_rss_mb", "counter_max", "counter_min", "end_to_end_regression"}
)


@dataclass
class Violation:
    """One budget breach: what was bounded, the limit, what happened."""

    budget: str
    subject: str
    limit: float
    actual: float

    def message(self) -> str:
        return (
            f"SLO violation [{self.budget}] {self.subject}: "
            f"actual {self.actual:g} exceeds budget {self.limit:g}"
            if self.budget != "counter_min"
            else f"SLO violation [{self.budget}] {self.subject}: "
            f"actual {self.actual:g} below required {self.limit:g}"
        )


def load_slo(path: Path) -> Dict:
    """Load and validate a ``repro-slo-v1`` budget file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != SLO_SCHEMA:
        raise ValueError(f"{path}: expected an SLO file with schema {SLO_SCHEMA!r}")
    budgets = data.get("budgets")
    if not isinstance(budgets, dict):
        raise ValueError(f"{path}: 'budgets' must be an object")
    unknown = set(budgets) - _BUDGET_KEYS
    if unknown:
        raise ValueError(f"{path}: unknown budget keys {sorted(unknown)}")
    return data


def _peak_rss_candidates(snapshot: Mapping, series: Sequence[Mapping]) -> Dict[str, float]:
    """Every peak-RSS reading available: gauges (incl. workers) + series."""
    candidates: Dict[str, float] = {}
    for name, value in snapshot.get("gauges", {}).items():
        if name == "obs.rss.peak_mb" or name.startswith("obs.rss.peak_mb.pid"):
            candidates[name] = float(value)
    for row in series:
        value = row.get("peak_rss_mb")
        if value is not None:
            key = f"series.pid{row.get('pid', 0)}"
            candidates[key] = max(candidates.get(key, 0.0), float(value))
    return candidates


def evaluate_slo(
    slo: Mapping,
    snapshot: Optional[Mapping] = None,
    spans: Optional[Sequence[Mapping]] = None,
    series: Optional[Sequence[Mapping]] = None,
) -> List[Violation]:
    """Check a run's telemetry against a budget; returns all breaches.

    ``snapshot`` is a (merged) metrics snapshot, ``spans`` the span
    dicts from ``read_spans``, ``series`` the telemetry rows from
    ``read_series`` — pass whatever the run produced; budgets whose
    inputs are absent are skipped, except ``counter_min`` (a missing
    counter *is* the violation: required work never happened).
    """
    budgets = dict(slo.get("budgets", {}))
    snapshot = snapshot or {}
    spans = list(spans or [])
    series = list(series or [])
    violations: List[Violation] = []

    for pattern, limit in dict(budgets.get("stage_wall_s", {})).items():
        worst: Optional[Mapping] = None
        for s in spans:
            if fnmatchcase(str(s.get("name", "")), pattern):
                if worst is None or float(s.get("dur", 0.0)) > float(worst.get("dur", 0.0)):
                    worst = s
        if worst is not None and float(worst.get("dur", 0.0)) > float(limit):
            violations.append(
                Violation("stage_wall_s", str(worst["name"]), float(limit), float(worst["dur"]))
            )

    rss_limit = budgets.get("peak_rss_mb")
    if rss_limit is not None:
        for subject, value in sorted(_peak_rss_candidates(snapshot, series).items()):
            if value > float(rss_limit):
                violations.append(Violation("peak_rss_mb", subject, float(rss_limit), value))

    counters = snapshot.get("counters", {})
    for pattern, limit in dict(budgets.get("counter_max", {})).items():
        for name in sorted(counters):
            if fnmatchcase(name, pattern) and float(counters[name]) > float(limit):
                violations.append(
                    Violation("counter_max", name, float(limit), float(counters[name]))
                )
    for pattern, limit in dict(budgets.get("counter_min", {})).items():
        matched = [name for name in sorted(counters) if fnmatchcase(name, pattern)]
        if not matched:
            violations.append(Violation("counter_min", pattern, float(limit), 0.0))
            continue
        for name in matched:
            if float(counters[name]) < float(limit):
                violations.append(
                    Violation("counter_min", name, float(limit), float(counters[name]))
                )

    if violations:
        from repro import obs  # function-scope: repro.obs imports this module

        obs.counter("obs.slo.violations", len(violations))
    return violations


# ---------------------------------------------------------------------------
# BENCH_perf.json trend gate


def check_bench_trend(
    bench: Mapping, limit: float = DEFAULT_REGRESSION_LIMIT
) -> Optional[Violation]:
    """End-to-end trend check over a ``BENCH_perf.json`` payload.

    Compares ``latest.current_s.end_to_end`` against
    ``baseline.current_s.end_to_end``; a ratio above ``limit`` (default
    1.15 — >15% slower) returns a :class:`Violation`, otherwise
    ``None``.  Missing baseline or latest sections pass (first run).
    """
    baseline = bench.get("baseline", {}).get("current_s", {}).get("end_to_end")
    latest = bench.get("latest", {}).get("current_s", {}).get("end_to_end")
    if not baseline or not latest:
        return None
    ratio = float(latest) / float(baseline)
    if ratio > float(limit):
        return Violation("end_to_end_regression", "BENCH_perf.json", float(limit), round(ratio, 4))
    return None


def check_bench_file(
    path: Path, limit: float = DEFAULT_REGRESSION_LIMIT
) -> Optional[Violation]:
    """:func:`check_bench_trend` over a file; a missing file passes."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        bench = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    return check_bench_trend(bench, limit)
