"""Run manifests: the provenance record written at the end of a run.

A manifest captures everything needed to interpret (and re-run) a
training / campaign / evaluation run: the configuration and its content
hash, the kernel-path toggles in effect (fused kernels, carrier
folding, vectorized radio), the seed, the git SHA of the working tree,
the merged metrics snapshot, and per-epoch history when the run trains
a model.  Manifests are plain JSON files in the observability
directory; ``latest.json`` always mirrors the most recent one so
``repro5g obs report`` has a stable entry point.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Dict, Mapping, Optional

MANIFEST_SCHEMA = "repro-obs-manifest-v1"
LATEST_NAME = "latest.json"

_manifest_seq = itertools.count()
_git_sha_cache: Dict[str, Optional[str]] = {}


def config_hash(config: Optional[Mapping]) -> Optional[str]:
    """Stable content hash of a run configuration.

    Delegates to :func:`repro.runtime.canonical_hash` — the repo's one
    hashing recipe, shared with the trace cache and the experiment
    pipeline — so equal configurations hash equally everywhere.
    """
    if config is None:
        return None
    from .. import runtime

    return runtime.canonical_hash(config)


def git_sha(start: Optional[Path] = None) -> Optional[str]:
    """Best-effort commit SHA of the enclosing git checkout.

    Reads ``.git/HEAD`` (and ``packed-refs``) directly instead of
    shelling out, walking up from ``start`` (default: cwd).  Returns
    ``None`` outside a checkout.  Cached per start path — the SHA is
    constant for the life of a run, and manifests are written at the
    end of hot paths (``Trainer.fit``) where repeated ``.git`` walks
    would show up in the obs-overhead gate.
    """
    try:
        path = Path(start or os.getcwd()).resolve()
        cache_key = str(path)
        if cache_key in _git_sha_cache:
            return _git_sha_cache[cache_key]
        _git_sha_cache[cache_key] = _read_git_sha(path)
        return _git_sha_cache[cache_key]
    except OSError:
        return None


def _read_git_sha(path: Path) -> Optional[str]:
    try:
        for candidate in (path, *path.parents):
            git = candidate / ".git"
            if not git.is_dir():
                continue
            head = (git / "HEAD").read_text(encoding="utf-8").strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.split(None, 1)[1]
            ref_path = git / ref
            if ref_path.exists():
                return ref_path.read_text(encoding="utf-8").strip() or None
            packed = git / "packed-refs"
            if packed.exists():
                for line in packed.read_text(encoding="utf-8").splitlines():
                    parts = line.split()
                    if len(parts) == 2 and parts[1] == ref:
                        return parts[0]
            return None
    except OSError:
        pass
    return None


def kernel_paths() -> Dict[str, object]:
    """The hot-path dispatch toggles currently in effect.

    Reads :func:`repro.runtime.flags` (the single source of truth for
    the fused-kernel / carrier-folding / vectorized-radio / arena /
    backend switches); imported lazily so :mod:`repro.obs` stays
    import-cycle-free.  Besides the raw flags, the snapshot records
    ``backend_resolved`` — the backend that *actually* serves dispatch
    after graceful fallback (numpy when the requested backend is
    unknown or its dependency is missing) — so a manifest never claims
    an acceleration that silently degraded.
    """
    try:
        from .. import backends, runtime
    except ImportError:  # pragma: no cover - partial installs
        return {}
    paths: Dict[str, object] = runtime.flags()
    paths["backend_resolved"] = backends.active_name()
    return paths


def tuning() -> Dict[str, object]:
    """Benchmark-derived tuning constants currently in effect.

    Auto-tuned crossovers (today: Prism5G's batched-encoder fold
    chunking, see :mod:`repro.core.prism5g`) are stamped into run
    manifests so a recorded result can be traced back to the constants
    that shaped its hot path.
    """
    values: Dict[str, object] = {}
    try:
        from ..core import prism5g
    except ImportError:  # pragma: no cover - partial installs
        return values
    values["fold_chunk_rows"] = prism5g.fold_chunk_rows()
    if prism5g._FOLD_TUNING is not None:
        values["fold_chunk_tuning"] = dict(prism5g._FOLD_TUNING)
    return values


def build_manifest(
    kind: str,
    config: Optional[Mapping] = None,
    seed: Optional[int] = None,
    history: Optional[Mapping] = None,
    metrics: Optional[Mapping] = None,
    extra: Optional[Mapping] = None,
    mode: Optional[str] = None,
    run_hash: Optional[str] = None,
) -> Dict:
    """Assemble the manifest dict (no I/O; see ``obs.write_manifest``).

    ``run_hash`` is the enclosing experiment's canonical config hash
    (see :mod:`repro.pipeline`); every manifest written while a
    pipeline run is active carries it, so stage artifacts, trace-cache
    entries and manifests can all be joined on one identifier.
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "pid": os.getpid(),
        "mode": mode,
        "git_sha": git_sha(),
        "seed": seed,
        "config": dict(config) if config is not None else None,
        "config_hash": config_hash(config),
        "experiment_hash": run_hash,
        "kernel_paths": kernel_paths(),
        "tuning": tuning(),
        "metrics": dict(metrics) if metrics is not None else None,
        "history": dict(history) if history is not None else None,
        "extra": dict(extra) if extra is not None else None,
    }


def write_manifest_file(manifest: Mapping, directory: Path) -> Path:
    """Write a manifest JSON plus the ``latest.json`` mirror; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    name = f"manifest-{manifest.get('kind', 'run')}-{stamp}-{os.getpid()}-{next(_manifest_seq)}.json"
    path = directory / name
    payload = json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n"
    path.write_text(payload, encoding="utf-8")
    (directory / LATEST_NAME).write_text(payload, encoding="utf-8")
    return path


def latest_manifest(directory: Path) -> Optional[Dict]:
    """The most recent manifest in a directory, or ``None``."""
    directory = Path(directory)
    latest = directory / LATEST_NAME
    candidates = [latest] if latest.exists() else sorted(directory.glob("manifest-*.json"), reverse=True)
    for path in candidates:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(data, dict):
            return data
    return None
