"""Exporters: Prometheus text exposition and JSONL over any snapshot.

Two serializations of the registry's plain-dict snapshots
(:meth:`repro.obs.metrics.MetricsRegistry.snapshot` or the
cross-process :func:`repro.obs.merged_snapshot`):

* :func:`prometheus_text` — the Prometheus text exposition format
  (v0.0.4): counters as ``<name>_total``, gauges verbatim, histograms
  as cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``
  and ``_min``/``_max`` companion gauges.  Dotted obs names are
  sanitized to ``[a-zA-Z0-9_]`` metric names, but every family carries
  a ``# HELP`` line holding the *original* dotted name, so
  :func:`parse_prometheus_text` round-trips a snapshot losslessly —
  the export acceptance gate diffs ``parse(export(snap))`` against
  ``snap`` for every catalog metric.

* :func:`jsonl_lines` / :func:`write_jsonl` — one self-describing JSON
  object per metric (``{"kind", "name", "value"| histogram fields}``),
  the format downstream collectors and the ``repro5g obs export``
  default consume.

Floats are rendered with :func:`repr`-equivalent 17-significant-digit
fidelity so parse→format→parse is exact.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional

_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")
_LEADING_RE = re.compile(r"^[^a-zA-Z_]")


def sanitize_name(name: str) -> str:
    """Map a dotted obs name onto the Prometheus metric-name grammar."""
    clean = _SANITIZE_RE.sub("_", name)
    if _LEADING_RE.match(clean):
        clean = "_" + clean
    return clean


def _fmt(value: float) -> str:
    """Render a float losslessly (repr round-trips in Python 3)."""
    f = float(value)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(snap: Mapping) -> str:
    """Serialize a metrics snapshot to Prometheus text exposition."""
    lines: List[str] = []

    def family(name: str, suffix: str, kind: str) -> str:
        metric = sanitize_name(name) + suffix
        lines.append(f"# HELP {metric} {name}")
        lines.append(f"# TYPE {metric} {kind}")
        return metric

    for name in sorted(snap.get("counters", {})):
        metric = family(name, "_total", "counter")
        lines.append(f"{metric} {_fmt(snap['counters'][name])}")
    for name in sorted(snap.get("gauges", {})):
        metric = family(name, "", "gauge")
        lines.append(f"{metric} {_fmt(snap['gauges'][name])}")
    for name in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][name]
        metric = family(name, "", "histogram")
        cumulative = 0
        for bound, count in zip(hist.get("buckets", []), hist.get("counts", [])):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {int(hist.get("count", 0))}')
        lines.append(f"{metric}_sum {_fmt(float(hist.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {int(hist.get('count', 0))}")
        # min/max sidecars have no Prometheus histogram slot; export as
        # companion gauges so the quantile clamp survives a round trip.
        for side in ("min", "max"):
            value = hist.get(side)
            if value is not None:
                side_metric = family(f"{name}.{side}", "", "gauge")
                lines.append(f"{side_metric} {_fmt(float(value))}")
    return "\n".join(lines) + "\n"


def _parse_num(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus_text(text: str) -> Dict:
    """Parse :func:`prometheus_text` output back into a snapshot dict.

    Uses the ``# HELP`` lines (which carry the original dotted names) to
    undo name sanitization; histogram ``_min``/``_max`` companion gauges
    fold back into the histogram's sidecars.  Only intended for output
    of :func:`prometheus_text` — it is the round-trip check, not a
    general scrape parser.
    """
    helps: Dict[str, str] = {}
    types: Dict[str, str] = {}
    snap: Dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            metric, _, original = rest.partition(" ")
            helps[metric] = original
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            metric, _, kind = rest.partition(" ")
            types[metric] = kind
            continue
        if line.startswith("#"):
            continue
        sample, _, value_text = line.rpartition(" ")
        if not sample:
            continue
        value = _parse_num(value_text)
        metric, _, label_part = sample.partition("{")
        if metric in types and types[metric] == "counter":
            snap["counters"][helps.get(metric, metric)] = value
            continue
        if metric in types and types[metric] == "gauge":
            snap["gauges"][helps.get(metric, metric)] = value
            continue
        # histogram series: metric is "<family>_bucket" / "_sum" / "_count"
        for suffix in ("_bucket", "_sum", "_count"):
            if metric.endswith(suffix) and metric[: -len(suffix)] in types:
                fam = metric[: -len(suffix)]
                name = helps.get(fam, fam)
                hist = snap["histograms"].setdefault(
                    name, {"buckets": [], "counts": [], "count": 0, "sum": 0.0,
                           "min": None, "max": None, "_cumulative": []}
                )
                if suffix == "_bucket":
                    bound = label_part.rstrip("}").partition('le="')[2].rstrip('"')
                    if bound != "+Inf":
                        hist["buckets"].append(_parse_num(bound))
                    hist["_cumulative"].append(int(value))
                elif suffix == "_sum":
                    hist["sum"] = value
                else:
                    hist["count"] = int(value)
                break
    # de-cumulate bucket counts; fold min/max companion gauges back in
    for name, hist in snap["histograms"].items():
        cumulative = hist.pop("_cumulative", [])
        counts: List[int] = []
        prev = 0
        for c in cumulative:
            counts.append(c - prev)
            prev = c
        hist["counts"] = counts
        for side in ("min", "max"):
            companion = f"{name}.{side}"
            if companion in snap["gauges"]:
                hist[side] = snap["gauges"].pop(companion)
    return snap


# ---------------------------------------------------------------------------
# JSONL


def jsonl_lines(snap: Mapping) -> List[str]:
    """One self-describing JSON object per metric, sorted by name."""
    lines: List[str] = []
    for name in sorted(snap.get("counters", {})):
        lines.append(json.dumps(
            {"kind": "counter", "name": name, "value": snap["counters"][name]},
            sort_keys=True))
    for name in sorted(snap.get("gauges", {})):
        lines.append(json.dumps(
            {"kind": "gauge", "name": name, "value": snap["gauges"][name]},
            sort_keys=True))
    for name in sorted(snap.get("histograms", {})):
        record = {"kind": "histogram", "name": name}
        record.update(snap["histograms"][name])
        lines.append(json.dumps(record, sort_keys=True, default=str))
    return lines


def write_jsonl(snap: Mapping, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(jsonl_lines(snap)) + "\n", encoding="utf-8")
    return path


def write_prometheus(snap: Mapping, path: Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snap), encoding="utf-8")
    return path


def snapshots_equal(a: Mapping, b: Mapping) -> bool:
    """Structural equality of two snapshots (float-exact); round-trip gate."""

    def canon(snap: Mapping) -> Dict:
        out: Dict = {
            "counters": {k: float(v) for k, v in snap.get("counters", {}).items()},
            "gauges": {k: float(v) for k, v in snap.get("gauges", {}).items()},
            "histograms": {},
        }
        for name, hist in snap.get("histograms", {}).items():
            out["histograms"][name] = {
                "buckets": [float(x) for x in hist.get("buckets", [])],
                "counts": [int(x) for x in hist.get("counts", [])],
                "count": int(hist.get("count", 0)),
                "sum": float(hist.get("sum", 0.0)),
                "min": None if hist.get("min") is None else float(hist["min"]),
                "max": None if hist.get("max") is None else float(hist["max"]),
            }
        return out

    return canon(a) == canon(b)
