"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny — plain dicts behind one lock — so a
guarded increment costs well under a microsecond and the disabled path
(see :mod:`repro.obs`) never touches it at all.  Snapshots are plain
JSON-ready dicts; cross-process aggregation merges worker snapshots
spilled by the tracer (counters and histograms sum; gauges stay
last-write-wins per process, and worker gauges merge under a
``<name>.pid<N>`` suffix so they survive pool teardown).
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: default histogram bucket upper bounds (unit-agnostic; chosen to span
#: sub-millisecond kernels through minute-scale phases when values are
#: milliseconds).  The last implicit bucket is +inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars."""

    __slots__ = ("buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_snapshot(self, snap: Mapping) -> bool:
        """Fold another histogram snapshot in (matching buckets only).

        Returns ``False`` — without touching local data — when the
        snapshot's bucket layout differs from ours: summing counts
        across mismatched bounds would silently corrupt quantiles.
        Callers (the registry merge) publish the refusal as the
        ``obs.merge.bucket_mismatch`` counter so dropped worker data is
        visible rather than quietly vanishing.
        """
        if list(snap.get("buckets", [])) != list(self.buckets):
            return False  # incompatible layout: keep local data rather than guess
        for i, c in enumerate(snap.get("counts", [])):
            if i < len(self.counts):
                self.counts[i] += int(c)
        self.count += int(snap.get("count", 0))
        self.total += float(snap.get("sum", 0.0))
        for key, pick in (("min", min), ("max", max)):
            other = snap.get(key)
            if other is not None:
                setattr(self, key, pick(getattr(self, key), float(other)))
        return True


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (default 1) to the monotonic counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def histogram(self, name: str, value: float, buckets: Optional[Sequence[float]] = None) -> None:
        """Observe ``value`` in histogram ``name``.

        ``buckets`` fixes the bucket bounds on the first observation;
        later calls reuse the registered layout.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(buckets or DEFAULT_BUCKETS)
            hist.observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready copy of every metric in this process."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.snapshot() for k, h in self._histograms.items()},
            }

    def merge_snapshot(self, snap: Mapping, gauge_pid: Optional[int] = None) -> None:
        """Fold a worker snapshot in: counters and histograms sum.

        Gauges are point-in-time values, so a plain sum is meaningless:
        local names stay last-write-wins, and worker gauges are merged
        only when the caller supplies the worker's ``gauge_pid`` — each
        arrives under a ``<name>.pid<N>`` suffix, so e.g. a campaign
        worker's peak-RSS gauge survives pool teardown without ever
        colliding with (or overwriting) the parent's own value.

        A histogram snapshot whose bucket layout differs from the local
        registration cannot be summed; the refusal is published as the
        ``obs.merge.bucket_mismatch`` counter (one increment per dropped
        snapshot) instead of being silently swallowed.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name, value)
        mismatched = 0
        with self._lock:
            for name, hsnap in snap.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(hsnap.get("buckets") or DEFAULT_BUCKETS)
                if not hist.merge_snapshot(hsnap):
                    mismatched += 1
        if gauge_pid is not None:
            for name, value in snap.get("gauges", {}).items():
                self.gauge(f"{name}.pid{int(gauge_pid)}", value)
        if mismatched:
            self.counter("obs.merge.bucket_mismatch", mismatched)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
