"""Continuous telemetry: a bounded ring-buffer time-series sampler.

Where :func:`repro.obs.snapshot` answers "what do the metrics say
*now*", this module answers "what did they look like *over time*": a
daemon thread snapshots selected counters, gauges, and
histogram-derived quantiles (p50/p95/p99 via in-bucket linear
interpolation) at a configurable interval, keeps the last N rows in a
bounded :class:`RingBuffer`, and appends every row to a per-pid
``series-<pid>.jsonl`` spill file that merges across processes exactly
like the tracer's span spills (:func:`read_series` is the analogue of
``read_spans``).

Lifetime rules (DESIGN §6f): the sampler only runs inside refcounted
:func:`repro.obs.sample_window` regions — the first window entered
starts the daemon thread, the last one exited stops and flushes it, and
nothing at all happens (no thread, no allocation) unless observability
is on *and* the ``obs_sample_hz`` runtime flag is positive.  The clock
is injectable (:class:`SampleClock`) so ring-buffer wraparound and row
contents are deterministic under test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

SERIES_FILE_PREFIX = "series-"

#: quantiles every sampled histogram is reduced to, with their row keys.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _q_key(q: float) -> str:
    return "p" + format(q * 100.0, "g")


def bucket_quantiles(
    snap: Mapping, qs: Sequence[float] = DEFAULT_QUANTILES
) -> Optional[Dict[str, float]]:
    """Quantiles of a histogram snapshot via in-bucket linear interpolation.

    Works on the plain-dict snapshots produced by
    :meth:`repro.obs.metrics.Histogram.snapshot`: for quantile ``q`` the
    target rank ``q * count`` is located in the cumulative bucket
    counts, then interpolated linearly between the containing bucket's
    edges.  The first bucket's lower edge and the overflow bucket's
    upper edge are taken from the recorded ``min``/``max`` sidecars, and
    results are clamped to ``[min, max]`` — so estimates never leave the
    observed range and are monotone in ``q`` (p50 <= p95 <= p99).

    Returns ``None`` for an empty histogram (no observations).
    """
    count = int(snap.get("count", 0) or 0)
    if count <= 0:
        return None
    buckets = [float(b) for b in snap.get("buckets", [])]
    counts = [int(c) for c in snap.get("counts", [])]
    lo_raw = snap.get("min")
    hi_raw = snap.get("max")
    lo = float(lo_raw) if lo_raw is not None else (buckets[0] if buckets else 0.0)
    hi = float(hi_raw) if hi_raw is not None else (buckets[-1] if buckets else lo)
    result: Dict[str, float] = {}
    for q in qs:
        rank = min(max(float(q), 0.0), 1.0) * count
        cum = 0
        value = hi
        for i, c in enumerate(counts):
            if c <= 0:
                continue
            prev = cum
            cum += c
            if cum >= rank:
                lower = lo if i == 0 else buckets[i - 1]
                upper = hi if i >= len(buckets) else buckets[i]
                frac = (rank - prev) / c if c else 0.0
                value = lower + (upper - lower) * frac
                break
        result[_q_key(q)] = min(max(value, lo), hi)
    return result


class RingBuffer:
    """Fixed-capacity append-only buffer; oldest entries are overwritten.

    Bounds the sampler's memory no matter how long a run is: a campaign
    sampled at 2 Hz for hours still holds only ``capacity`` rows in
    memory (the JSONL spill keeps the full series on disk).  ``dropped``
    counts overwritten entries.
    """

    __slots__ = ("_slots", "_next", "appended")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self._slots: List[Optional[Dict]] = [None] * capacity
        self._next = 0
        self.appended = 0

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def dropped(self) -> int:
        return max(0, self.appended - len(self._slots))

    def __len__(self) -> int:
        return min(self.appended, len(self._slots))

    def append(self, item: Dict) -> bool:
        """Store ``item``; returns True when an old entry was overwritten."""
        overwrote = self._slots[self._next] is not None
        self._slots[self._next] = item
        self._next = (self._next + 1) % len(self._slots)
        self.appended += 1
        return overwrote

    def items(self) -> List[Dict]:
        """Buffered rows, oldest first."""
        ordered = self._slots[self._next :] + self._slots[: self._next]
        return [item for item in ordered if item is not None]


class SampleClock:
    """The sampler's time source: monotonic ``now`` + interruptible wait.

    Tests substitute a scripted clock (fixed tick times, non-blocking
    waits) so sampled rows — including ring wraparound — are
    deterministic; the default reads ``time.perf_counter`` and waits on
    an event that :meth:`wake` sets to stop the loop promptly.
    """

    def __init__(self) -> None:
        self._stop = threading.Event()

    def now(self) -> float:
        return time.perf_counter()

    def wait(self, timeout: float) -> bool:
        """Sleep up to ``timeout``; True means "stop sampling"."""
        return self._stop.wait(timeout)

    def wake(self) -> None:
        self._stop.set()


class TimeSeriesSampler:
    """Samples a metrics snapshot into a ring buffer + JSONL spill.

    Parameters
    ----------
    interval_s:
        Seconds between samples (``1 / obs_sample_hz``).
    source:
        Zero-arg callable returning a metrics snapshot dict
        (``{"counters": ..., "gauges": ..., "histograms": ...}``);
        the obs facade wires in :func:`repro.obs.snapshot`.
    resources / stacks:
        Optional :class:`repro.obs.sampler.ResourceSampler` /
        :class:`repro.obs.sampler.StackSampler` ticked alongside the
        metrics so one thread produces the whole telemetry row.
    directory:
        Spill directory for ``series-<pid>.jsonl`` (``None`` = memory
        only).
    """

    def __init__(
        self,
        interval_s: float,
        source: Optional[Callable[[], Mapping]] = None,
        resources: Optional[object] = None,
        stacks: Optional[object] = None,
        directory: Optional[Path] = None,
        capacity: int = 720,
        clock: Optional[SampleClock] = None,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.source = source or (lambda: {})
        self.resources = resources
        self.stacks = stacks
        self.directory = Path(directory) if directory is not None else None
        self.ring = RingBuffer(capacity)
        self.clock = clock or SampleClock()
        self.quantiles = tuple(quantiles)
        self.pid = os.getpid()
        self._labels: List[str] = []
        self._lock = threading.Lock()
        self._pending: List[Dict] = []
        self._thread: Optional[threading.Thread] = None
        self._spilled_rows = 0

    # ------------------------------------------------------------------
    # window labels (which instrumented region(s) the row was taken in)

    def push_label(self, label: str) -> None:
        with self._lock:
            self._labels.append(label)

    def pop_label(self, label: str) -> None:
        with self._lock:
            if label in self._labels:
                self._labels.remove(label)

    # ------------------------------------------------------------------
    def sample_once(self, t: Optional[float] = None) -> Dict:
        """Take one telemetry row (the thread loop calls this per tick)."""
        snap = self.source() or {}
        with self._lock:
            window = ";".join(self._labels)
        row: Dict = {
            "t": float(t) if t is not None else self.clock.now(),
            "pid": self.pid,
            "window": window,
            "counters": dict(snap.get("counters", {})),
            "gauges": dict(snap.get("gauges", {})),
            "quantiles": {
                name: bucket_quantiles(hist, self.quantiles)
                for name, hist in snap.get("histograms", {}).items()
            },
        }
        if self.resources is not None:
            row.update(self.resources.sample())
        dropped = self.ring.append(row)
        with self._lock:
            self._pending.append(row)
        from repro import obs  # function-scope: repro.obs imports this module

        obs.counter("obs.sample.ticks")
        if dropped:
            obs.counter("obs.sample.drops")
        return row

    # ------------------------------------------------------------------
    def spill_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{SERIES_FILE_PREFIX}{self.pid}.jsonl"

    def flush(self) -> Optional[Path]:
        """Append pending rows to the spill file; rewrite the flame file."""
        with self._lock:
            pending, self._pending = self._pending, []
        path = self.spill_path()
        if path is not None and pending:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                with path.open("a", encoding="utf-8") as fh:
                    for row in pending:
                        fh.write(json.dumps(row, default=str) + "\n")
                self._spilled_rows += len(pending)
            except OSError:
                from repro import obs

                obs.log_warning("obs.sample.spill_error", path=str(path))
        if self.stacks is not None and self.directory is not None:
            self.stacks.write_dir(self.directory)
        return path

    @property
    def spilled_rows(self) -> int:
        return self._spilled_rows

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        if self.stacks is not None:
            self.stacks.skip_thread(threading.get_ident())
        while not self.clock.wait(self.interval_s):
            self.sample_once()
            if self.stacks is not None:
                self.stacks.sample_once()
            self.flush()

    def start(self) -> None:
        """Start the daemon sampling thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-obs-sampler-{self.pid}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop the thread, take a final row, and flush everything."""
        self.clock.wake()
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        # final row so even sub-interval windows leave one sample behind
        self.sample_once()
        if self.stacks is not None:
            self.stacks.sample_once()
        self.flush()


# ---------------------------------------------------------------------------
# cross-process merge


def read_series(directory: Path) -> List[Dict]:
    """Every telemetry row spilled under ``directory``, time-sorted.

    Mirrors the tracer's spill protocol: one ``series-<pid>.jsonl`` per
    process, corrupt lines (a worker killed mid-write) skipped, rows
    sorted by ``(t, pid)`` so merged output is deterministic.
    """
    directory = Path(directory)
    rows: List[Dict] = []
    if not directory.exists():
        return rows
    for path in sorted(directory.glob(f"{SERIES_FILE_PREFIX}*.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and "t" in row:
                rows.append(row)
    rows.sort(key=lambda r: (r.get("t", 0.0), r.get("pid", 0)))
    return rows
