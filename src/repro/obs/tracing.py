"""Wall-time span tracing with multiprocessing-aware spill files.

A span is one timed region (``with obs.span("train.epoch", epoch=3):``)
tagged with pid/tid so spans from :mod:`repro.parallel` workers merge
into the parent's timeline.  Completed spans buffer in memory and are
appended to ``spans-<pid>.jsonl`` in the configured directory whenever
the stack unwinds to depth zero (or on an explicit flush) — workers in
a ``multiprocessing.Pool`` are terminated without running ``atexit``
hooks, so flushing eagerly at top-level-span completion is what makes
their spans survive.

Timestamps come from :func:`time.perf_counter`, which on Linux reads
the system-wide monotonic clock, so parent and forked-worker spans
share a comparable time base.  Export either as raw JSONL (one span
dict per line) or as the Chrome ``chrome://tracing`` / Perfetto
trace-event format via :func:`chrome_trace`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

SPAN_FILE_PREFIX = "spans-"


class _NullSpan:
    """Shared no-op span returned whenever tracing is disabled.

    A single module-level instance: entering, exiting, and annotating it
    allocate nothing, which is what keeps instrumented hot paths free
    when observability is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    @property
    def duration_s(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; usable only as a context manager."""

    __slots__ = ("name", "attrs", "pid", "tid", "t0", "duration_s", "depth", "parent", "_tracer", "_record")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict, record: bool = True) -> None:
        self.name = name
        self.attrs = attrs
        self.pid = os.getpid()
        self.tid = threading.get_native_id()
        self.t0 = 0.0
        self.duration_s = 0.0
        self.depth = 0
        self.parent: Optional[str] = None
        self._tracer = tracer
        self._record = record

    def set(self, **attrs) -> "Span":
        """Attach attributes mid-span (e.g. losses known only at the end)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        if self._record:
            stack = self._tracer._stack_for_thread()
            self.depth = len(stack)
            self.parent = stack[-1].name if stack else None
            stack.append(self)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration_s = time.perf_counter() - self.t0
        if self._record:
            stack = self._tracer._stack_for_thread()
            if stack and stack[-1] is self:
                stack.pop()
            self._tracer._append(self)
            if not stack:
                self._tracer.flush()
        return False


class SpanTracer:
    """Buffers completed spans and spills them to per-pid JSONL files."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory: Optional[Path] = Path(directory) if directory else None
        self._lock = threading.Lock()
        self._buffer: List[Dict] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack_for_thread(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: Optional[Dict] = None, record: bool = True) -> Span:
        """New span; ``record=False`` gives a pure stopwatch (no buffering)."""
        return Span(self, name, dict(attrs or {}), record=record)

    def _append(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(
                {
                    "name": span.name,
                    "ts": span.t0,
                    "dur": span.duration_s,
                    "pid": span.pid,
                    "tid": span.tid,
                    "depth": span.depth,
                    "parent": span.parent,
                    "attrs": span.attrs,
                }
            )

    # ------------------------------------------------------------------
    def spill_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{SPAN_FILE_PREFIX}{os.getpid()}.jsonl"

    def flush(self) -> Optional[Path]:
        """Append the buffered spans to this process's spill file."""
        with self._lock:
            if not self._buffer:
                return self.spill_path()
            pending, self._buffer = self._buffer, []
        path = self.spill_path()
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            for record in pending:
                fh.write(json.dumps(record, default=str) + "\n")
        return path

    def reset(self) -> None:
        """Drop buffered spans and any open stack (used after fork/tests)."""
        with self._lock:
            self._buffer = []
        self._local = threading.local()


# ---------------------------------------------------------------------------
# export helpers


def read_spans(directory: Path) -> List[Dict]:
    """Load every span from the ``spans-*.jsonl`` spill files in a directory.

    Corrupt lines (e.g. a worker killed mid-write) are skipped; spans
    are returned sorted by start time so exports are deterministic.
    """
    directory = Path(directory)
    spans: List[Dict] = []
    if not directory.exists():
        return spans
    for path in sorted(directory.glob(f"{SPAN_FILE_PREFIX}*.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "name" in record and "ts" in record:
                spans.append(record)
    spans.sort(key=lambda s: (s.get("ts", 0.0), s.get("pid", 0)))
    return spans


def chrome_trace(spans: Sequence[Dict]) -> Dict:
    """Convert span dicts to the Chrome trace-event JSON format.

    Emits complete ("X") events with microsecond timestamps rebased to
    the earliest span, so the file loads directly in
    ``chrome://tracing`` / Perfetto with pid/tid lanes per process and
    thread.
    """
    events: List[Dict] = []
    base = min((s["ts"] for s in spans), default=0.0)
    for s in spans:
        events.append(
            {
                "name": s["name"],
                "cat": s["name"].split(".", 1)[0],
                "ph": "X",
                "ts": (s["ts"] - base) * 1e6,
                "dur": max(s.get("dur", 0.0), 0.0) * 1e6,
                "pid": s.get("pid", 0),
                "tid": s.get("tid", 0),
                "args": s.get("attrs", {}),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
