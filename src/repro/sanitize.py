"""repro.sanitize — runtime numeric sanitizer for backend primitives.

The static rules in :mod:`repro.lintkit` keep the *code* honest; this
module keeps the *numbers* honest.  When the ``sanitize`` runtime flag
is armed (``REPRO_SANITIZE=1`` / ``repro5g --sanitize`` /
``runtime.configure(sanitize="1")``), :mod:`repro.backends` resolves
the active backend through :func:`wrap_backend`, which replaces every
dispatchable primitive (see :data:`repro.backends.PRIMITIVES`) with a
guarded twin:

* **NaN/Inf/overflow guard** — every ndarray a primitive returns is
  checked with ``np.isfinite``; a single non-finite element aborts the
  run with the offending primitive named, instead of letting poisoned
  state propagate silently through thousands of steps.
* **Autograd-graph integrity** — every backward primitive receives the
  forward's saved inputs as explicit arguments (that is the kernel
  layer's calling convention), so each gradient it returns is checked
  for shape *and* dtype against the forward input it differentiates.
  A grad that silently broadcast to the wrong shape, or upcast a
  float32 inference path to float64, trips the guard at the primitive
  that produced it.
* **Grad-seed guard** — the incoming gradient arguments of a backward
  (``g`` / ``gh`` / ``gc`` / ``g_out`` …) are checked too, so a NaN
  born in the loss is caught at the first backward it enters.

Every wrapped call increments the ``sanitize.checks`` obs counter;
violations publish ``sanitize.violation.nonfinite`` or
``sanitize.violation.backward_mismatch`` *before* raising
:class:`SanitizerError`, so the run manifest of a crashed sanitized
run still records what tripped.  CI runs the fast workload with
``REPRO_SANITIZE=1`` and asserts the violation counters stay absent.

The wrapper is applied once per flag change at the backend-resolution
seam — hot paths pay zero overhead while the flag is off, and the
wrapped backend keeps the inner backend's ``name`` so manifests stamp
the real compute backend, not the wrapper.
"""

from __future__ import annotations

import functools
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from . import obs

__all__ = ["SanitizerError", "wrap_backend"]


class SanitizerError(RuntimeError):
    """A numeric invariant was violated inside a backend primitive.

    ``primitive`` names the offending primitive (e.g.
    ``"lstm_seq_backward"``), ``backend`` the resolved compute backend
    it ran on — both also appear in ``args[0]`` so a bare traceback is
    self-explanatory.
    """

    def __init__(self, message: str, primitive: str, backend: str) -> None:
        super().__init__(message)
        self.primitive = primitive
        self.backend = backend


#: positional argument names per backward primitive, mirroring the
#: reference signatures in :mod:`repro.backends.numpy_backend`.  The
#: kernel layer passes the forward's saved inputs positionally, so
#: binding by these names recovers ``grad key -> forward input`` pairs
#: without any cross-call state.
_BACKWARD_ARGS: Dict[str, Tuple[str, ...]] = {
    "affine_backward": ("g", "x", "weight", "h", "weight_h", "needs"),
    "lstm_cell_backward_h": ("gh", "saved"),
    "lstm_cell_backward_c": (
        "gc",
        "d_o",
        "saved",
        "x",
        "h_prev",
        "c_prev",
        "weight_ih",
        "weight_hh",
        "needs",
    ),
    "gru_cell_backward": (
        "gh",
        "saved",
        "x",
        "h_prev",
        "weight_ih",
        "weight_hh",
        "weight_in",
        "weight_hn",
        "needs",
    ),
    "lstm_seq_backward": ("g_out", "dc_T", "saved", "x", "h0", "weight_ih", "weight_hh", "needs"),
    "gru_seq_backward": (
        "g_out",
        "saved",
        "x",
        "weight_ih",
        "weight_hh",
        "weight_in",
        "weight_hn",
        "needs",
    ),
    "lstm_decoder_backward": (
        "g_out",
        "saved",
        "y0",
        "h0",
        "weight_ih",
        "weight_hh",
        "weight_out",
        "needs",
    ),
}

#: argument names that carry *incoming* gradients into a backward —
#: checked for finiteness so loss-born NaNs are caught at entry.
_GRAD_SEED_ARGS = frozenset({"g", "gh", "gc", "g_out", "dc_T", "d_o"})

#: bound-argument names that are bookkeeping, never gradient targets.
_NON_TENSOR_ARGS = frozenset({"saved", "needs"})


def _all_finite(value: np.ndarray) -> bool:
    if not np.issubdtype(value.dtype, np.floating):
        return True
    return bool(np.isfinite(value).all())


def _violation(kind: str, message: str, primitive: str, backend: str) -> SanitizerError:
    # publish before raising so a crashed sanitized run still records
    # the violation in its metrics/manifest output
    if obs.metrics_enabled():
        obs.counter(f"sanitize.violation.{kind}")
    return SanitizerError(f"sanitize[{backend}.{primitive}]: {message}", primitive, backend)


def _check_output_finite(result: object, primitive: str, backend: str, label: str) -> None:
    """Finite-check every ndarray in ``result`` (tuples recursed, dicts
    skipped — backends stash opaque arena-backed scratch in ``saved``)."""
    if isinstance(result, np.ndarray):
        if not _all_finite(result):
            raise _violation(
                "nonfinite",
                f"non-finite values in {label}",
                primitive,
                backend,
            )
    elif isinstance(result, tuple):
        for index, element in enumerate(result):
            _check_output_finite(element, primitive, backend, f"{label}[{index}]")


def _check_grads(
    grads: Mapping[str, np.ndarray],
    bound: Mapping[str, object],
    primitive: str,
    backend: str,
) -> None:
    """Each returned gradient must be finite and, when the matching
    forward input was passed to the backward, match its shape/dtype."""
    for key, grad in grads.items():
        if not isinstance(grad, np.ndarray):
            continue
        if not _all_finite(grad):
            raise _violation(
                "nonfinite",
                f"non-finite values in grad {key!r}",
                primitive,
                backend,
            )
        forward_input = bound.get(key)
        if key in _NON_TENSOR_ARGS or not isinstance(forward_input, np.ndarray):
            continue
        if grad.shape != forward_input.shape or grad.dtype != forward_input.dtype:
            raise _violation(
                "backward_mismatch",
                f"grad {key!r} is {grad.shape}/{grad.dtype} but the forward input "
                f"was {forward_input.shape}/{forward_input.dtype}",
                primitive,
                backend,
            )


def _bind(spec: Tuple[str, ...], args: Tuple, kwargs: Mapping[str, object]) -> Dict[str, object]:
    bound: Dict[str, object] = dict(zip(spec, args))
    bound.update(kwargs)
    return bound


def _wrap_forward(primitive: str, fn, backend: str):
    @functools.wraps(fn)
    def guarded(*args: object, **kwargs: object) -> object:
        result = fn(*args, **kwargs)
        if obs.metrics_enabled():
            obs.counter("sanitize.checks")
        _check_output_finite(result, primitive, backend, "output")
        return result

    return guarded


def _wrap_backward(primitive: str, fn, backend: str):
    spec = _BACKWARD_ARGS[primitive]

    @functools.wraps(fn)
    def guarded(*args: object, **kwargs: object) -> object:
        if obs.metrics_enabled():
            obs.counter("sanitize.checks")
        bound = _bind(spec, args, kwargs)
        for name in _GRAD_SEED_ARGS:
            seed = bound.get(name)
            if isinstance(seed, np.ndarray) and not _all_finite(seed):
                raise _violation(
                    "nonfinite",
                    f"non-finite values in incoming grad {name!r}",
                    primitive,
                    backend,
                )
        result = fn(*args, **kwargs)
        if isinstance(result, Mapping):
            _check_grads(result, bound, primitive, backend)
        else:
            _check_output_finite(result, primitive, backend, "output")
        return result

    return guarded


class SanitizedBackend:
    """A backend twin whose primitives are wrapped with numeric guards.

    Duck-types :class:`repro.backends.Backend`: one attribute per
    primitive plus ``name`` (kept equal to the inner backend's so
    manifests record the real compute backend).  ``inner`` exposes the
    unwrapped backend for tests and debugging.
    """

    def __init__(self, inner, primitives: Tuple[str, ...]) -> None:
        self.inner = inner
        self.name = inner.name
        for primitive in primitives:
            fn: Optional[object] = getattr(inner, primitive, None)
            if fn is None:
                continue
            if primitive in _BACKWARD_ARGS:
                wrapped = _wrap_backward(primitive, fn, inner.name)
            else:
                wrapped = _wrap_forward(primitive, fn, inner.name)
            setattr(self, primitive, wrapped)

    def __repr__(self) -> str:
        return f"SanitizedBackend({self.name!r})"


def wrap_backend(backend, primitives: Tuple[str, ...]) -> SanitizedBackend:
    """Wrap ``backend`` so every primitive in ``primitives`` is guarded.

    ``primitives`` is passed in (rather than imported) because
    :mod:`repro.backends` calls this lazily from its resolution seam
    while that package is still initializing.
    """
    if isinstance(backend, SanitizedBackend):
        return backend
    return SanitizedBackend(backend, primitives)
