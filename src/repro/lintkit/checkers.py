"""The repo-specific per-file invariant checkers (rules RL001–RL007).

The whole-program rules (RL008–RL012) live in
:mod:`repro.lintkit.project_rules` and run over linked module facts
rather than a single AST.

Each checker encodes one contract the reproduction depends on; DESIGN
§6d explains why every one of them exists.  In brief:

* **RL001** — bit-identical kernel oracles need seeded ``Generator``
  randomness; legacy global-state ``np.random.*`` breaks replay.
* **RL002** — :mod:`repro.runtime` keeps dispatch-flag mirrors in sync
  by *assignment*; importing a flag's value freezes it at import time.
* **RL003** — one hashing recipe (:func:`repro.runtime.canonical_hash`)
  keeps cache keys, manifests and run dirs mutually consistent.
* **RL004** — a swallowed exception must at least publish an obs
  counter; silent ``except Exception: pass`` hides corrupted state.
* **RL005** — the obs namespace is a checked-in catalog; typo'd metric
  names fail lint instead of silently forking a time series.
* **RL006** — float/ndarray ``==`` is flaky across kernel paths; use
  ``np.allclose`` (or ``# lint: bit-identical`` in oracle tests).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional

from . import catalog as _catalog
from .base import Checker, Diagnostic, FileContext, dotted_name, register

# ---------------------------------------------------------------------------
# RL001 — determinism


#: numpy legacy global-state RNG entry points (the module-level aliases
#: around the shared global ``RandomState``); any of these makes a run
#: depend on hidden process-wide state.
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "beta",
        "binomial",
        "chisquare",
        "exponential",
        "gamma",
        "geometric",
        "gumbel",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "normal",
        "pareto",
        "poisson",
        "power",
        "rayleigh",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
        "RandomState",
    }
)


@register
class DeterminismChecker(Checker):
    code = "RL001"
    name = "determinism"
    summary = (
        "no legacy np.random.* global-state calls and no argless "
        "default_rng(); Generators must be seeded or threaded"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] in _LEGACY_NP_RANDOM
                ):
                    yield self.diag(
                        ctx,
                        node,
                        f"legacy global-state RNG call {dotted}(); "
                        "thread a seeded np.random.Generator instead",
                    )
                elif parts[-1] == "default_rng" and not node.args and not node.keywords:
                    yield self.diag(
                        ctx,
                        node,
                        "default_rng() without a seed is entropy-seeded and "
                        "unreproducible; pass an explicit seed or thread a Generator",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in ("numpy.random", "np.random"):
                for alias in node.names:
                    if alias.name in _LEGACY_NP_RANDOM:
                        yield self.diag(
                            ctx,
                            node,
                            f"importing legacy RNG {alias.name!r} from numpy.random; "
                            "use a seeded np.random.Generator",
                        )


# ---------------------------------------------------------------------------
# RL002 — runtime-flag discipline


#: mirror module → the names whose *values* must never be imported
#: (the canonical flag store plus every registered write-through mirror
#: global; see repro.runtime.register_mirror).
_MIRROR_MODULES: Dict[str, FrozenSet[str]] = {
    "repro.runtime": frozenset({"_FLAGS"}),
    "repro.nn.modules": frozenset({"_FUSED_KERNELS"}),
    "repro.core.prism5g": frozenset({"_BATCHED_CC"}),
    "repro.ran.simulator": frozenset({"_VECTORIZED_RADIO"}),
    "repro.backends": frozenset({"_ACTIVE", "_REQUESTED", "_SANITIZE"}),
    "repro.backends.arena": frozenset({"_ARENA_ENABLED"}),
    "repro.obs": frozenset({"_SAMPLE_HZ"}),
}

#: flag names are additionally rejected as import targets from
#: repro.runtime itself, so `from repro.runtime import fused_kernels`
#: style code fails even if such an attribute is added later.  (The
#: mirror modules legitimately export same-named *callables* — e.g.
#: ``repro.nn.modules.fused_kernels`` is a context manager — so only
#: their private mirror globals are forbidden there.)
_FLAG_NAMES = frozenset(
    {"arena", "backend", "fused_kernels", "batched_cc", "obs_sample_hz", "sanitize", "vectorized_radio"}
)


def _resolve_relative(ctx: FileContext, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module for an ImportFrom (handles relative levels)."""
    if node.level == 0:
        return node.module
    base = ctx.package.split(".") if ctx.package else []
    drop = node.level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


@register
class FlagDisciplineChecker(Checker):
    code = "RL002"
    name = "flag-discipline"
    summary = (
        "never import dispatch-flag values from repro.runtime or its "
        "mirror modules; read them as module attributes"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            module = _resolve_relative(ctx, node)
            if module not in _MIRROR_MODULES or module == ctx.module:
                continue
            forbidden = _MIRROR_MODULES[module]
            if module == "repro.runtime":
                forbidden = forbidden | _FLAG_NAMES
            for alias in node.names:
                if alias.name == "*":
                    yield self.diag(
                        ctx,
                        node,
                        f"star-import from mirror module {module}; it can capture "
                        "dispatch-flag values that runtime.set_flag cannot update",
                    )
                elif alias.name in forbidden:
                    yield self.diag(
                        ctx,
                        node,
                        f"value-import of dispatch flag {alias.name!r} from {module}; "
                        "import the module and read the attribute so "
                        "runtime.configure write-through stays visible",
                    )


# ---------------------------------------------------------------------------
# RL003 — single-hash contract


#: the one module allowed to touch hashlib (owns canonical_hash)
_HASH_OWNER = "repro.runtime"


@register
class SingleHashChecker(Checker):
    code = "RL003"
    name = "single-hash"
    summary = "hashlib may only be used inside repro.runtime (canonical_hash)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module == _HASH_OWNER:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "hashlib" or alias.name.startswith("hashlib."):
                        yield self.diag(
                            ctx,
                            node,
                            "direct hashlib use outside repro.runtime; call "
                            "runtime.canonical_hash so every cache key, manifest "
                            "and run dir shares one hash recipe",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module == "hashlib":
                yield self.diag(
                    ctx,
                    node,
                    "direct hashlib import outside repro.runtime; call "
                    "runtime.canonical_hash instead",
                )


# ---------------------------------------------------------------------------
# RL004 — exception hygiene


_BROAD_EXC_NAMES = ("Exception", "BaseException")

#: calls that make a broad handler observable (it publishes the failure)
_OBS_PUBLISHERS = frozenset(
    {
        "obs.counter",
        "obs.log_warning",
        "obs.gauge",
        "obs.histogram",
        "repro.obs.counter",
        "repro.obs.log_warning",
    }
)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for expr in exprs:
        dotted = dotted_name(expr)
        if dotted is not None and dotted.split(".")[-1] in _BROAD_EXC_NAMES:
            return True
    return False


def _handler_is_accounted(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in _OBS_PUBLISHERS:
                return True
    return False


@register
class ExceptionHygieneChecker(Checker):
    code = "RL004"
    name = "exception-hygiene"
    summary = (
        "bare/broad except clauses must re-raise or publish an obs "
        "counter (obs.counter / obs.log_warning)"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node) and not _handler_is_accounted(node):
                caught = "bare except" if node.type is None else "broad except"
                yield self.diag(
                    ctx,
                    node,
                    f"{caught} that neither re-raises nor publishes an obs "
                    "counter; narrow the exception type or call "
                    "obs.log_warning so the swallow is observable",
                )


# ---------------------------------------------------------------------------
# RL005 — obs-name catalog


@register
class ObsCatalogChecker(Checker):
    code = "RL005"
    name = "obs-catalog"
    summary = (
        "obs metric/span names must be dotted lowercase and recorded in "
        "lintkit/obs_catalog.json (--fix-catalog regenerates it)"
    )

    def __init__(self) -> None:
        self.sites: List[_catalog.ObsNameSite] = []

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for site in _catalog.harvest_module(ctx.tree, ctx.module, ctx.display_path):
            self.sites.append(site)
            if not _catalog.valid_obs_name(site.name):
                yield Diagnostic(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    message=(
                        f"obs name {site.name!r} is not dotted-lowercase "
                        "(expected e.g. 'cache.bytes_read'; see DESIGN §6b)"
                    ),
                )

    def drift_diagnostics(self, catalog_path: Path, check_stale: bool) -> Iterator[Diagnostic]:
        """Compare the accumulated harvest against the checked-in catalog."""
        try:
            known = _catalog.load_catalog(catalog_path)
        except ValueError as exc:
            yield Diagnostic(path=str(catalog_path), line=1, col=1, code=self.code, message=str(exc))
            return
        for site, message in _catalog.diff_catalog(self.sites, known, check_stale=check_stale):
            if site is None:
                yield Diagnostic(path=str(catalog_path), line=1, col=1, code=self.code, message=message)
            else:
                yield Diagnostic(
                    path=site.path, line=site.line, col=site.col, code=self.code, message=message
                )


# ---------------------------------------------------------------------------
# RL006 — float equality


#: method names that (on this codebase) always produce floats/ndarrays
_FLOATISH_METHODS = frozenset({"std", "mean", "var", "ptp"})


def _floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None:
            return False
        last = dotted.split(".")[-1]
        return dotted == "float" or last in _FLOATISH_METHODS
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    return False


@register
class FloatEqualityChecker(Checker):
    code = "RL006"
    name = "float-equality"
    summary = (
        "no ==/!= against float expressions; use np.allclose/np.isclose "
        "or an order comparison (# lint: bit-identical opts out)"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _floatish(operands[i]) or _floatish(operands[i + 1]):
                    yield self.diag(
                        ctx,
                        node,
                        "float equality comparison; use np.allclose/np.isclose, "
                        "an order comparison, or mark the line "
                        "`# lint: bit-identical` for oracle-equivalence checks",
                    )
                    break


# ---------------------------------------------------------------------------
# RL007 — backend dispatch discipline


#: modules holding the fused-primitive *dispatch* layer: autograd
#: bookkeeping only; array math belongs in a registered compute backend
#: (repro.backends.*), where the backend-equivalence suites can see it.
_KERNEL_DISPATCH_MODULES = frozenset({"repro.nn.kernels"})

#: np.* calls that allocate, wrap, or introspect without computing —
#: legitimate in the dispatch layer (gradient seeds, dtype plumbing).
_NP_NONCOMPUTE = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "broadcast_to",
        "can_cast",
        "dtype",
        "empty",
        "empty_like",
        "ones",
        "ones_like",
        "result_type",
        "shape",
        "zeros",
        "zeros_like",
    }
)


@register
class BackendDisciplineChecker(Checker):
    code = "RL007"
    name = "backend-discipline"
    summary = (
        "fused-kernel dispatch modules must not call np.* compute ops; "
        "array math belongs in a registered backend "
        "(# lint: backend-impl opts out)"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module not in _KERNEL_DISPATCH_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] not in ("np", "numpy") or len(parts) < 2:
                continue
            if parts[-1] in _NP_NONCOMPUTE:
                continue
            yield self.diag(
                ctx,
                node,
                f"np compute call {dotted}() in a kernel dispatch module; "
                "move the math into a repro.backends backend (or mark the "
                "line `# lint: backend-impl` if it is backend-neutral)",
            )
