"""Obs-name catalog: static harvest of metric/span names (rule RL005).

Every string literal passed to ``obs.counter`` / ``obs.gauge`` /
``obs.histogram`` / ``obs.span`` / ``obs.log_warning`` is harvested
from the AST and checked against the checked-in catalog
(``obs_catalog.json`` next to this module).  The catalog is therefore
both a CI gate — a typo'd metric name is a new, uncatalogued name and
fails the lint — and the authoritative index of the observability
namespace (DESIGN §6b documents the taxonomy; the catalog enumerates
it).

Dynamic names are handled two ways:

* f-strings with a literal dotted prefix (``f"evaluate.rmse.{name}"``)
  harvest as a wildcard entry (``evaluate.rmse.*``);
* names published through a variable (the simulator tallies counts in
  a dict and bulk-publishes) cannot be harvested statically — they are
  pinned in the catalog's ``manual`` section, which ``--fix-catalog``
  preserves verbatim.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

#: obs entry-point → catalog kind
OBS_KINDS = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "span": "span",
    "log_warning": "warning",
}

#: receivers whose attribute calls are obs publishers (``obs.counter``)
_OBS_RECEIVERS = ("obs", "repro.obs")

CATALOG_SCHEMA = "repro-obs-catalog-v1"

_SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def default_catalog_path() -> Path:
    return Path(__file__).resolve().parent / "obs_catalog.json"


@dataclass(frozen=True)
class ObsNameSite:
    """One harvested obs name: where it appears and as what."""

    name: str
    kind: str
    module: str
    path: str
    line: int
    col: int
    dynamic: bool  # True when the name is a wildcard from an f-string


def valid_obs_name(name: str) -> bool:
    """Dotted lowercase (``cache.bytes_read``); ``*`` only as last segment."""
    segments = name.split(".")
    if len(segments) < 2:
        return False
    for i, segment in enumerate(segments):
        if segment == "*" and i == len(segments) - 1:
            continue
        if not _SEGMENT_RE.match(segment):
            return False
    return True


def _literal_names(arg: ast.expr) -> Iterator[Tuple[str, bool]]:
    """Expand the name argument into ``(name, dynamic)`` pairs.

    Handles plain literals, conditional expressions over literals, and
    f-strings (literal prefix + ``*``).  Fully dynamic names (a bare
    variable) yield nothing — those are covered by the catalog's
    ``manual`` section.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        yield arg.value, False
    elif isinstance(arg, ast.IfExp):
        yield from _literal_names(arg.body)
        yield from _literal_names(arg.orelse)
    elif isinstance(arg, ast.JoinedStr):
        prefix = ""
        for part in arg.values:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                break
        if prefix:
            yield prefix.rstrip(".") + ".*", True


def harvest_module(tree: ast.AST, module: str, path: str) -> List[ObsNameSite]:
    """All statically-visible obs names published by one module."""
    sites: List[ObsNameSite] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        kind = OBS_KINDS.get(node.func.attr)
        if kind is None:
            continue
        receiver = node.func.value
        parts: List[str] = []
        while isinstance(receiver, ast.Attribute):
            parts.append(receiver.attr)
            receiver = receiver.value
        if isinstance(receiver, ast.Name):
            parts.append(receiver.id)
        dotted = ".".join(reversed(parts))
        if dotted not in _OBS_RECEIVERS:
            continue
        if not node.args:
            continue
        for name, dynamic in _literal_names(node.args[0]):
            sites.append(
                ObsNameSite(
                    name=name,
                    kind=kind,
                    module=module,
                    path=path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    dynamic=dynamic,
                )
            )
    return sites


def aggregate(sites: List[ObsNameSite]) -> Dict[str, Dict[str, List[str]]]:
    """Collapse sites to the catalog shape: name → sorted kinds/modules."""
    merged: Dict[str, Dict[str, set]] = {}
    for site in sites:
        entry = merged.setdefault(site.name, {"kinds": set(), "modules": set()})
        entry["kinds"].add(site.kind)
        entry["modules"].add(site.module)
    return {
        name: {
            "kinds": sorted(entry["kinds"]),
            "modules": sorted(entry["modules"]),
        }
        for name, entry in sorted(merged.items())
    }


def load_catalog(path: Path) -> Dict[str, Dict[str, Dict[str, List[str]]]]:
    """Read the catalog; a missing file is an empty catalog (lint flags it)."""
    if not path.exists():
        return {"harvested": {}, "manual": {}}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != CATALOG_SCHEMA:
        raise ValueError(f"{path}: not a {CATALOG_SCHEMA} catalog")
    return {
        "harvested": dict(data.get("harvested") or {}),
        "manual": dict(data.get("manual") or {}),
    }


def write_catalog(
    path: Path,
    harvested: Mapping[str, Mapping[str, List[str]]],
    manual: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Path:
    """Rewrite the catalog, regenerating ``harvested``, keeping ``manual``."""
    if manual is None:
        try:
            manual = load_catalog(path)["manual"]
        except ValueError:
            manual = {}
    payload = {
        "schema": CATALOG_SCHEMA,
        "harvested": {name: dict(entry) for name, entry in sorted(harvested.items())},
        "manual": {name: dict(entry) for name, entry in sorted(manual.items())},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return path


def diff_catalog(
    sites: List[ObsNameSite],
    catalog: Mapping[str, Mapping[str, Mapping[str, List[str]]]],
    check_stale: bool = True,
) -> List[Tuple[Optional[ObsNameSite], str]]:
    """Compare a harvest against the catalog.

    Returns ``(site, message)`` pairs; ``site`` is ``None`` for stale
    catalog entries (which have no source position).  ``check_stale``
    is disabled when only a subset of the tree was linted — a partial
    harvest cannot prove a catalog entry dead.
    """
    problems: List[Tuple[Optional[ObsNameSite], str]] = []
    harvested = aggregate(sites)
    known = catalog.get("harvested", {})
    manual = catalog.get("manual", {})
    first_site = {}
    for site in sites:
        first_site.setdefault(site.name, site)
    for name, entry in harvested.items():
        site = first_site[name]
        if name not in known:
            problems.append(
                (
                    site,
                    f"obs name {name!r} ({'/'.join(entry['kinds'])}) is not in the catalog; "
                    "run `repro5g lint --fix-catalog` and commit obs_catalog.json",
                )
            )
        elif dict(known[name]) != entry:
            problems.append(
                (
                    site,
                    f"obs name {name!r} drifted from the catalog "
                    f"(catalog: {dict(known[name])}, source: {entry}); "
                    "run `repro5g lint --fix-catalog`",
                )
            )
    if check_stale:
        for name in known:
            if name not in harvested and name not in manual:
                problems.append(
                    (
                        None,
                        f"stale catalog entry {name!r}: no source site publishes it; "
                        "run `repro5g lint --fix-catalog` (or move it to the manual section)",
                    )
                )
    return problems
