"""File walking, checker orchestration and report formatting.

:func:`lint_paths` is the one entry point.  Linting is two-phase:

1. **Per-file** — each module is parsed once; per-file checkers run
   over the shared AST and :func:`~repro.lintkit.project.extract_module_facts`
   distills the module into serializable facts.  Both products are
   memoized in a content-hash cache (:mod:`repro.lintkit.cache`), so an
   unchanged file costs one read and one hash on subsequent runs.
2. **Whole-program** — every module's facts are linked into a
   :class:`~repro.lintkit.project.ProjectContext`; the
   :class:`~repro.lintkit.base.ProjectRule` checkers (RL008–RL012) and
   the cross-file RL005 catalog diff run over that.

The CLI (``repro5g lint`` and ``python -m repro.lintkit``) is a thin
argparse wrapper: ``--format text|json|sarif``, ``--no-cache`` /
``--cache``, and ``--changed-only`` (report only findings in files
``git diff --name-only`` considers modified — the pre-commit mode
``scripts/lint.sh`` uses).
"""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from . import cache as _cache
from . import catalog as _catalog
from . import sarif as _sarif
from .base import (
    Checker,
    Diagnostic,
    FileContext,
    ProjectRule,
    make_checkers,
    parse_suppressions,
    registered_checkers,
)
from .checkers import ObsCatalogChecker
from .project import FACTS_SCHEMA, ModuleFacts, ProjectContext, extract_module_facts

#: directories never descended into while walking lint roots
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-obs", "build", "dist"})

#: report format produced by ``--format=json``
JSON_REPORT_SCHEMA = "repro-lint-report-v1"


def default_root() -> Path:
    """The installed ``repro`` package directory (works from any cwd)."""
    return Path(__file__).resolve().parents[1]


def iter_python_files(roots: Sequence[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for path in sorted(root.rglob("*.py")):
            parts = set(path.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info") for p in path.parts):
                continue
            yield path


def module_name_for(path: Path) -> str:
    """Dotted module name (``repro.ran.ca``) for files under a ``repro`` tree.

    Files outside any ``repro`` package (e.g. test fixture snippets)
    fall back to their stem so rules keyed on module identity
    (RL002/RL003 exemptions) simply never match them.
    """
    resolved = path.resolve()
    parts = list(resolved.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else ""


def build_context(path: Path, source: Optional[str] = None) -> FileContext:
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = module_name_for(path)
    package = module if path.name == "__init__.py" else module.rpartition(".")[0]
    try:
        display = str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        display = str(path)
    return FileContext(
        path=path,
        display_path=display,
        module=module,
        package=package,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def changed_files() -> Optional[Set[Path]]:
    """Absolute paths ``git`` considers modified (staged, unstaged or
    untracked) relative to HEAD; ``None`` when git is unavailable."""

    def _run(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=True, timeout=30
        )
        return proc.stdout

    try:
        top = _run("rev-parse", "--show-toplevel").strip()
        listed = _run("diff", "--name-only", "HEAD") + _run(
            "ls-files", "--others", "--exclude-standard"
        )
    except (OSError, subprocess.SubprocessError):
        return None
    root = Path(top)
    return {(root / line.strip()).resolve() for line in listed.splitlines() if line.strip()}


@dataclass
class LintResult:
    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    #: files whose per-file diagnostics and facts came from the cache
    cache_hits: int = 0
    catalog_written: Optional[Path] = None
    #: manual catalog entries pruned by --fix-catalog (source modules gone)
    catalog_pruned: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def to_json(self) -> str:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        payload = {
            "schema": JSON_REPORT_SCHEMA,
            "files_checked": self.files_checked,
            "cache_hits": self.cache_hits,
            "ok": self.ok,
            "counts": dict(sorted(counts.items())),
            "diagnostics": [d.to_json() for d in sorted(self.diagnostics)],
        }
        return json.dumps(payload, indent=2)

    def to_sarif(self) -> str:
        return json.dumps(_sarif.to_sarif(self.diagnostics), indent=2)

    def to_text(self) -> str:
        lines = [d.format() for d in sorted(self.diagnostics)]
        cached = f", {self.cache_hits} from cache" if self.cache_hits else ""
        tail = (
            f"{len(self.diagnostics)} violation(s) in {self.files_checked} file(s){cached}"
            if self.diagnostics
            else f"ok: {self.files_checked} file(s) clean{cached}"
        )
        return "\n".join([*lines, tail])


def _rebuild_sites(facts: Sequence[ModuleFacts]) -> List[_catalog.ObsNameSite]:
    sites: List[_catalog.ObsNameSite] = []
    for mf in facts:
        for raw in mf.obs_sites:
            sites.append(
                _catalog.ObsNameSite(
                    name=str(raw["name"]),
                    kind=str(raw["kind"]),
                    module=str(raw["module"]),
                    path=str(raw["path"]),
                    line=int(raw["line"]),  # type: ignore[arg-type]
                    col=int(raw["col"]),  # type: ignore[arg-type]
                    dynamic=bool(raw["dynamic"]),
                )
            )
    return sites


def _lint_one_file(
    path: Path,
    file_checkers: Sequence[Checker],
    rule_codes: Sequence[str],
    cache_entries: Dict[str, Dict[str, object]],
    result: LintResult,
) -> Tuple[Optional[ModuleFacts], List[Diagnostic]]:
    """Per-file phase for one path: cached or freshly parsed."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result.diagnostics.append(
            Diagnostic(path=str(path), line=1, col=1, code="RL000", message=f"could not parse file: {exc}")
        )
        return None, []

    cache_id = str(path.resolve())
    try:
        display = str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        display = str(path)
    key = _cache.entry_key(source, display, rule_codes, FACTS_SCHEMA)
    entry = cache_entries.get(cache_id)
    if entry is not None and entry.get("key") == key:
        try:
            facts = ModuleFacts.from_json(entry["facts"])  # type: ignore[arg-type]
            diagnostics = [
                Diagnostic(
                    path=str(d["path"]),
                    line=int(d["line"]),
                    col=int(d["col"]),
                    code=str(d["code"]),
                    message=str(d["message"]),
                )
                for d in entry.get("diags", [])  # type: ignore[union-attr]
            ]
        except (KeyError, TypeError, ValueError):
            pass  # corrupt entry: fall through to a fresh parse
        else:
            result.cache_hits += 1
            result.files_checked += 1
            return facts, diagnostics

    try:
        ctx = build_context(path, source=source)
    except SyntaxError as exc:
        result.diagnostics.append(
            Diagnostic(
                path=str(path),
                line=getattr(exc, "lineno", 1) or 1,
                col=1,
                code="RL000",
                message=f"could not parse file: {exc}",
            )
        )
        return None, []
    result.files_checked += 1
    diagnostics = []
    for checker in file_checkers:
        for diagnostic in checker.check(ctx):
            if not ctx.suppressed(diagnostic.line, diagnostic.code):
                diagnostics.append(diagnostic)
    facts = extract_module_facts(ctx)
    cache_entries[cache_id] = {
        "key": key,
        "diags": [d.to_json() for d in diagnostics],
        "facts": facts.to_json(),
    }
    return facts, diagnostics


def _fix_catalog(
    resolved_catalog: Path,
    catalog_checker: ObsCatalogChecker,
    facts: Sequence[ModuleFacts],
    covering_root: bool,
    result: LintResult,
) -> None:
    """Regenerate the catalog: prune dead manual entries, and keep the
    run red when regeneration is a no-op yet drift was reported."""
    old_text = resolved_catalog.read_text(encoding="utf-8") if resolved_catalog.exists() else None
    drift = list(catalog_checker.drift_diagnostics(resolved_catalog, check_stale=covering_root))
    harvested = _catalog.aggregate(catalog_checker.sites)
    try:
        existing = _catalog.load_catalog(resolved_catalog)
    except ValueError:
        existing = {"harvested": {}, "manual": {}}
    manual = dict(existing["manual"])
    if covering_root:
        linted_modules = {mf.module for mf in facts}
        kept: Dict[str, Dict[str, object]] = {}
        for name, entry in manual.items():
            modules = [str(m) for m in (dict(entry).get("modules") or [])]
            if modules and not any(m in linted_modules for m in modules):
                result.catalog_pruned.append(name)
                continue
            kept[name] = dict(entry)
        manual = kept
    else:
        # a partial harvest cannot prove other files' names (or other
        # modules' sites for a shared name) dead: union per entry
        # instead of clobbering.  Drift this merge cannot fix survives
        # the no-op check below and keeps the exit code red.
        merged: Dict[str, Dict[str, object]] = {
            name: dict(entry) for name, entry in existing["harvested"].items()
        }
        for name, entry in harvested.items():
            if name in merged:
                old = merged[name]
                merged[name] = {
                    "kinds": sorted({*old.get("kinds", []), *entry["kinds"]}),  # type: ignore[misc]
                    "modules": sorted({*old.get("modules", []), *entry["modules"]}),  # type: ignore[misc]
                }
            else:
                merged[name] = dict(entry)
        harvested = merged
    result.catalog_written = _catalog.write_catalog(resolved_catalog, harvested, manual=manual)
    new_text = resolved_catalog.read_text(encoding="utf-8")
    if new_text == old_text and drift:
        # regeneration fixed nothing, so the drift is real (bad names,
        # manual-section conflicts, ...) — surface it and exit nonzero
        result.diagnostics.extend(drift)


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
    catalog_path: Optional[Path] = None,
    catalog_mode: str = "check",
    checkers: Optional[Sequence[Checker]] = None,
    cache_path: Optional[Path] = None,
    changed_only: bool = False,
) -> LintResult:
    """Lint files/directories and return every surviving diagnostic.

    ``catalog_mode`` is ``check`` (diff the RL005 harvest against the
    checked-in catalog), ``fix`` (rewrite the catalog from the harvest)
    or ``off`` (naming checks only — used by fixture tests whose
    harvest would otherwise mark the real catalog stale).

    ``cache_path`` enables the content-hash incremental cache (``None``
    disables it — the library default, so test fixtures never touch a
    shared cache file; the CLI passes the default path unless
    ``--no-cache``).  ``changed_only`` filters the report to files git
    considers modified; the full project is still analyzed so
    whole-program rules see every module.
    """
    roots = [Path(p) for p in paths] if paths else [default_root()]
    if checkers is None:
        checkers = make_checkers(rules)
    file_checkers = [c for c in checkers if not isinstance(c, ProjectRule)]
    project_rules = [c for c in checkers if isinstance(c, ProjectRule)]
    rule_codes = sorted(c.code for c in checkers)

    cache_entries: Dict[str, Dict[str, object]] = {}
    if cache_path is not None and not _cache.caching_disabled():
        cache_entries = _cache.load_cache(cache_path)
    else:
        cache_path = None

    result = LintResult()
    all_facts: List[ModuleFacts] = []
    for path in iter_python_files(roots):
        facts, diagnostics = _lint_one_file(path, file_checkers, rule_codes, cache_entries, result)
        result.diagnostics.extend(diagnostics)
        if facts is not None:
            all_facts.append(facts)

    if cache_path is not None:
        _cache.save_cache(cache_path, cache_entries)

    # -- whole-program phase --------------------------------------------------
    facts_by_path: Dict[str, ModuleFacts] = {mf.display_path: mf for mf in all_facts}
    if project_rules:
        project = ProjectContext(all_facts)
        for rule in project_rules:
            for diagnostic in rule.check_project(project):
                owner = facts_by_path.get(diagnostic.path)
                if owner is not None and owner.suppressed(diagnostic.line, diagnostic.code):
                    continue
                result.diagnostics.append(diagnostic)

    catalog_checker = next((c for c in checkers if isinstance(c, ObsCatalogChecker)), None)
    if catalog_checker is not None and catalog_mode != "off":
        # the harvest is rebuilt from facts so cached files count too
        catalog_checker.sites = _rebuild_sites(all_facts)
        resolved_catalog = catalog_path or _catalog.default_catalog_path()
        # a partial harvest (linting one file) cannot prove a catalog
        # entry stale; only a run covering the package root can.
        package_root = default_root().resolve()
        covering_root = any(
            root.resolve() == package_root or root.resolve() in package_root.parents
            for root in roots
        )
        if catalog_mode == "fix":
            _fix_catalog(resolved_catalog, catalog_checker, all_facts, covering_root, result)
        else:
            result.diagnostics.extend(
                catalog_checker.drift_diagnostics(resolved_catalog, check_stale=covering_root)
            )

    if changed_only:
        changed = changed_files()
        if changed is not None:
            result.diagnostics = [
                d for d in result.diagnostics if Path(d.path).resolve() in changed
            ]
    return result


# ---------------------------------------------------------------------------
# CLI


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro5g lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json", "sarif"],
        help="report format (default: text; sarif for code-scanning upload)",
    )
    parser.add_argument(
        "--fix-catalog",
        action="store_true",
        help="regenerate lintkit/obs_catalog.json from the harvested obs names",
    )
    parser.add_argument(
        "--catalog",
        type=Path,
        default=None,
        help="alternate obs catalog path (default: the checked-in catalog)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental lint cache (REPRO_NO_CACHE=1 also disables it)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=f"alternate cache file (default: {_cache.default_cache_path()})",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report only findings in files `git diff --name-only` considers "
        "modified (the whole project is still analyzed); pre-commit mode",
    )


def build_arg_parser(prog: str = "repro5g lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "AST and whole-program invariant checks for the repro codebase "
            "(rules RL001-RL012)"
        ),
    )
    add_lint_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint invocation from a parsed namespace; returns exit code."""
    if args.list_rules:
        for code, cls in registered_checkers().items():
            print(f"{code}  {cls.name:<22} {cls.summary}")
        return 0
    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()] if args.rules else None
    cache_path: Optional[Path] = None if args.no_cache else (args.cache or _cache.default_cache_path())
    try:
        result = lint_paths(
            paths=args.paths or None,
            rules=rules,
            catalog_path=args.catalog,
            catalog_mode="fix" if args.fix_catalog else "check",
            cache_path=cache_path,
            changed_only=args.changed_only,
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(result.to_json())
    elif args.fmt == "sarif":
        print(result.to_sarif())
    else:
        print(result.to_text())
    if result.catalog_written is not None:
        print(f"wrote {result.catalog_written}", file=sys.stderr)
        for name in result.catalog_pruned:
            print(f"pruned stale manual catalog entry {name!r}", file=sys.stderr)
    return 0 if result.ok else 1


def run_cli(argv: Optional[Sequence[str]] = None, prog: str = "repro5g lint") -> int:
    return run_from_args(build_arg_parser(prog).parse_args(argv))
