"""File walking, checker orchestration and report formatting.

:func:`lint_paths` is the one entry point: it walks the requested
files/directories, parses each module once, runs every registered
checker over the shared AST, filters line-scoped suppressions, then
performs the cross-file RL005 catalog diff.  The CLI (``repro5g lint``
and ``python -m repro.lintkit``) is a thin argparse wrapper around it.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from . import catalog as _catalog
from .base import (
    Checker,
    Diagnostic,
    FileContext,
    make_checkers,
    parse_suppressions,
    registered_checkers,
)
from .checkers import ObsCatalogChecker

#: directories never descended into while walking lint roots
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-obs", "build", "dist"})

#: report format produced by ``--format=json``
JSON_REPORT_SCHEMA = "repro-lint-report-v1"


def default_root() -> Path:
    """The installed ``repro`` package directory (works from any cwd)."""
    return Path(__file__).resolve().parents[1]


def iter_python_files(roots: Sequence[Path]) -> Iterator[Path]:
    for root in roots:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for path in sorted(root.rglob("*.py")):
            parts = set(path.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info") for p in path.parts):
                continue
            yield path


def module_name_for(path: Path) -> str:
    """Dotted module name (``repro.ran.ca``) for files under a ``repro`` tree.

    Files outside any ``repro`` package (e.g. test fixture snippets)
    fall back to their stem so rules keyed on module identity
    (RL002/RL003 exemptions) simply never match them.
    """
    resolved = path.resolve()
    parts = list(resolved.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else ""


def build_context(path: Path, source: Optional[str] = None) -> FileContext:
    if source is None:
        source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = module_name_for(path)
    package = module if path.name == "__init__.py" else module.rpartition(".")[0]
    try:
        display = str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        display = str(path)
    return FileContext(
        path=path,
        display_path=display,
        module=module,
        package=package,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )


@dataclass
class LintResult:
    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    catalog_written: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def to_json(self) -> str:
        counts: dict = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        payload = {
            "schema": JSON_REPORT_SCHEMA,
            "files_checked": self.files_checked,
            "ok": self.ok,
            "counts": dict(sorted(counts.items())),
            "diagnostics": [d.to_json() for d in sorted(self.diagnostics)],
        }
        return json.dumps(payload, indent=2)

    def to_text(self) -> str:
        lines = [d.format() for d in sorted(self.diagnostics)]
        tail = (
            f"{len(self.diagnostics)} violation(s) in {self.files_checked} file(s)"
            if self.diagnostics
            else f"ok: {self.files_checked} file(s) clean"
        )
        return "\n".join([*lines, tail])


def lint_paths(
    paths: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
    catalog_path: Optional[Path] = None,
    catalog_mode: str = "check",
    checkers: Optional[Sequence[Checker]] = None,
) -> LintResult:
    """Lint files/directories and return every surviving diagnostic.

    ``catalog_mode`` is ``check`` (diff the RL005 harvest against the
    checked-in catalog), ``fix`` (rewrite the catalog from the harvest)
    or ``off`` (naming checks only — used by fixture tests whose
    harvest would otherwise mark the real catalog stale).
    """
    roots = [Path(p) for p in paths] if paths else [default_root()]
    if checkers is None:
        checkers = make_checkers(rules)
    result = LintResult()
    for path in iter_python_files(roots):
        try:
            ctx = build_context(path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=1,
                    code="RL000",
                    message=f"could not parse file: {exc}",
                )
            )
            continue
        result.files_checked += 1
        for checker in checkers:
            for diagnostic in checker.check(ctx):
                if not ctx.suppressed(diagnostic.line, diagnostic.code):
                    result.diagnostics.append(diagnostic)

    catalog_checker = next((c for c in checkers if isinstance(c, ObsCatalogChecker)), None)
    if catalog_checker is not None and catalog_mode != "off":
        resolved_catalog = catalog_path or _catalog.default_catalog_path()
        if catalog_mode == "fix":
            result.catalog_written = _catalog.write_catalog(
                resolved_catalog, _catalog.aggregate(catalog_checker.sites)
            )
        else:
            # a partial harvest (linting one file) cannot prove a catalog
            # entry stale; only a run covering the package root can.
            package_root = default_root().resolve()
            check_stale = any(
                root.resolve() == package_root or root.resolve() in package_root.parents
                for root in roots
            )
            result.diagnostics.extend(
                catalog_checker.drift_diagnostics(resolved_catalog, check_stale=check_stale)
            )
    return result


# ---------------------------------------------------------------------------
# CLI


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro5g lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fix-catalog",
        action="store_true",
        help="regenerate lintkit/obs_catalog.json from the harvested obs names",
    )
    parser.add_argument(
        "--catalog",
        type=Path,
        default=None,
        help="alternate obs catalog path (default: the checked-in catalog)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def build_arg_parser(prog: str = "repro5g lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="AST-based invariant checks for the repro codebase (rules RL001-RL006)",
    )
    add_lint_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint invocation from a parsed namespace; returns exit code."""
    if args.list_rules:
        for code, cls in registered_checkers().items():
            print(f"{code}  {cls.name:<18} {cls.summary}")
        return 0
    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()] if args.rules else None
    try:
        result = lint_paths(
            paths=args.paths or None,
            rules=rules,
            catalog_path=args.catalog,
            catalog_mode="fix" if args.fix_catalog else "check",
        )
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    print(result.to_json() if args.fmt == "json" else result.to_text())
    if result.catalog_written is not None:
        print(f"wrote {result.catalog_written}", file=sys.stderr)
    return 0 if result.ok else 1


def run_cli(argv: Optional[Sequence[str]] = None, prog: str = "repro5g lint") -> int:
    return run_from_args(build_arg_parser(prog).parse_args(argv))
