"""repro.lintkit — AST-based invariant checks for this codebase.

The reproduction's correctness rests on conventions a generic linter
cannot see: seeded-``Generator`` determinism (the fused/batched kernel
oracles assert bit-identical outputs), :mod:`repro.runtime`'s
write-through flag mirrors, the single canonical hash recipe, and the
:mod:`repro.obs` metric/span namespace.  This package checks them
statically (stdlib :mod:`ast` only) with a pluggable checker registry:

========  ==================  ==================================================
code      rule                invariant
========  ==================  ==================================================
RL001     determinism         no legacy ``np.random.*`` global-state calls; no
                              argless ``default_rng()``
RL002     flag-discipline     no value-imports of dispatch flags/mirror globals
RL003     single-hash         ``hashlib`` only inside ``repro.runtime``
RL004     exception-hygiene   broad ``except`` must re-raise or publish obs
RL005     obs-catalog         obs names dotted-lowercase and catalogued in
                              ``obs_catalog.json``
RL006     float-equality      no ``==``/``!=`` on float expressions
========  ==================  ==================================================

Run it as ``repro5g lint`` or ``python -m repro.lintkit``; line-scoped
opt-outs are ``# lint: bit-identical`` (RL006) and
``# lint: disable=RL00X``.  See README "Static analysis" and DESIGN §6d.
"""

from __future__ import annotations

from .base import (
    Checker,
    Diagnostic,
    FileContext,
    dotted_name,
    make_checkers,
    parse_suppressions,
    register,
    registered_checkers,
)
from .catalog import (
    CATALOG_SCHEMA,
    ObsNameSite,
    default_catalog_path,
    harvest_module,
    load_catalog,
    valid_obs_name,
    write_catalog,
)
from .runner import (
    JSON_REPORT_SCHEMA,
    LintResult,
    build_context,
    default_root,
    lint_paths,
    run_cli,
)

# importing the module registers RL001-RL006 in the checker registry
from . import checkers as _checkers  # noqa: F401

__all__ = [
    "CATALOG_SCHEMA",
    "Checker",
    "Diagnostic",
    "FileContext",
    "JSON_REPORT_SCHEMA",
    "LintResult",
    "ObsNameSite",
    "build_context",
    "default_catalog_path",
    "default_root",
    "dotted_name",
    "harvest_module",
    "lint_paths",
    "load_catalog",
    "make_checkers",
    "parse_suppressions",
    "register",
    "registered_checkers",
    "run_cli",
    "valid_obs_name",
    "write_catalog",
]
