"""repro.lintkit — AST and whole-program invariant checks for this codebase.

The reproduction's correctness rests on conventions a generic linter
cannot see: seeded-``Generator`` determinism (the fused/batched kernel
oracles assert bit-identical outputs), :mod:`repro.runtime`'s
write-through flag mirrors, the single canonical hash recipe, and the
:mod:`repro.obs` metric/span namespace.  This package checks them
statically (stdlib :mod:`ast` only) with a pluggable checker registry.
Rules RL001–RL007 are per-file AST passes; RL008–RL012 are
whole-program rules that run over a project-wide symbol table and
import/call graph built in the same sweep (see
:mod:`repro.lintkit.project`):

========  =======================  =============================================
code      rule                     invariant
========  =======================  =============================================
RL001     determinism              no legacy ``np.random.*`` global-state calls;
                                   no argless ``default_rng()``
RL002     flag-discipline          no value-imports of dispatch flags/mirrors
RL003     single-hash              ``hashlib`` only inside ``repro.runtime``
RL004     exception-hygiene        broad ``except`` must re-raise or publish obs
RL005     obs-catalog              obs names dotted-lowercase and catalogued in
                                   ``obs_catalog.json``
RL006     float-equality           no ``==``/``!=`` on float expressions
RL007     backend-impl             numeric kernels go through the backend table
RL008     rng-lineage              every ``default_rng`` seed traces to the
                                   canonical hash recipe or a threaded seed arg
RL009     determinism-ordering     no set iteration on paths feeding
                                   ``canonical_hash``/``ShardPlan``
RL010     dtype-discipline         backend primitives never mix f32/f64 without
                                   an explicit cast
RL011     paired-resource          ``obs.span``/``sample_window``/arena
                                   ``begin_step`` closed on all paths
RL012     registry-coverage        registered names resolvable and reachable
                                   from the CLI
========  =======================  =============================================

Run it as ``repro5g lint`` or ``python -m repro.lintkit``; line-scoped
opt-outs are ``# lint: bit-identical`` (RL006) and
``# lint: disable=RL00X``.  Re-runs are incremental (content-hash cache,
``--no-cache`` to bypass) and ``--format sarif`` emits code-scanning
annotations.  See README "Static analysis" and DESIGN §6d/§6e.
"""

from __future__ import annotations

from .base import (
    Checker,
    Diagnostic,
    FileContext,
    ProjectRule,
    dotted_name,
    make_checkers,
    parse_suppressions,
    register,
    registered_checkers,
)
from .cache import default_cache_path
from .catalog import (
    CATALOG_SCHEMA,
    ObsNameSite,
    default_catalog_path,
    harvest_module,
    load_catalog,
    valid_obs_name,
    write_catalog,
)
from .project import (
    FACTS_SCHEMA,
    FunctionFacts,
    ModuleFacts,
    ProjectContext,
    extract_module_facts,
)
from .runner import (
    JSON_REPORT_SCHEMA,
    LintResult,
    build_context,
    default_root,
    lint_paths,
    run_cli,
)
from .sarif import to_sarif

# importing these registers RL001-RL007 and RL008-RL012 respectively
from . import checkers as _checkers  # noqa: F401
from . import project_rules as _project_rules  # noqa: F401

__all__ = [
    "CATALOG_SCHEMA",
    "Checker",
    "Diagnostic",
    "FACTS_SCHEMA",
    "FileContext",
    "FunctionFacts",
    "JSON_REPORT_SCHEMA",
    "LintResult",
    "ModuleFacts",
    "ObsNameSite",
    "ProjectContext",
    "ProjectRule",
    "build_context",
    "default_cache_path",
    "default_catalog_path",
    "default_root",
    "dotted_name",
    "extract_module_facts",
    "harvest_module",
    "lint_paths",
    "load_catalog",
    "make_checkers",
    "parse_suppressions",
    "register",
    "registered_checkers",
    "run_cli",
    "to_sarif",
    "valid_obs_name",
    "write_catalog",
]
