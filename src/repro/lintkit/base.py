"""Checker framework for :mod:`repro.lintkit`.

A *checker* is one invariant: it owns a rule code (``RL001``…), walks a
parsed module, and yields :class:`Diagnostic` records with precise
``file:line:col`` positions.  Checkers register themselves in a module
registry so the runner (and the tests) can enumerate them, and so new
invariants are one decorated class away.

Suppression is line-scoped and explicit in the source being linted::

    x == 0.0  # lint: bit-identical          (silences RL006)
    import hashlib  # lint: disable=RL003    (silences the listed codes)

``# lint: disable=all`` silences every rule on that line.  The runner
parses suppressions once per file and filters diagnostics centrally, so
individual checkers never need to know about them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (project imports base)
    from .project import ProjectContext

#: matches the whole suppression comment, e.g. ``# lint: disable=RL001,RL003``
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*(?P<directive>[A-Za-z0-9_=,\- ]+)")

#: alias directives: ``# lint: bit-identical`` reads better than
#: ``disable=RL006`` next to an oracle-equivalence comparison.
_DIRECTIVE_ALIASES = {
    "bit-identical": {"RL006"},
    "backend-impl": {"RL007"},
}


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violation at an exact source position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a checker needs to know about one source file."""

    path: Path
    display_path: str
    module: str
    #: the dotted package the module lives in (equals ``module`` for a
    #: package ``__init__``); used to resolve relative imports.
    package: str
    source: str
    tree: ast.AST
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return code in codes or "all" in codes


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number → set of rule codes silenced on that line."""
    suppressed: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes: Set[str] = set()
        for token in re.split(r"[,\s]+", match.group("directive").strip()):
            if not token:
                continue
            if token in _DIRECTIVE_ALIASES:
                codes |= _DIRECTIVE_ALIASES[token]
            elif token.startswith("disable="):
                for code in token[len("disable="):].split(","):
                    code = code.strip()
                    if code:
                        codes.add("all" if code == "all" else code.upper())
        if codes:
            suppressed[lineno] = codes
    return suppressed


class Checker:
    """Base class: one rule code, one ``check`` pass over a module AST."""

    #: rule code, e.g. ``RL001`` (set by subclasses)
    code: str = ""
    #: short kebab-case rule name, e.g. ``determinism``
    name: str = ""
    #: one-line description shown by ``--list-rules`` and in docs
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class ProjectRule(Checker):
    """A flow-sensitive rule that reasons over the whole program.

    Per-file ``check`` is a no-op; the runner calls ``check_project``
    exactly once after every file's facts have been extracted (or
    reloaded from the incremental cache) and linked into a
    :class:`~repro.lintkit.project.ProjectContext`.  Diagnostics carry
    normal file positions, so line-scoped ``# lint: disable=`` comments
    suppress them like any per-file rule — the runner filters them
    against the owning module's recorded suppressions.
    """

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Diagnostic]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the registry (keyed by code)."""
    if not cls.code:
        raise ValueError(f"checker {cls.__name__} has no rule code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate checker code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def registered_checkers() -> Dict[str, Type[Checker]]:
    """Snapshot of the registry: rule code → checker class (sorted)."""
    return {code: _REGISTRY[code] for code in sorted(_REGISTRY)}


def make_checkers(only: Optional[Iterable[str]] = None) -> List[Checker]:
    """Instantiate registered checkers (optionally a subset of codes)."""
    registry = registered_checkers()
    if only is None:
        return [cls() for cls in registry.values()]
    unknown = sorted(set(only) - set(registry))
    if unknown:
        raise ValueError(f"unknown rule codes {unknown}; known: {sorted(registry)}")
    return [registry[code]() for code in sorted(set(only))]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
