"""Whole-program facts and symbol resolution for :mod:`repro.lintkit`.

PR 5's checkers each walk one module AST, so they can only enforce
invariants visible inside a single file.  The flow-sensitive rules
(RL008–RL012) need to reason *across* modules: a seed threaded through
three call sites, a set iteration two calls below ``canonical_hash``,
a registry entry whose factory lives in another package.  This module
supplies that view in two phases:

1. **Extraction** — :func:`extract_module_facts` distills each parsed
   module into a :class:`ModuleFacts` record: the symbols it defines,
   the imports/aliases it binds, and per-function :class:`FunctionFacts`
   (raw call targets, RNG seed sites, unordered-iteration sites,
   resource open/close sites, dtype mentions, registrations).  Facts
   are pure data — JSON round-trippable — which is what makes the
   runner's content-hash cache possible: an unchanged file's facts are
   reloaded instead of re-parsed.
2. **Linking** — :class:`ProjectContext` joins all facts into a
   project-wide symbol table, import graph and approximate call graph,
   and offers the resolution/reachability queries the project rules in
   :mod:`repro.lintkit.project_rules` are written against.

The call graph is a deliberately modest approximation (DESIGN §6e
documents the precision contract): calls are resolved through import
aliases, same-module definitions, ``self``/``cls`` receivers and
annotated parameters.  Calls on untyped locals, higher-order values or
``getattr`` stay unresolved — rules treat unresolved edges
conservatively in whichever direction keeps false positives low.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .base import FileContext, dotted_name

#: bumped whenever extraction semantics change, so cached facts from an
#: older lintkit never feed the project pass (folded into cache keys).
FACTS_SCHEMA = "repro-lint-facts-v1"

#: call roots/targets that make an RNG seed time-, process- or
#: entropy-dependent; deriving a seed from any of these breaks replay.
_BAD_SEED_ROOTS = frozenset({"time", "secrets", "uuid", "random"})
_BAD_SEED_CALLS = frozenset(
    {
        "os.urandom",
        "os.getpid",
        "os.getrandom",
        "hash",
        "id",
        "input",
    }
)

#: call targets (by last segment) that certify a seed's lineage: the
#: canonical hash recipe, or an already-seeded Generator being asked
#: for a derived seed.
_GOOD_SEED_TAILS = frozenset({"canonical_hash", "default_rng"})

#: builtins that preserve seed lineage of their argument(s).
_LINEAGE_PRESERVING_CALLS = frozenset({"int", "abs", "min", "max", "sum", "len", "divmod", "round"})


def _json_site(line: int, col: int, **extra: object) -> Dict[str, object]:
    payload: Dict[str, object] = {"line": line, "col": col}
    payload.update(extra)
    return payload


@dataclass
class SeedSite:
    """One ``default_rng(seed)`` call and the verdict on its seed expr.

    ``status`` is ``"ok"`` (lineage proven locally), ``"bad"`` (a
    forbidden origin, ``why`` says which), or ``"deps"`` (locally clean
    but derived through project calls listed in ``deps`` — the project
    pass must prove each callee's return value is itself traced).
    """

    line: int
    col: int
    status: str
    why: str = ""
    deps: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return _json_site(self.line, self.col, status=self.status, why=self.why, deps=list(self.deps))

    @staticmethod
    def from_json(data: Mapping[str, object]) -> "SeedSite":
        return SeedSite(
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            status=str(data["status"]),
            why=str(data.get("why", "")),
            deps=[str(d) for d in data.get("deps", [])],  # type: ignore[union-attr]
        )


@dataclass
class FunctionFacts:
    """Everything the project rules need to know about one function."""

    qualname: str  #: module-relative, e.g. ``Trainer.fit`` or ``<module>``
    name: str
    cls: str  #: enclosing class name, ``""`` for free functions
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    annotations: Dict[str, str] = field(default_factory=dict)  #: param -> raw dotted annotation
    calls: List[str] = field(default_factory=list)  #: raw dotted call targets (sorted, unique)
    seed_sites: List[SeedSite] = field(default_factory=list)
    set_iter_sites: List[Dict[str, object]] = field(default_factory=list)
    cm_leaks: List[Dict[str, object]] = field(default_factory=list)
    arena_opens: List[Dict[str, object]] = field(default_factory=list)
    closes_arena: bool = False  #: calls ``end_run`` inside a ``finally``
    returns_traced: Optional[bool] = None  #: every return expr has seed-grade lineage
    dtype32: bool = False
    dtype64: bool = False
    has_astype: bool = False

    def to_json(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "col": self.col,
            "params": list(self.params),
            "annotations": dict(self.annotations),
            "calls": list(self.calls),
            "seed_sites": [s.to_json() for s in self.seed_sites],
            "set_iter_sites": list(self.set_iter_sites),
            "cm_leaks": list(self.cm_leaks),
            "arena_opens": list(self.arena_opens),
            "closes_arena": self.closes_arena,
            "returns_traced": self.returns_traced,
            "dtype32": self.dtype32,
            "dtype64": self.dtype64,
            "has_astype": self.has_astype,
        }

    @staticmethod
    def from_json(data: Mapping[str, object]) -> "FunctionFacts":
        traced = data.get("returns_traced")
        return FunctionFacts(
            qualname=str(data["qualname"]),
            name=str(data["name"]),
            cls=str(data["cls"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            params=[str(p) for p in data.get("params", [])],  # type: ignore[union-attr]
            annotations={str(k): str(v) for k, v in dict(data.get("annotations", {})).items()},  # type: ignore[arg-type]
            calls=[str(c) for c in data.get("calls", [])],  # type: ignore[union-attr]
            seed_sites=[SeedSite.from_json(s) for s in data.get("seed_sites", [])],  # type: ignore[union-attr]
            set_iter_sites=[dict(s) for s in data.get("set_iter_sites", [])],  # type: ignore[union-attr]
            cm_leaks=[dict(s) for s in data.get("cm_leaks", [])],  # type: ignore[union-attr]
            arena_opens=[dict(s) for s in data.get("arena_opens", [])],  # type: ignore[union-attr]
            closes_arena=bool(data.get("closes_arena", False)),
            returns_traced=None if traced is None else bool(traced),
            dtype32=bool(data.get("dtype32", False)),
            dtype64=bool(data.get("dtype64", False)),
            has_astype=bool(data.get("has_astype", False)),
        )


@dataclass
class ModuleFacts:
    """The serializable distillation of one parsed module."""

    module: str
    package: str
    display_path: str
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)  #: local name -> absolute dotted target
    imports: List[str] = field(default_factory=list)  #: absolute imported module candidates
    literals: Dict[str, List[str]] = field(default_factory=dict)  #: top-level str-tuple constants
    classes: Dict[str, List[str]] = field(default_factory=dict)  #: class -> method names
    functions: List[FunctionFacts] = field(default_factory=list)
    registrations: List[Dict[str, object]] = field(default_factory=list)
    obs_sites: List[Dict[str, object]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "package": self.package,
            "display_path": self.display_path,
            "suppressions": {str(line): sorted(codes) for line, codes in self.suppressions.items()},
            "aliases": dict(self.aliases),
            "imports": list(self.imports),
            "literals": {k: list(v) for k, v in self.literals.items()},
            "classes": {k: list(v) for k, v in self.classes.items()},
            "functions": [f.to_json() for f in self.functions],
            "registrations": list(self.registrations),
            "obs_sites": list(self.obs_sites),
        }

    @staticmethod
    def from_json(data: Mapping[str, object]) -> "ModuleFacts":
        return ModuleFacts(
            module=str(data["module"]),
            package=str(data["package"]),
            display_path=str(data["display_path"]),
            suppressions={
                int(line): [str(c) for c in codes]
                for line, codes in dict(data.get("suppressions", {})).items()  # type: ignore[arg-type]
            },
            aliases={str(k): str(v) for k, v in dict(data.get("aliases", {})).items()},  # type: ignore[arg-type]
            imports=[str(m) for m in data.get("imports", [])],  # type: ignore[union-attr]
            literals={
                str(k): [str(i) for i in v]
                for k, v in dict(data.get("literals", {})).items()  # type: ignore[arg-type]
            },
            classes={
                str(k): [str(m) for m in v]
                for k, v in dict(data.get("classes", {})).items()  # type: ignore[arg-type]
            },
            functions=[FunctionFacts.from_json(f) for f in data.get("functions", [])],  # type: ignore[union-attr]
            registrations=[dict(r) for r in data.get("registrations", [])],  # type: ignore[union-attr]
            obs_sites=[dict(s) for s in data.get("obs_sites", [])],  # type: ignore[union-attr]
        )

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return code in codes or "all" in codes


# ---------------------------------------------------------------------------
# extraction


def _resolve_relative_module(package: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted module for an ImportFrom (handles relative levels)."""
    if node.level == 0:
        return node.module
    base = package.split(".") if package else []
    drop = node.level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _string_tuple(node: ast.expr) -> Optional[List[str]]:
    """The items of an all-string tuple/list literal, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)) or not node.elts:
        return None
    items: List[str] = []
    for element in node.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            items.append(element.value)
        else:
            return None
    return items


class _SeedClassifier:
    """Classifies a seed expression's lineage inside one function scope."""

    def __init__(self, params: Set[str], local_values: Mapping[str, List[ast.expr]], module_constants: Set[str]) -> None:
        self.params = params
        self.local_values = local_values
        self.module_constants = module_constants
        self.deps: List[str] = []
        self._visiting: Set[str] = set()

    def classify(self, node: Optional[ast.expr]) -> Tuple[str, str]:
        """Returns ``(status, why)`` with status ok/bad/deps."""
        if node is None:
            return "bad", "seed expression could not be read"
        if isinstance(node, ast.Constant):
            return "ok", ""
        if isinstance(node, ast.Name):
            return self._classify_name(node.id)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is not None:
                root = dotted.split(".")[0]
                if root in _BAD_SEED_ROOTS:
                    return "bad", f"seed derives from {dotted}"
            # attribute reads (self.seed, cfg.seed, module constants) are
            # named state, not entropy sources — entropy enters via calls
            return "ok", ""
        if isinstance(node, ast.Subscript):
            return self.classify(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.classify(node.operand)
        if isinstance(node, ast.BinOp):
            return self._merge(self.classify(node.left), self.classify(node.right))
        if isinstance(node, ast.BoolOp):
            status: Tuple[str, str] = ("ok", "")
            for value in node.values:
                status = self._merge(status, self.classify(value))
            return status
        if isinstance(node, ast.IfExp):
            return self._merge(self.classify(node.body), self.classify(node.orelse))
        if isinstance(node, ast.Call):
            return self._classify_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            status = ("ok", "")
            for element in node.elts:
                status = self._merge(status, self.classify(element))
            return status
        return "bad", f"seed lineage cannot be traced through {type(node).__name__}"

    def _classify_name(self, name: str) -> Tuple[str, str]:
        if name in self.params:
            return "ok", ""  # explicitly threaded seed argument
        if name in self._visiting:
            return "ok", ""  # cyclic local rebinding; assume the base case traced
        values = self.local_values.get(name)
        if values:
            self._visiting.add(name)
            try:
                status: Tuple[str, str] = ("ok", "")
                for value in values:
                    status = self._merge(status, self.classify(value))
                return status
            finally:
                self._visiting.discard(name)
        if name in self.module_constants:
            return "ok", ""
        return "bad", f"seed lineage cannot be traced for name {name!r}"

    def _classify_call(self, node: ast.Call) -> Tuple[str, str]:
        dotted = dotted_name(node.func)
        if dotted is not None:
            tail = dotted.split(".")[-1]
            root = dotted.split(".")[0]
            if dotted in _BAD_SEED_CALLS or root in _BAD_SEED_ROOTS:
                return "bad", f"seed derives from {dotted}()"
            if tail in _GOOD_SEED_TAILS:
                return "ok", ""
            if dotted in _LINEAGE_PRESERVING_CALLS:
                status: Tuple[str, str] = ("ok", "")
                for arg in node.args:
                    status = self._merge(status, self.classify(arg))
                return status
        if isinstance(node.func, ast.Attribute):
            # a method on a traced receiver (rng.integers(...)) derives
            # from the receiver's lineage
            receiver_status, receiver_why = self.classify(node.func.value)
            if receiver_status != "bad":
                return receiver_status, receiver_why
            return "bad", receiver_why
        if dotted is not None:
            self.deps.append(dotted)
            return "deps", ""
        return "bad", "seed derives from an unresolvable call"

    @staticmethod
    def _merge(left: Tuple[str, str], right: Tuple[str, str]) -> Tuple[str, str]:
        for status in ("bad", "deps"):
            if left[0] == status:
                return left
            if right[0] == status:
                return right
        return "ok", ""


def _local_assignments(fn: ast.AST) -> Dict[str, List[ast.expr]]:
    """name -> every expression assigned to it inside ``fn`` (flat scan)."""
    values: Dict[str, List[ast.expr]] = {}

    def record(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            values.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record(element, value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node.value)
        elif isinstance(node, ast.AugAssign):
            record(node.target, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record(node.target, node.value)
        elif isinstance(node, ast.For):
            record(node.target, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                record(generator.target, generator.iter)
    return values


def _is_unordered_expr(node: ast.expr, local_values: Mapping[str, List[ast.expr]], depth: int = 0) -> Optional[str]:
    """A short description if ``node`` provably evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal" if isinstance(node, ast.Set) else "a set comprehension"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return f"{dotted}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("union", "intersection", "difference", "symmetric_difference"):
            inner = _is_unordered_expr(node.func.value, local_values, depth)
            if inner is not None:
                return f"set.{node.func.attr}(...)"
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        left = _is_unordered_expr(node.left, local_values, depth)
        right = _is_unordered_expr(node.right, local_values, depth)
        if left is not None or right is not None:
            return left or right
    if isinstance(node, ast.Name) and depth < 3:
        values = local_values.get(node.id, [])
        for value in values:
            found = _is_unordered_expr(value, local_values, depth + 1)
            if found is not None:
                return f"name {node.id!r} bound to {found}"
    return None


def _param_names(args: ast.arguments) -> List[str]:
    params = [a.arg for a in args.posonlyargs] if hasattr(args, "posonlyargs") else []
    params += [a.arg for a in args.args] + [a.arg for a in args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


def _param_annotations(args: ast.arguments) -> Dict[str, str]:
    annotations: Dict[str, str] = {}
    all_args = list(getattr(args, "posonlyargs", [])) + list(args.args) + list(args.kwonlyargs)
    for arg in all_args:
        if arg.annotation is None:
            continue
        ann: ast.expr = arg.annotation
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            # string annotation: keep the raw text, dotted or plain
            annotations[arg.arg] = ann.value.strip().strip('"')
            continue
        if isinstance(ann, ast.Subscript):  # Optional[X] / List[X]
            inner = ann.slice
            if inner.__class__.__name__ == "Index":  # py<3.9 compat shim in ast
                inner = inner.value  # type: ignore[attr-defined]
            ann = inner  # type: ignore[assignment]
        dotted = dotted_name(ann)
        if dotted is not None:
            annotations[arg.arg] = dotted
    return annotations


_REGISTRAR_NAMES = frozenset({"register_predictor", "register_backend"})


def _registration_kind(callee_tail: str) -> str:
    return "predictor" if callee_tail == "register_predictor" else "backend"


def _extract_function_facts(
    node: ast.AST,
    qualname: str,
    name: str,
    cls: str,
    line: int,
    col: int,
    params: Set[str],
    annotations: Dict[str, str],
    module_constants: Set[str],
) -> FunctionFacts:
    facts = FunctionFacts(
        qualname=qualname,
        name=name,
        cls=cls,
        line=line,
        col=col,
        params=sorted(params),
        annotations=annotations,
    )
    local_values = _local_assignments(node)
    # nested defs and lambdas share the record: their params count as
    # threaded arguments for seed-lineage purposes
    params = set(params)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)) and sub is not node:
            params.update(_param_names(sub.args))

    calls: Set[str] = set()
    with_expr_ids: Set[int] = set()
    returned_ids: Set[int] = set()
    with_names: Set[str] = set()
    assigned_call_ids: Dict[int, str] = {}
    finally_call_tails: Set[str] = set()
    return_values: List[Optional[ast.expr]] = []

    for sub in ast.walk(node):
        if isinstance(sub, ast.With) or isinstance(sub, ast.AsyncWith):
            for item in sub.items:
                with_expr_ids.add(id(item.context_expr))
                if isinstance(item.context_expr, ast.Name):
                    with_names.add(item.context_expr.id)
        elif isinstance(sub, ast.Return):
            return_values.append(sub.value)
            if sub.value is not None:
                returned_ids.add(id(sub.value))
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name) and isinstance(sub.value, ast.Call):
                    assigned_call_ids[id(sub.value)] = target.id
        elif isinstance(sub, ast.Try):
            for stmt in sub.finalbody:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call):
                        dotted = dotted_name(inner.func)
                        if dotted is not None:
                            finally_call_tails.add(dotted.split(".")[-1])

    facts.closes_arena = "end_run" in finally_call_tails

    for sub in ast.walk(node):
        if isinstance(sub, (ast.Attribute, ast.Constant)):
            text = sub.attr if isinstance(sub, ast.Attribute) else sub.value
            if text == "float32":
                facts.dtype32 = True
            elif text == "float64":
                facts.dtype64 = True
            continue
        if isinstance(sub, ast.For):
            found = _is_unordered_expr(sub.iter, local_values)
            if found is not None:
                facts.set_iter_sites.append(_json_site(sub.lineno, sub.col_offset + 1, desc=found))
            continue
        if isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in sub.generators:
                found = _is_unordered_expr(generator.iter, local_values)
                if found is not None:
                    facts.set_iter_sites.append(_json_site(sub.lineno, sub.col_offset + 1, desc=found))
            continue
        if not isinstance(sub, ast.Call):
            continue
        # astype on any receiver counts, including non-name chains like
        # ``(x * a).astype(...)`` that dotted_name cannot render
        if isinstance(sub.func, ast.Attribute) and sub.func.attr == "astype":
            facts.has_astype = True
        dotted = dotted_name(sub.func)
        if dotted is None:
            continue
        calls.add(dotted)
        tail = dotted.split(".")[-1]
        if tail == "default_rng" and (sub.args or sub.keywords):
            seed_expr: Optional[ast.expr] = sub.args[0] if sub.args else None
            if seed_expr is None:
                for keyword in sub.keywords:
                    if keyword.arg == "seed":
                        seed_expr = keyword.value
            classifier = _SeedClassifier(params, local_values, module_constants)
            status, why = classifier.classify(seed_expr)
            facts.seed_sites.append(
                SeedSite(
                    line=sub.lineno,
                    col=sub.col_offset + 1,
                    status=status,
                    why=why,
                    deps=sorted(set(classifier.deps)),
                )
            )
        if tail in ("span", "sample_window"):
            ok = (
                id(sub) in with_expr_ids
                or id(sub) in returned_ids
                or assigned_call_ids.get(id(sub)) in with_names
                or any(k.arg == "force" for k in sub.keywords)
            )
            if not ok:
                facts.cm_leaks.append(_json_site(sub.lineno, sub.col_offset + 1, name=dotted))
        if tail == "begin_step":
            facts.arena_opens.append(_json_site(sub.lineno, sub.col_offset + 1, name=dotted))

    facts.calls = sorted(calls)

    if return_values:
        traced = True
        for value in return_values:
            if value is None:
                traced = False
                break
            classifier = _SeedClassifier(params, local_values, module_constants)
            status, _ = classifier.classify(value)
            if status != "ok":
                traced = False
                break
        facts.returns_traced = traced
    return facts


def extract_module_facts(ctx: FileContext) -> ModuleFacts:
    """Distill one parsed module into serializable whole-program facts."""
    facts = ModuleFacts(
        module=ctx.module,
        package=ctx.package,
        display_path=ctx.display_path,
        suppressions={line: sorted(codes) for line, codes in ctx.suppressions.items()},
    )

    # -- imports and aliases (module- and function-scoped; function
    # aliases join the module map, which is imprecise under shadowing
    # but keeps lazy-import call resolution working)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                facts.imports.append(alias.name)
                local = alias.asname or alias.name.split(".")[0]
                facts.aliases[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative_module(ctx.package, node)
            if base is None:
                continue
            facts.imports.append(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                facts.imports.append(f"{base}.{alias.name}")
                facts.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    module_constants: Set[str] = set()
    top_level_functions: List[Tuple[ast.AST, str, str, str]] = []

    def record_registration(call: ast.Call, target: str) -> None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return
        tail = dotted.split(".")[-1]
        if tail not in _REGISTRAR_NAMES or not call.args:
            return
        name_arg = call.args[0]
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            return
        factory = ""
        if len(call.args) > 1:
            factory = dotted_name(call.args[1]) or ""
        facts.registrations.append(
            {
                "kind": _registration_kind(tail),
                "name": name_arg.value,
                "line": call.lineno,
                "col": call.col_offset + 1,
                "target": target or factory,
            }
        )

    body = ctx.tree.body if isinstance(ctx.tree, ast.Module) else []
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            top_level_functions.append((node, node.name, node.name, ""))
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call):
                    record_registration(decorator, node.name)
        elif isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call):
                    record_registration(decorator, node.name)
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    top_level_functions.append((item, f"{node.name}.{item.name}", item.name, node.name))
                    for decorator in item.decorator_list:
                        if isinstance(decorator, ast.Call):
                            record_registration(decorator, f"{node.name}.{item.name}")
            facts.classes[node.name] = methods
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                items = _string_tuple(value)
                if items is not None:
                    facts.literals[target.id] = items
                if isinstance(value, ast.Constant):
                    module_constants.add(target.id)
                if target.id == "_REGISTRY" and isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            facts.registrations.append(
                                {
                                    "kind": "backend",
                                    "name": key.value,
                                    "line": key.lineno,
                                    "col": key.col_offset + 1,
                                    "target": target.id,
                                }
                            )

    # call-based registrations anywhere in the module (module body or
    # inside functions — e.g. conditional backend registration)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            record_registration(node.value, "")

    # -- per-function facts, plus a synthetic "<module>" record for
    # module-level statements (class bodies and decorators included)
    function_nodes = {id(fn_node) for fn_node, _, _, _ in top_level_functions}

    for fn_node, qualname, name, cls in top_level_functions:
        assert isinstance(fn_node, (ast.FunctionDef, ast.AsyncFunctionDef))
        facts.functions.append(
            _extract_function_facts(
                fn_node,
                qualname,
                name,
                cls,
                fn_node.lineno,
                fn_node.col_offset + 1,
                set(_param_names(fn_node.args)),
                _param_annotations(fn_node.args),
                module_constants,
            )
        )

    module_level = [node for node in body if id(node) not in function_nodes]
    # prune function bodies inside classes so module-level facts don't
    # double-count method internals
    pruned: List[ast.stmt] = []
    for node in module_level:
        if isinstance(node, ast.ClassDef):
            class_rest = [item for item in node.body if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))]
            clone = ast.ClassDef(
                name=node.name,
                bases=node.bases,
                keywords=node.keywords,
                body=class_rest or [ast.Pass()],
                decorator_list=node.decorator_list,
            )
            ast.copy_location(clone, node)
            ast.fix_missing_locations(clone)
            pruned.append(clone)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        else:
            pruned.append(node)
    module_proxy = ast.Module(body=pruned, type_ignores=[])
    facts.functions.append(
        _extract_function_facts(
            module_proxy,
            "<module>",
            "<module>",
            "",
            1,
            1,
            set(),
            {},
            module_constants,
        )
    )

    from . import catalog as _catalog

    for site in _catalog.harvest_module(ctx.tree, ctx.module, ctx.display_path):
        facts.obs_sites.append(
            {
                "name": site.name,
                "kind": site.kind,
                "module": site.module,
                "path": site.path,
                "line": site.line,
                "col": site.col,
                "dynamic": site.dynamic,
            }
        )
    return facts


# ---------------------------------------------------------------------------
# linking


class ProjectContext:
    """Project-wide symbol table, import graph and approximate call graph.

    Built once per lint run from every module's :class:`ModuleFacts`
    (freshly extracted or reloaded from the incremental cache), then
    handed to each :class:`~repro.lintkit.base.ProjectRule`.
    """

    def __init__(self, modules: Sequence[ModuleFacts]) -> None:
        self.modules: Dict[str, ModuleFacts] = {}
        for mf in modules:
            self.modules[mf.module] = mf
        #: "module.Qual.name" -> (ModuleFacts, FunctionFacts)
        self.functions: Dict[str, Tuple[ModuleFacts, FunctionFacts]] = {}
        #: "module.Class" -> class methods
        self.class_methods: Dict[str, List[str]] = {}
        for mf in self.modules.values():
            for fn in mf.functions:
                if fn.qualname != "<module>":
                    self.functions[f"{mf.module}.{fn.qualname}"] = (mf, fn)
            for cls, methods in mf.classes.items():
                self.class_methods[f"{mf.module}.{cls}"] = methods
        self._import_edges: Dict[str, Set[str]] = {
            mf.module: {m for m in mf.imports if m in self.modules and m != mf.module}
            for mf in self.modules.values()
        }
        # importing a submodule implicitly imports its ancestor
        # packages (and executing a package body is what imports the
        # submodule at runtime), so close edges over the package chain
        for mf in self.modules.values():
            parts = mf.module.split(".")
            for i in range(1, len(parts)):
                parent = ".".join(parts[:i])
                if parent in self.modules:
                    self._import_edges[mf.module].add(parent)
        self._callers: Optional[Dict[str, Set[str]]] = None

    # -- symbol resolution ---------------------------------------------------

    def normalize(self, full: str) -> List[str]:
        """Project function keys for an absolute dotted target.

        A constructor call (``pkg.mod.Class``) resolves to the class's
        ``__init__``/``__post_init__`` methods when present; an empty
        list means the target is not a project function.
        """
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            rest = ".".join(parts[cut:])
            key = f"{module}.{rest}"
            if key in self.functions:
                return [key]
            if key in self.class_methods:
                inits = [
                    f"{key}.{method}"
                    for method in ("__init__", "__post_init__", "__new__")
                    if f"{key}.{method}" in self.functions
                ]
                return inits
            return []
        return []

    def resolve_call(self, mf: ModuleFacts, fn: FunctionFacts, raw: str) -> List[str]:
        """Project function keys a raw dotted call may target (approximate)."""
        parts = raw.split(".")
        head = parts[0]
        if head in ("self", "cls"):
            if fn.cls and len(parts) == 2 and parts[1] in mf.classes.get(fn.cls, []):
                return [f"{mf.module}.{fn.cls}.{parts[1]}"]
            return []
        if head in mf.aliases:
            target = mf.aliases[head]
            if target != head:
                return self.normalize(".".join([target] + parts[1:]))
        if f"{mf.module}.{raw}" in self.functions:
            return [f"{mf.module}.{raw}"]
        if raw in mf.classes:
            return self.normalize(f"{mf.module}.{raw}")
        if len(parts) >= 2 and head in mf.classes and parts[1] in mf.classes[head]:
            return [f"{mf.module}.{head}.{parts[1]}"]
        annotation = fn.annotations.get(head)
        if annotation is not None and len(parts) >= 2:
            for cls_key in self._annotation_classes(mf, annotation):
                if parts[1] in self.class_methods.get(cls_key, []):
                    return [f"{cls_key}.{parts[1]}"]
        return []

    def _annotation_classes(self, mf: ModuleFacts, annotation: str) -> List[str]:
        head = annotation.split(".")[0]
        if annotation in mf.classes:
            return [f"{mf.module}.{annotation}"]
        if head in mf.aliases:
            target = ".".join([mf.aliases[head]] + annotation.split(".")[1:])
            parts = target.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                module = ".".join(parts[:cut])
                if module in self.modules:
                    key = f"{module}.{'.'.join(parts[cut:])}"
                    if key in self.class_methods:
                        return [key]
        # fall back: a uniquely-named project class matches by basename
        tail = annotation.split(".")[-1]
        matches = [key for key in self.class_methods if key.split(".")[-1] == tail]
        return matches if len(matches) == 1 else []

    # -- graph queries -------------------------------------------------------

    def callees(self, key: str) -> Set[str]:
        mf, fn = self.functions[key]
        resolved: Set[str] = set()
        for raw in fn.calls:
            resolved.update(self.resolve_call(mf, fn, raw))
        return resolved

    def callers_of(self, key: str) -> Set[str]:
        if self._callers is None:
            callers: Dict[str, Set[str]] = {}
            for source in self.functions:
                for target in self.callees(source):
                    callers.setdefault(target, set()).add(source)
            self._callers = callers
        return self._callers.get(key, set())

    def callee_closure(self, seeds: Set[str]) -> Set[str]:
        """``seeds`` plus every project function transitively called."""
        seen = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            if current not in self.functions:
                continue
            for callee in self.callees(current):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def import_reachable(self, start: str) -> Set[str]:
        """Modules transitively imported from ``start`` (inclusive)."""
        if start not in self.modules:
            return set()
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for target in self._import_edges.get(current, ()):  # pragma: no branch
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def iter_functions(self) -> Iterator[Tuple[ModuleFacts, FunctionFacts]]:
        for mf in self.modules.values():
            for fn in mf.functions:
                yield mf, fn

    def string_literals(self, name: str) -> Dict[str, List[str]]:
        """module -> items, for every top-level str-tuple named ``name``."""
        found: Dict[str, List[str]] = {}
        for mf in self.modules.values():
            if name in mf.literals:
                found[mf.module] = mf.literals[name]
        return found
