"""SARIF 2.1.0 report rendering for ``repro5g lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what GitHub's
code-scanning ingestion expects: the CI static-analysis job uploads
the rendered file and findings appear as inline PR annotations instead
of a log to scroll.  Only the small stable core of the format is
emitted — tool + rule metadata from the checker registry, one result
per diagnostic with a physical location — which validates against the
2.1.0 schema and round-trips through ``github/codeql-action``.
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Dict, List, Sequence

from .base import Diagnostic, registered_checkers

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "reprolint"
TOOL_URI = "https://github.com/repro5g/repro"


def _uri(path: str) -> str:
    return PurePath(path).as_posix()


def to_sarif(diagnostics: Sequence[Diagnostic]) -> Dict[str, object]:
    """The full SARIF document for one lint run (sorted, deterministic)."""
    rules: List[Dict[str, object]] = []
    for code, cls in registered_checkers().items():
        rules.append(
            {
                "id": code,
                "name": cls.name,
                "shortDescription": {"text": cls.summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for diagnostic in sorted(diagnostics):
        results.append(
            {
                "ruleId": diagnostic.code,
                "level": "error",
                "message": {"text": diagnostic.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": _uri(diagnostic.path)},
                            "region": {
                                "startLine": max(diagnostic.line, 1),
                                "startColumn": max(diagnostic.col, 1),
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
