"""Flow-sensitive whole-program rules (RL008–RL012).

Each rule consumes the linked :class:`~repro.lintkit.project.ProjectContext`
rather than a single module AST, so it can follow a seed through call
sites, walk the callee closure of the hashing recipe, or join a
registry against the CLI's import graph.  DESIGN §6e documents the
approximation contract all five share: resolution is alias-, self- and
annotation-based, unresolved edges are treated in whichever direction
avoids false positives, and every verdict is reproducible from the
serializable facts alone (which is what lets the incremental cache
feed this pass without re-parsing).

* **RL008** — every ``default_rng`` seed must derive from the canonical
  hash recipe, a threaded seed argument, or an already-seeded
  Generator — traced through project call sites.
* **RL009** — no iteration over provably unordered (set-typed)
  expressions anywhere in the callee closure of ``canonical_hash``
  callers or ``ShardPlan``/campaign hashing: iteration order there
  changes hashes and shard assignment between runs.
* **RL010** — backend primitive implementations (names listed in the
  ``PRIMITIVES`` registry literal) must not mention float32 and
  float64 together without an explicit ``astype`` cast.
* **RL011** — paired resources must be closed on all paths:
  ``obs.span``/``obs.sample_window`` used as context managers (or
  ``force=True``), arena ``begin_step`` balanced by ``end_run`` in a
  ``finally`` — in the opening function or in every project caller.
* **RL012** — registry coverage: registered names unique, their
  factories/classes importable, their modules reachable from the CLI's
  import graph, and every ``TABLE4_LINEUP`` entry actually registered.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from .base import Diagnostic, ProjectRule, register
from .project import FunctionFacts, ModuleFacts, ProjectContext


def _site_diag(
    code: str, mf: ModuleFacts, line: int, col: int, message: str
) -> Diagnostic:
    return Diagnostic(path=mf.display_path, line=line, col=col, code=code, message=message)


# ---------------------------------------------------------------------------
# RL008 — RNG seed lineage


@register
class RngLineageRule(ProjectRule):
    code = "RL008"
    name = "rng-lineage"
    summary = (
        "default_rng seeds must derive from canonical_hash or a "
        "threaded seed argument (traced through project call sites)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        for mf, fn in project.iter_functions():
            for seed in fn.seed_sites:
                if seed.status == "bad":
                    yield _site_diag(
                        self.code,
                        mf,
                        seed.line,
                        seed.col,
                        f"{seed.why}; seed a Generator from runtime.canonical_hash "
                        "or thread an explicit seed argument",
                    )
                elif seed.status == "deps":
                    for dep in seed.deps:
                        yield from self._check_dep(project, mf, fn, seed.line, seed.col, dep)

    def _check_dep(
        self,
        project: ProjectContext,
        mf: ModuleFacts,
        fn: FunctionFacts,
        line: int,
        col: int,
        dep: str,
    ) -> Iterator[Diagnostic]:
        targets = project.resolve_call(mf, fn, dep)
        if not targets:
            yield _site_diag(
                self.code,
                mf,
                line,
                col,
                f"seed derives from {dep}(), which cannot be traced to a "
                "project function; derive the seed from runtime.canonical_hash "
                "or thread it explicitly",
            )
            return
        for target in targets:
            _, callee = project.functions[target]
            if callee.returns_traced is not True:
                yield _site_diag(
                    self.code,
                    mf,
                    line,
                    col,
                    f"seed derives from {dep}() ({target}), whose return value "
                    "is not provably derived from canonical_hash or a threaded "
                    "seed argument",
                )


# ---------------------------------------------------------------------------
# RL009 — determinism-critical ordering


@register
class DeterminismOrderingRule(ProjectRule):
    code = "RL009"
    name = "determinism-ordering"
    summary = (
        "no iteration over set-typed expressions on paths reachable "
        "from canonical_hash callers or ShardPlan/campaign hashing"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        seeds: Set[str] = set()
        for key, (mf, fn) in project.functions.items():
            if fn.cls == "ShardPlan":
                seeds.add(key)
            elif any(raw.split(".")[-1] == "canonical_hash" for raw in fn.calls):
                seeds.add(key)
        for key in sorted(project.callee_closure(seeds)):
            mf, fn = project.functions[key]
            for site in fn.set_iter_sites:
                yield _site_diag(
                    self.code,
                    mf,
                    int(site["line"]),  # type: ignore[arg-type]
                    int(site["col"]),  # type: ignore[arg-type]
                    f"iteration over {site['desc']} in {fn.qualname}, which is "
                    "on a hash-critical path (reachable from canonical_hash / "
                    "ShardPlan); sort it so hashes and shard assignment stay "
                    "deterministic",
                )


# ---------------------------------------------------------------------------
# RL010 — backend dtype discipline


@register
class DtypeDisciplineRule(ProjectRule):
    code = "RL010"
    name = "dtype-discipline"
    summary = (
        "backend primitives (the PRIMITIVES registry) must not mix "
        "float32 and float64 without an explicit astype cast"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        literal_homes = project.string_literals("PRIMITIVES")
        if not literal_homes:
            return
        primitives: Set[str] = set()
        for items in literal_homes.values():
            primitives.update(items)
        scopes = tuple(literal_homes)
        for mf, fn in project.iter_functions():
            if fn.name not in primitives or fn.cls:
                continue
            if not any(mf.module == scope or mf.module.startswith(scope + ".") for scope in scopes):
                continue
            if fn.dtype32 and fn.dtype64 and not fn.has_astype:
                yield _site_diag(
                    self.code,
                    mf,
                    fn.line,
                    fn.col,
                    f"backend primitive {fn.name} mentions both float32 and "
                    "float64 with no explicit astype cast; mixed-precision "
                    "arithmetic silently upcasts and breaks bit-identical "
                    "backend equivalence",
                )


# ---------------------------------------------------------------------------
# RL011 — paired-resource discipline


#: obs entry points that hand back refcounted/timed resources which
#: must be closed; matched after resolution against the defining module.
_CM_NAMES = frozenset({"span", "sample_window"})

#: fallback receivers accepted when the obs module itself is outside
#: the linted root (e.g. linting a single non-obs file).
_CM_RECEIVER_PREFIXES = ("obs.", "repro.obs.")


@register
class PairedResourceRule(ProjectRule):
    code = "RL011"
    name = "paired-resource"
    summary = (
        "obs.span/sample_window must be used as context managers and "
        "arena begin_step balanced by end_run in a finally"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cm_definers = {
            key.rsplit(".", 1)[0]
            for key in project.functions
            if key.split(".")[-1] in _CM_NAMES
        }
        for key, (mf, fn) in project.functions.items():
            yield from self._check_cm_leaks(project, mf, fn, cm_definers)
            yield from self._check_arena(project, key, mf, fn)

    def _check_cm_leaks(
        self,
        project: ProjectContext,
        mf: ModuleFacts,
        fn: FunctionFacts,
        cm_definers: Set[str],
    ) -> Iterator[Diagnostic]:
        for leak in fn.cm_leaks:
            raw = str(leak["name"])
            targets = project.resolve_call(mf, fn, raw)
            is_obs_cm = any(
                target.split(".")[-1] in _CM_NAMES and target.rsplit(".", 1)[0] != mf.module
                for target in targets
            )
            if not targets:
                is_obs_cm = raw.startswith(_CM_RECEIVER_PREFIXES)
            if targets and any(target.rsplit(".", 1)[0] == mf.module for target in targets):
                continue  # the defining module's own plumbing
            if not is_obs_cm:
                continue
            yield _site_diag(
                self.code,
                mf,
                int(leak["line"]),  # type: ignore[arg-type]
                int(leak["col"]),  # type: ignore[arg-type]
                f"{raw}(...) is neither used in a `with` block, returned, nor "
                "forced (force=True); an unclosed span/sample window leaks its "
                "timer and refcount on error paths",
            )

    def _check_arena(
        self, project: ProjectContext, key: str, mf: ModuleFacts, fn: FunctionFacts
    ) -> Iterator[Diagnostic]:
        for opened in fn.arena_opens:
            raw = str(opened["name"])
            targets = project.resolve_call(mf, fn, raw)
            arena_targets = [
                target
                for target in targets
                if target.split(".")[-1] == "begin_step"
                and project.functions[target][0].module != mf.module
            ]
            if not arena_targets:
                continue
            if fn.closes_arena:
                continue
            callers = project.callers_of(key)
            if callers and all(project.functions[c][1].closes_arena for c in callers):
                continue
            unclosed = sorted(c for c in callers if not project.functions[c][1].closes_arena)
            via = f" (callers without a finally: {', '.join(unclosed)})" if unclosed else ""
            yield _site_diag(
                self.code,
                mf,
                int(opened["line"]),  # type: ignore[arg-type]
                int(opened["col"]),  # type: ignore[arg-type]
                f"arena {raw}() is not balanced by end_run in a finally — "
                f"neither here nor in every caller{via}; leaked workspaces "
                "grow unbounded across steps",
            )


# ---------------------------------------------------------------------------
# RL012 — registry coverage


@register
class RegistryCoverageRule(ProjectRule):
    code = "RL012"
    name = "registry-coverage"
    summary = (
        "registered predictor/backend names must be unique, importable "
        "and reachable from the CLI; lineup entries must be registered"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        registrations: List[Tuple[ModuleFacts, Dict[str, object]]] = []
        for mf in project.modules.values():
            for registration in mf.registrations:
                registrations.append((mf, registration))

        seen: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for mf, registration in registrations:
            kind = str(registration["kind"])
            name = str(registration["name"])
            line = int(registration["line"])  # type: ignore[arg-type]
            col = int(registration["col"])  # type: ignore[arg-type]
            dup_key = (kind, name)
            if dup_key in seen:
                first_module, first_line = seen[dup_key]
                yield _site_diag(
                    self.code,
                    mf,
                    line,
                    col,
                    f"{kind} {name!r} is registered more than once "
                    f"(first at {first_module}:{first_line}); later registrations "
                    "silently replace earlier ones",
                )
            else:
                seen[dup_key] = (mf.module, line)
            yield from self._check_target(project, mf, registration, line, col)

        yield from self._check_reachability(project, registrations)
        yield from self._check_lineups(project, {n for (k, n) in seen if k == "predictor"})

    def _check_target(
        self,
        project: ProjectContext,
        mf: ModuleFacts,
        registration: Dict[str, object],
        line: int,
        col: int,
    ) -> Iterator[Diagnostic]:
        target = str(registration.get("target", ""))
        if not target or target == "_REGISTRY":
            return
        if target in mf.classes or f"{mf.module}.{target}" in project.functions:
            return
        if target in mf.aliases or target.split(".")[0] in mf.aliases:
            return
        yield _site_diag(
            self.code,
            mf,
            line,
            col,
            f"{registration['kind']} {registration['name']!r} registers "
            f"{target!r}, which is not a definition or import visible in "
            f"{mf.module}; the registry entry would fail at call time",
        )

    def _check_reachability(
        self,
        project: ProjectContext,
        registrations: List[Tuple[ModuleFacts, Dict[str, object]]],
    ) -> Iterator[Diagnostic]:
        cli_module = ""
        for candidate in project.modules:
            if candidate == "repro.cli" or candidate == "cli" or candidate.endswith(".cli"):
                cli_module = candidate
                break
        if not cli_module:
            return
        reachable = project.import_reachable(cli_module)
        for mf, registration in registrations:
            if mf.module in reachable:
                continue
            yield _site_diag(
                self.code,
                mf,
                int(registration["line"]),  # type: ignore[arg-type]
                int(registration["col"]),  # type: ignore[arg-type]
                f"{registration['kind']} {registration['name']!r} is registered "
                f"in {mf.module}, which is never imported (directly or "
                f"transitively) from {cli_module}; the CLI cannot see this "
                "registry entry",
            )

    def _check_lineups(
        self, project: ProjectContext, predictor_names: Set[str]
    ) -> Iterator[Diagnostic]:
        if not predictor_names:
            return
        for module, items in project.string_literals("TABLE4_LINEUP").items():
            mf = project.modules[module]
            for item in items:
                if item not in predictor_names:
                    yield _site_diag(
                        self.code,
                        mf,
                        1,
                        1,
                        f"lineup entry {item!r} in {module}.TABLE4_LINEUP is not "
                        "a registered predictor name; evaluation would fail to "
                        "resolve it",
                    )
