"""``python -m repro.lintkit`` — run the invariant checks from anywhere."""

from __future__ import annotations

import sys

from .runner import run_cli

if __name__ == "__main__":
    sys.exit(run_cli(prog="python -m repro.lintkit"))
