"""Content-hash incremental cache for the lint runner.

Re-linting an unchanged tree re-parses nothing: each file's cache
entry stores the *post-suppression* per-file diagnostics and the
serialized :class:`~repro.lintkit.project.ModuleFacts`, keyed by the
canonical hash of (source text, display path, active rule codes, facts
schema).  The whole-program pass always re-runs — it is cheap plain-
data linking — but it consumes reloaded facts instead of fresh ASTs,
which is what keeps warm ``--changed-only`` pre-commit runs fast.

The key uses :func:`repro.runtime.canonical_hash` (the repo's single
hashing recipe — RL003 applies to lintkit too); any change to a file,
to the rule subset, or to extraction semantics (``FACTS_SCHEMA``)
misses cleanly.  The cache lives next to the trace cache
(``~/.cache/repro5g``, ``REPRO_CACHE_DIR`` override) and is fully
disposable; ``REPRO_NO_CACHE=1`` or ``--no-cache`` bypasses it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Sequence

from .. import runtime

CACHE_SCHEMA = "repro-lint-cache-v1"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"


def default_cache_path() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    base = Path(env) if env else Path.home() / ".cache" / "repro5g"
    return base / "lint-cache.json"


def caching_disabled() -> bool:
    return bool(os.environ.get(CACHE_DISABLE_ENV))


def entry_key(source: str, display_path: str, rule_codes: Sequence[str], facts_schema: str) -> str:
    """Cache key for one file under one rule configuration."""
    return runtime.canonical_hash(
        {
            "source": source,
            "display": display_path,
            "rules": sorted(rule_codes),
            "facts": facts_schema,
        },
        schema=CACHE_SCHEMA,
        length=32,
    )


def load_cache(path: Path) -> Dict[str, Dict[str, object]]:
    """Entries from a cache file; anything unreadable is an empty cache."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return {}
    entries = data.get("entries")
    if not isinstance(entries, dict):
        return {}
    return {str(key): dict(value) for key, value in entries.items() if isinstance(value, dict)}


def save_cache(path: Path, entries: Mapping[str, Mapping[str, object]]) -> bool:
    """Best-effort write; a read-only cache dir never fails a lint run."""
    payload = {"schema": CACHE_SCHEMA, "entries": {k: dict(v) for k, v in entries.items()}}
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        return False
    return True
