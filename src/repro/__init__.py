"""repro — reproduction of "Dissecting Carrier Aggregation in 5G Networks:
Measurement, QoE Implications and Prediction" (ACM SIGCOMM 2024).

Subpackages
-----------
``repro.ran``
    3GPP-grounded 4G/5G RAN + carrier-aggregation simulator that
    synthesizes drive-test traces (the measurement substrate).
``repro.nn``
    Numpy autograd + neural modules (LSTM/GRU/TCN/MLP), Adam, trainer.
``repro.trees`` / ``repro.forecast``
    Classical ML (CART/RF/GBDT) and statistical forecasting baselines.
``repro.data``
    Windowing, normalization, and the paper's six ML sub-datasets.
``repro.core``
    Prism5G (the CA-aware predictor), baselines, evaluation harness.
``repro.apps``
    QoE use cases: ViVo volumetric streaming, MPC video ABR.
``repro.analysis``
    Measurement analysis: distributions, correlations, efficiency.
``repro.obs``
    Observability: metrics registry, span tracing, run manifests
    (``REPRO_OBS`` env knob; off by default).
``repro.runtime``
    Canonical kernel-path dispatch flags + the repo's one config-hash
    recipe (``runtime.configure(...)`` / ``runtime.use(...)``).
``repro.backends``
    Pluggable compute backends for the fused primitives (numpy
    reference, optional numba JIT; ``backend`` flag / ``REPRO_BACKEND``)
    plus the workspace arena for allocation-free training steps.
``repro.pipeline``
    Config-driven, resumable experiment pipeline
    (``repro5g run experiment.json``).
"""

from . import analysis, apps, backends, core, data, forecast, nn, obs, pipeline, ran, runtime, trees

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "backends",
    "core",
    "data",
    "forecast",
    "nn",
    "obs",
    "pipeline",
    "ran",
    "runtime",
    "trees",
    "__version__",
]
