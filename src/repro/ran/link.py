"""Link adaptation: CQI feedback, MCS selection, BLER, MIMO rank.

Implements the feedback loop of §4.1: the UE reports CQI/RI derived
from SINR; the gNB picks MCS and the number of MIMO layers.  Under CA
the per-CC transmit power may be reduced (the base station's power
amplifier is shared), which lowers SINR and hence the achievable rank —
the mechanism behind the paper's Fig 14 observation that the same n25
channel drops from 3 layers (no CA) to 1 layer (in a 3CC combo).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .phy import cqi_from_sinr, mcs_from_cqi


#: SINR thresholds (dB) above which each additional MIMO layer is usable.
RANK_SINR_THRESHOLDS_DB = (-math.inf, 9.0, 16.0, 22.0)


def select_rank(sinr_db: float, max_layers: int = 4) -> int:
    """Number of spatial layers supportable at this SINR (1..max_layers)."""
    if max_layers < 1:
        raise ValueError("max_layers must be >= 1")
    rank = 1
    for layer, threshold in enumerate(RANK_SINR_THRESHOLDS_DB, start=1):
        if sinr_db >= threshold:
            rank = layer
    return min(rank, max_layers)


def bler_from_sinr(sinr_db: float, mcs_index: int, steepness: float = 1.2) -> float:
    """Block error rate as a sigmoid around the MCS's SINR threshold.

    Link adaptation targets ~10% BLER; when the channel degrades before
    CQI feedback catches up, BLER rises steeply.
    """
    # SINR needed for ~10% BLER at this MCS: efficiency inverted through
    # the Shannon gap used by cqi_from_sinr.
    from .phy import mcs_spectral_efficiency

    eff = mcs_spectral_efficiency(mcs_index)
    required = 10 * math.log10((2 ** eff - 1.0)) + 3.0
    margin = sinr_db - required
    bler = 1.0 / (1.0 + math.exp(steepness * margin + 2.2))  # ~10% at margin 0
    return float(min(max(bler, 0.0), 0.95))


@dataclass
class LinkState:
    """Per-CC link adaptation outputs for one reporting interval."""

    cqi: int
    mcs: int
    rank: int
    bler: float


class LinkAdapter:
    """Stateful link adaptation with delayed/noisy CQI feedback.

    ``report_noise`` adds quantization/measurement noise to the CQI and
    ``feedback_lag`` smooths MCS changes (outer-loop behaviour), so the
    selected MCS trails sudden SINR changes exactly like a real
    scheduler — one of the sources of throughput variability at CC
    transitions the paper highlights.
    """

    def __init__(
        self,
        max_layers: int = 4,
        report_noise: float = 0.5,
        feedback_smoothing: float = 0.5,
    ) -> None:
        if not 0.0 <= feedback_smoothing < 1.0:
            raise ValueError("feedback_smoothing must be in [0, 1)")
        self.max_layers = max_layers
        self.report_noise = report_noise
        self.feedback_smoothing = feedback_smoothing
        self._smoothed_sinr: Optional[float] = None

    def reset(self) -> None:
        self._smoothed_sinr = None

    def step(self, sinr_db: float, rng: np.random.Generator, max_layers: Optional[int] = None) -> LinkState:
        """Advance one reporting interval and return the link decisions."""
        if self._smoothed_sinr is None:
            self._smoothed_sinr = sinr_db
        else:
            alpha = 1.0 - self.feedback_smoothing
            self._smoothed_sinr = alpha * sinr_db + self.feedback_smoothing * self._smoothed_sinr
        reported = self._smoothed_sinr + rng.normal(0.0, self.report_noise)
        cqi = cqi_from_sinr(reported)
        mcs = mcs_from_cqi(cqi)
        layers_cap = self.max_layers if max_layers is None else min(max_layers, self.max_layers)
        rank = select_rank(reported, layers_cap)
        bler = bler_from_sinr(sinr_db, mcs)
        return LinkState(cqi=cqi, mcs=mcs, rank=rank, bler=bler)
