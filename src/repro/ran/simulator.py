"""End-to-end synthesis of 4G/5G CA measurement traces.

Drives the whole substrate — deployment, propagation, link adaptation,
scheduling, and the CA manager — along a mobility pattern, producing
:class:`~repro.ran.traces.Trace` objects with the paper's Table 12
feature schema at a 10 ms or 1 s sampling period.  This is the
substitute for the authors' XCAL drive-test campaign (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import backends, obs, runtime
from .ca import CAManager
from .cells import Cell, Deployment, build_deployment
from .link import LinkAdapter
from .mobility import MobilityModel, Stationary, make_mobility
from .operators import OperatorProfile, get_operator
from .phy import duplex_dl_duty, num_resource_blocks, phy_throughput_mbps
from .propagation import (
    FastFadingProcess,
    indoor_penetration_loss_db,
    noise_power_dbm,
    rsrp_dbm,
    urban_macro_pathloss_db,
)
from .scheduler import Scheduler
from .traces import CCSample, Trace, TraceRecord
from .ue import UECapability, get_ue


@dataclass
class _CellRadioState:
    """Slow/fast radio processes tracked per candidate cell."""

    shadow_own: float = 0.0
    fading: Optional[FastFadingProcess] = None
    link: Optional[LinkAdapter] = None
    initialized: bool = False


#: shadowing variance split: site-common / band-common / cell-own.
_SHADOW_WEIGHTS = (0.40, 0.45, 0.15)
_SHADOW_SIGMA_DB = 6.0
_SHADOW_DECORR_M = 50.0
_LOS_BLEND_M = 150.0

#: co-channel activity factor: planned reuse + partial load.
_CO_CHANNEL_ACTIVITY = 0.3

def _set_vectorized_mirror(enabled: bool) -> None:
    global _VECTORIZED_RADIO
    _VECTORIZED_RADIO = enabled


# Hot-loop mirror of ``runtime.flag("vectorized_radio")`` — vectorized
# per-step radio update (pathloss / shadowing mix / RSRP / RSRQ / SINR /
# interference across all candidate cells as arrays).  The scalar
# per-cell loop is kept as the equivalence oracle; RNG draw order is
# identical in both paths, but numpy's SIMD transcendentals round
# differently from math.* in the last ulp, so traces match per-field to
# tight tolerances rather than bit for bit.  The canonical value lives
# in :mod:`repro.runtime` (and, because this flag changes trace values,
# is folded into trace-cache keys via ``runtime.synthesis_fingerprint``).
_VECTORIZED_RADIO = runtime.register_mirror("vectorized_radio", _set_vectorized_mirror)


def vectorized_radio_enabled() -> bool:
    """Whether the array-based candidate radio update is active."""
    return _VECTORIZED_RADIO


def set_vectorized_radio(enabled: bool) -> bool:
    """Toggle the vectorized radio update; returns the previous setting.

    .. deprecated:: use ``repro.runtime.configure(vectorized_radio=...)``;
       this shim delegates there so both APIs stay consistent.
    """
    return runtime.set_flag("vectorized_radio", enabled)


class vectorized_radio:
    """Context manager pinning the vectorized-radio switch."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.previous: Optional[bool] = None

    def __enter__(self) -> "vectorized_radio":
        self.previous = set_vectorized_radio(self.enabled)
        return self

    def __exit__(self, *exc) -> None:
        set_vectorized_radio(self.previous)


class TraceSimulator:
    """Synthesizes measurement traces for one operator/scenario/UE.

    Parameters mirror the paper's experiment axes: ``operator`` in
    {OpX, OpY, OpZ}, ``scenario`` in {urban, suburban, highway, indoor},
    ``mobility`` in {stationary, walking, driving, indoor}, ``modem``
    per Table 5, ``rat`` 4G/5G, ``dt_s`` 0.01 or 1.0, ``hour`` for the
    time-of-day load (the paper measures mostly at midnight), and
    ``band_lock`` to reproduce the band-locking runs ([C1], Fig 6).
    """

    def __init__(
        self,
        operator: Union[str, OperatorProfile] = "OpZ",
        scenario: str = "urban",
        mobility: Union[str, MobilityModel] = "driving",
        modem: Union[str, UECapability] = "X70",
        rat: str = "5G",
        dt_s: float = 1.0,
        hour: float = 0.5,
        area_m: float = 1_000.0,
        seed: int = 0,
        band_lock: Optional[Sequence[str]] = None,
        ca_enabled: bool = True,
        force_los: Optional[bool] = None,
        max_ccs_override: Optional[int] = None,
        deployment: Optional[Deployment] = None,
        candidate_refresh_s: float = 0.5,
    ) -> None:
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        self.operator = get_operator(operator) if isinstance(operator, str) else operator
        self.scenario = scenario
        self.mobility_name = mobility if isinstance(mobility, str) else type(mobility).__name__
        self.mobility = make_mobility(mobility) if isinstance(mobility, str) else mobility
        self._anchor_indoor = mobility == "indoor"
        self.ue = get_ue(modem) if isinstance(modem, str) else modem
        self.rat = rat
        self.dt_s = dt_s
        self.hour = hour
        self.seed = seed
        self.band_lock = set(band_lock) if band_lock else None
        self.ca_enabled = ca_enabled
        self.force_los = force_los
        self.candidate_refresh_s = max(candidate_refresh_s, dt_s)

        self.deployment = deployment or build_deployment(
            self.operator.channel_plans(),
            scenario=scenario if scenario != "indoor" else "urban",
            area_m=area_m,
            seed=seed,
            deploy_fraction=self.operator.fraction_for(scenario),
        )
        if rat == "5G":
            policy_fr1 = self.operator.max_ca_5g_fr1
            policy_fr2 = self.operator.max_ca_5g_fr2
        else:
            policy_fr1 = policy_fr2 = self.operator.max_ca_4g
        if max_ccs_override is not None:
            policy_fr1 = policy_fr2 = max_ccs_override
        self.ca = CAManager(
            self.deployment,
            self.ue,
            rat=rat,
            max_ccs_policy=policy_fr1,
            max_ccs_policy_fr2=policy_fr2,
            ca_enabled=ca_enabled,
        )
        self.scheduler = Scheduler(hour=hour, scenario=scenario, seed=seed + 7)
        if self._anchor_indoor:
            # place the building in the coverage hole between sites
            # (cell edge + wall loss), the Fig 27/28 indoor setting
            from .mobility import IndoorWalk

            stations = self.deployment.stations
            home = stations[0].position
            neighbours = sorted(
                (bs.position for bs in stations[1:]),
                key=lambda p: math.dist(p, home),
            )[:3]
            cluster = [home, *neighbours]
            hole = (
                sum(p[0] for p in cluster) / len(cluster),
                sum(p[1] for p in cluster) / len(cluster),
            )
            # ~60% of the way from the serving site toward the coverage
            # hole: indoors at the cell edge, but still home-site served
            anchor = (
                home[0] + 0.62 * (hole[0] - home[0]),
                home[1] + 0.62 * (hole[1] - home[1]),
            )
            self.mobility = IndoorWalk(start=anchor, area_m=50.0)

        self._rng = np.random.default_rng(seed)
        self._cell_state: Dict[int, _CellRadioState] = {}
        self._site_shadow: Dict[int, float] = {}
        self._band_shadow: Dict[Tuple[int, str], float] = {}
        self._candidates: List[Cell] = []
        self._cand_nrb_by_id: Dict[int, int] = {}
        self._since_refresh = math.inf

    # ------------------------------------------------------------------
    def _eligible(self, cell: Cell) -> bool:
        if cell.band.rat != self.rat:
            return False
        if self.band_lock is not None:
            return cell.band.name in self.band_lock or cell.channel_key in self.band_lock
        return True

    def _refresh_candidates(self, position: Tuple[float, float]) -> None:
        cells = [c for c in self.deployment.cells_near(position) if self._eligible(c)]
        self._candidates = cells
        alive = {c.cell_id for c in cells}
        for stale in [cid for cid in self._cell_state if cid not in alive]:
            del self._cell_state[stale]
        self._build_candidate_arrays()

    def _build_candidate_arrays(self) -> None:
        """Per-candidate constants, cached once per refresh.

        Everything here depends only on the candidate set (cell configs,
        3GPP table lookups, site/channel topology), not on the UE state,
        so the per-step vectorized update touches plain arrays only.
        """
        cells = self._candidates
        n = len(cells)
        self._cand_nrb_by_id = {
            c.cell_id: num_resource_blocks(c.bandwidth_mhz, c.scs_khz, c.band.rat) for c in cells
        }
        if not n:
            self._cand_pos = np.empty((0, 2))
            return
        self._cand_pos = np.array([c.position for c in cells], dtype=np.float64)
        self._cand_freq = np.array([c.band.freq_mhz for c in cells], dtype=np.float64)
        self._cand_nrb = np.array([self._cand_nrb_by_id[c.cell_id] for c in cells], dtype=np.float64)
        # per-RE transmit power: total power spread over all sub-carriers
        self._cand_per_re_tx = np.array(
            [c.tx_power_dbm for c in cells], dtype=np.float64
        ) - 10.0 * np.log10(self._cand_nrb * 12.0)
        self._cand_noise_mw = np.array(
            [10 ** (noise_power_dbm(c.scs_khz / 1e3) / 10.0) for c in cells], dtype=np.float64
        )
        self._cand_nrb_db = 10.0 * np.log10(self._cand_nrb)
        self._cand_indoor_pen = np.array(
            [indoor_penetration_loss_db(c.band.freq_mhz) for c in cells], dtype=np.float64
        )
        sites = [self.deployment.site_of(c) for c in cells]
        keys = [c.channel_key for c in cells]
        # interference adjacency: same channel, different site (summed as
        # a masked matvec so no cancellation-prone group subtraction)
        self._interf_mask = np.array(
            [
                [
                    1.0 if keys[j] == keys[i] and sites[j] != sites[i] else 0.0
                    for j in range(n)
                ]
                for i in range(n)
            ],
            dtype=np.float64,
        )

    def _shadow_db(self, cell: Cell, rho: float) -> float:
        """Correlated shadowing with shared site and band components."""
        site = self.deployment.site_of(cell)
        innovation = math.sqrt(max(1.0 - rho * rho, 0.0))

        def advance(store: dict, key) -> float:
            value = store.get(key)
            if value is None:
                value = self._rng.normal()
            else:
                value = rho * value + innovation * self._rng.normal()
            store[key] = value
            return value

        site_comp = advance(self._site_shadow, site)
        band_comp = advance(self._band_shadow, (site, cell.band.name))
        state = self._cell_state.setdefault(cell.cell_id, _CellRadioState())
        if not state.initialized:
            state.shadow_own = self._rng.normal()
        else:
            state.shadow_own = rho * state.shadow_own + innovation * self._rng.normal()
        w_site, w_band, w_own = _SHADOW_WEIGHTS
        mixed = (
            math.sqrt(w_site) * site_comp
            + math.sqrt(w_band) * band_comp
            + math.sqrt(w_own) * state.shadow_own
        )
        return _SHADOW_SIGMA_DB * mixed

    def _pathloss_db(
        self,
        cell: Cell,
        position: Tuple[float, float],
        indoor: bool,
        serving: bool = True,
    ) -> float:
        """Pathloss to a cell; ``force_los`` only applies to serving links.

        Interfering sites keep their distance-based LOS probability —
        standing in line of sight of one's own site does not put every
        neighbouring site in line of sight too.
        """
        distance = math.dist(position, cell.position)
        if indoor:
            los_weight = 0.0  # no line of sight through building walls
        elif serving and self.force_los is True:
            los_weight = 1.0
        elif serving and self.force_los is False:
            los_weight = 0.0
        else:
            los_weight = math.exp(-distance / _LOS_BLEND_M)
        pl = (
            los_weight * urban_macro_pathloss_db(distance, cell.band.freq_mhz, los=True)
            + (1.0 - los_weight) * urban_macro_pathloss_db(distance, cell.band.freq_mhz, los=False)
        )
        if indoor:
            pl += indoor_penetration_loss_db(cell.band.freq_mhz)
        return pl

    def _interference_dbm_per_re(self, cell: Cell, position: Tuple[float, float], indoor: bool) -> float:
        """Co-channel interference from same-channel cells at other sites."""
        total_mw = 0.0
        my_site = self.deployment.site_of(cell)
        for other in self._candidates:
            if other.channel_key != cell.channel_key:
                continue
            if self.deployment.site_of(other) == my_site:
                continue
            pl = self._pathloss_db(other, position, indoor, serving=False)
            n_rb = num_resource_blocks(other.bandwidth_mhz, other.scs_khz, other.band.rat)
            received = rsrp_dbm(other.tx_power_dbm, pl, n_rb=n_rb)
            total_mw += _CO_CHANNEL_ACTIVITY * 10 ** (received / 10.0)
        if total_mw <= 0.0:
            return -math.inf
        return 10.0 * math.log10(total_mw)

    # ------------------------------------------------------------------
    def _advance_radio_processes(self, state, rho: float) -> Tuple[np.ndarray, np.ndarray]:
        """Advance shadowing/fading for every candidate, in loop order.

        The AR(1) state updates draw from ``self._rng`` per candidate —
        site component, band component, own component, then fading — in
        exactly the order the scalar loop does, so both radio paths
        consume an identical RNG stream and cached traces stay
        reproducible across the toggle.
        """
        shadows = np.empty(len(self._candidates))
        fadings = np.empty(len(self._candidates))
        for idx, cell in enumerate(self._candidates):
            cs = self._cell_state.setdefault(cell.cell_id, _CellRadioState())
            if cs.fading is None:
                cs.fading = FastFadingProcess(sigma_db=1.5)
                cs.link = LinkAdapter(max_layers=self.ue.max_mimo_layers)
            shadow = self._shadow_db(cell, rho)
            if self.force_los is True:
                shadow *= 0.5  # LOS shadowing variance is much smaller
            cs.initialized = True
            shadows[idx] = shadow
            fadings[idx] = cs.fading.sample(
                self.dt_s, state.speed_mps, cell.band.freq_mhz, self._rng
            )
        return shadows, fadings

    def _radio_update_loop(self, state, rho: float) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, float]]:
        """Scalar per-cell radio update — the vectorized path's oracle."""
        rsrp_map: Dict[int, float] = {}
        sinr_map: Dict[int, float] = {}
        rsrq_map: Dict[int, float] = {}
        shadows, fadings = self._advance_radio_processes(state, rho)
        for idx, cell in enumerate(self._candidates):
            shadow = shadows[idx]
            fading = fadings[idx]
            pl = self._pathloss_db(cell, state.position, state.indoor)
            n_rb_cfg = num_resource_blocks(cell.bandwidth_mhz, cell.scs_khz, cell.band.rat)
            rsrp = rsrp_dbm(cell.tx_power_dbm, pl, shadow, fading, n_rb=n_rb_cfg)
            # noise over one RE (one sub-carrier of scs kHz)
            noise_re = noise_power_dbm(cell.scs_khz / 1e3)
            interference = self._interference_dbm_per_re(cell, state.position, state.indoor)
            signal_mw = 10 ** (rsrp / 10.0)
            noise_mw = 10 ** (noise_re / 10.0)
            interf_mw = 0.0 if interference == -math.inf else 10 ** (interference / 10.0)
            sinr = 10 * math.log10(signal_mw / (noise_mw + interf_mw))
            rssi_mw = (signal_mw + noise_mw + interf_mw) * 12 * n_rb_cfg
            rsrq = 10 * math.log10(n_rb_cfg) + rsrp - 10 * math.log10(rssi_mw)
            rsrp_map[cell.cell_id] = rsrp
            sinr_map[cell.cell_id] = sinr
            rsrq_map[cell.cell_id] = rsrq
        return rsrp_map, sinr_map, rsrq_map

    def _radio_update_vec(self, state, rho: float) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, float]]:
        """Array radio update over all candidates (one step, no per-cell math).

        Pathloss, RSRP/RSRQ/SINR, and the O(C^2) co-channel interference
        reduce to a handful of numpy expressions over the cached
        candidate arrays; only the AR(1) process updates stay per-cell
        (to preserve RNG draw order).  Matches :meth:`_radio_update_loop`
        per field to ~1e-9 dB (ulp-level transcendental differences).
        """
        if not self._candidates:
            return {}, {}, {}
        shadows, fadings = self._advance_radio_processes(state, rho)
        position = np.asarray(state.position, dtype=np.float64)
        # numeric core lives in the active compute backend (numpy is the
        # reference; numba JITs the same expressions) — the simulator
        # keeps the AR(1) process updates above to preserve RNG draw
        # order, and the dict packing below.
        rsrp, sinr, rsrq = backends.active().radio_step(
            position,
            bool(state.indoor),
            self.force_los,
            shadows,
            fadings,
            self._cand_pos,
            self._cand_freq,
            self._cand_per_re_tx,
            self._cand_noise_mw,
            self._cand_nrb,
            self._cand_nrb_db,
            self._cand_indoor_pen,
            self._interf_mask,
            _LOS_BLEND_M,
            _CO_CHANNEL_ACTIVITY,
        )

        rsrp_map: Dict[int, float] = {}
        sinr_map: Dict[int, float] = {}
        rsrq_map: Dict[int, float] = {}
        for idx, cell in enumerate(self._candidates):
            rsrp_map[cell.cell_id] = float(rsrp[idx])
            sinr_map[cell.cell_id] = float(sinr[idx])
            rsrq_map[cell.cell_id] = float(rsrq[idx])
        return rsrp_map, sinr_map, rsrq_map

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-run radio/CA state (called by :meth:`run`)."""
        self._since_refresh = math.inf
        self._step_index = 0
        self._obs_counts: Dict[str, int] = {}

    def _publish_obs_counts(self) -> None:
        """Bulk-publish the per-step tallies accumulated by :meth:`step`.

        Per-step ``obs.counter`` calls would take the registry lock
        hundreds of times per trace and show up in the bench's
        obs-overhead gate; :meth:`step` instead tallies into a plain
        dict and :meth:`run` (or the NSA driver) publishes once.
        """
        counts = getattr(self, "_obs_counts", None)
        if counts:
            for name, value in counts.items():
                obs.counter(name, value)
            counts.clear()

    def _begin_step(self, state) -> Tuple[int, float]:
        """Phase 1 of a step: advance time, refresh candidates, compute rho.

        Split out of :meth:`step` so the multi-UE driver
        (:mod:`repro.ran.multi_ue`) can run phase 1 for every lane, batch
        the radio update across lanes, then finish each lane with
        :meth:`_finish_step`.  ``step()`` composes the same three phases,
        so single-UE behavior is unchanged.
        """
        step = getattr(self, "_step_index", 0)
        self._step_index = step + 1
        moved = state.speed_mps * self.dt_s
        self._since_refresh += self.dt_s
        if self._since_refresh >= self.candidate_refresh_s:
            self._refresh_candidates(state.position)
            self._since_refresh = 0.0
        rho = math.exp(-max(moved, 1e-3) / _SHADOW_DECORR_M)
        return step, rho

    def step(self, state) -> TraceRecord:
        """Advance one sampling interval at the given UE kinematic state.

        Exposed separately from :meth:`run` so that multi-leg setups
        (NSA dual connectivity) can drive several simulators with one
        shared UE trajectory.
        """
        step, rho = self._begin_step(state)
        if _VECTORIZED_RADIO:
            rsrp_map, sinr_map, rsrq_map = self._radio_update_vec(state, rho)
        else:
            rsrp_map, sinr_map, rsrq_map = self._radio_update_loop(state, rho)
        return self._finish_step(step, state, rsrp_map, sinr_map, rsrq_map)

    def _finish_step(
        self,
        step: int,
        state,
        rsrp_map: Dict[int, float],
        sinr_map: Dict[int, float],
        rsrq_map: Dict[int, float],
    ) -> TraceRecord:
        """Phase 3 of a step: CA decision, link adaptation, the record."""
        if True:
            cell_by_id: Dict[int, Cell] = {c.cell_id: c for c in self._candidates}
            ca_state = self.ca.step(self.dt_s, rsrp_map, cell_by_id)

            if obs.metrics_enabled():
                counts = getattr(self, "_obs_counts", None)
                if counts is None:  # step() before any reset()/run()
                    counts = self._obs_counts = {}
                counts["sim.steps"] = counts.get("sim.steps", 0) + 1
                radio = "sim.radio.vectorized" if _VECTORIZED_RADIO else "sim.radio.loop"
                counts[radio] = counts.get(radio, 0) + 1
                for event in ca_state.events:
                    # events look like "scell_add:n78@3500"; bucket by kind
                    kind = f"sim.event.{event.split(':', 1)[0]}"
                    counts[kind] = counts.get(kind, 0) + 1

            cc_samples: List[CCSample] = []
            aggregate_bw_so_far = 0.0
            total_tput = 0.0
            for cc_id in ca_state.active_ids:
                cell = cell_by_id[cc_id]
                cs = self._cell_state[cc_id]
                penalty = self.ca.sinr_penalty_db(cc_id)
                effective_sinr = sinr_map[cc_id] - penalty
                base_layers = 4 if cell.band.frequency_range == "FR1" else 2
                if cell.band.rat == "4G":
                    base_layers = 2
                layer_cap = self.ca.layer_cap(cell, default_cap=base_layers)
                link = cs.link.step(effective_sinr, self._rng, max_layers=layer_cap)
                n_rb_cfg = self._cand_nrb_by_id.get(cc_id)
                if n_rb_cfg is None:  # active CC no longer in the candidate set
                    n_rb_cfg = num_resource_blocks(cell.bandwidth_mhz, cell.scs_khz, cell.band.rat)
                rb_fraction = self.scheduler.rb_fraction(
                    cc_id,
                    self.dt_s,
                    aggregate_bw_before_mhz=aggregate_bw_so_far,
                    cell_bw_mhz=cell.bandwidth_mhz,
                )
                n_rb = max(1, int(round(rb_fraction * n_rb_cfg)))
                tput = phy_throughput_mbps(
                    link.mcs,
                    n_rb,
                    link.rank,
                    cell.scs_khz,
                    bler=link.bler,
                    dl_duty=duplex_dl_duty(cell.band.duplex),
                )
                aggregate_bw_so_far += cell.bandwidth_mhz
                total_tput += tput
                cc_samples.append(
                    CCSample(
                        channel_key=cell.channel_key,
                        band_name=cell.band.name,
                        pci=cell.pci,
                        is_pcell=(cc_id == ca_state.pcell_id),
                        active=True,
                        rsrp_dbm=rsrp_map[cc_id],
                        rsrq_db=rsrq_map[cc_id],
                        sinr_db=effective_sinr,
                        cqi=link.cqi,
                        bler=link.bler,
                        n_rb=float(n_rb),
                        n_layers=link.rank,
                        mcs=link.mcs,
                        tput_mbps=tput,
                    )
                )

            return TraceRecord(
                t=step * self.dt_s,
                position=state.position,
                ccs=cc_samples,
                total_tput_mbps=total_tput,
                events=list(ca_state.events),
                indoor=state.indoor,
                speed_mps=state.speed_mps,
            )

    def run(self, duration_s: float, route_id: int = 0) -> Trace:
        """Simulate ``duration_s`` seconds and return the trace."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n_steps = max(1, int(round(duration_s / self.dt_s)))
        state = self.mobility.reset(self._rng)
        self.reset()
        records: List[TraceRecord] = []
        with obs.sample_window("simulate"), obs.span(
            "simulate.run",
            operator=self.operator.name,
            scenario=self.scenario,
            mobility=self.mobility_name,
            rat=self.rat,
            steps=n_steps,
            seed=self.seed,
        ):
            for _ in range(n_steps):
                state = self.mobility.step(self.dt_s, self._rng)
                records.append(self.step(state))
            self._publish_obs_counts()
        return Trace(
            records=records,
            dt_s=self.dt_s,
            operator=self.operator.name,
            scenario=self.scenario,
            mobility=self.mobility_name,
            modem=self.ue.modem,
            rat=self.rat,
            route_id=route_id,
            seed=self.seed,
        )


def simulate_stationary_ideal(
    operator: str = "OpZ",
    rat: str = "5G",
    duration_s: float = 60.0,
    dt_s: float = 1.0,
    modem: str = "X70",
    seed: int = 0,
    band_lock: Optional[Sequence[str]] = None,
    ca_enabled: bool = True,
    max_ccs_override: Optional[int] = None,
    distance_m: float = 60.0,
) -> Trace:
    """Ideal-channel-condition run: stationary, line-of-sight, near a site.

    Mirrors the paper's hot-spot baselines (Fig 1/Fig 23): UE parked
    close to a base station with LOS.
    """
    # Sparse bands (e.g. mmWave pockets) may be absent from a particular
    # random deployment; retry with shifted deployment seeds, as a field
    # team would simply drive to a covered block.
    sim = None
    eligible_sites: list = []
    for attempt in range(12):
        sim = TraceSimulator(
            operator=operator,
            scenario="urban",
            mobility=Stationary(position=(0.0, 0.0)),
            modem=modem,
            rat=rat,
            dt_s=dt_s,
            seed=seed + attempt * 7919,
            band_lock=band_lock,
            ca_enabled=ca_enabled,
            force_los=True,
            max_ccs_override=max_ccs_override,
        )
        eligible_sites = [
            bs for bs in sim.deployment.stations if any(sim._eligible(c) for c in bs.cells)
        ]
        if eligible_sites:
            break
    if not eligible_sites:
        raise ValueError("no site hosts an eligible cell for this band lock")
    site = min(eligible_sites, key=lambda bs: math.dist(bs.position, (0.0, 0.0)))
    sim.mobility = Stationary(position=(site.position[0] + distance_m, site.position[1]))
    return sim.run(duration_s)
