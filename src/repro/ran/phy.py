"""5G NR / 4G LTE physical-layer numerics.

Implements the PHY quantities the paper's §4.1 and Appendix B.1 build
on: numerology (SCS -> slot duration), resource-block counts per
channel bandwidth (TS 38.101-1 Table 5.3.2-1), the CQI and MCS tables
(TS 38.214 §5.1.3/§5.2.2, 256QAM variants), and the transport block
size (TBS) computation of TS 38.214 §5.1.3.2:

    N_info = N_re * R * Qm * v          (paper Eq. 1)

followed by the standard quantization to the final TBS, reproducing
Fig 9's TBS/MCS/#RE mapping.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

# ----------------------------------------------------------------------
# Numerology (TS 38.211 §4.2-4.3)
# ----------------------------------------------------------------------

#: slots per millisecond (subframe) for each sub-carrier spacing.
SLOTS_PER_MS: Dict[int, int] = {15: 1, 30: 2, 60: 4, 120: 8, 240: 16}

#: OFDM symbols per slot (normal cyclic prefix).
SYMBOLS_PER_SLOT = 14

#: sub-carriers per resource block.
SUBCARRIERS_PER_RB = 12


def slot_duration_s(scs_khz: int) -> float:
    """Slot duration in seconds for the given SCS."""
    if scs_khz not in SLOTS_PER_MS:
        raise ValueError(f"unsupported SCS {scs_khz} kHz")
    return 1e-3 / SLOTS_PER_MS[scs_khz]


# ----------------------------------------------------------------------
# Resource blocks per channel bandwidth (TS 38.101-1 Table 5.3.2-1,
# TS 36.101 Table 5.6-1 for LTE)
# ----------------------------------------------------------------------

#: (bandwidth MHz, SCS kHz) -> N_RB from the 3GPP transmission-bandwidth tables.
_NRB_TABLE: Dict[Tuple[float, int], int] = {
    # NR FR1, 15 kHz
    (5, 15): 25, (10, 15): 52, (15, 15): 79, (20, 15): 106,
    (25, 15): 133, (30, 15): 160, (40, 15): 216, (50, 15): 270,
    # NR FR1, 30 kHz
    (5, 30): 11, (10, 30): 24, (15, 30): 38, (20, 30): 51,
    (25, 30): 65, (30, 30): 78, (40, 30): 106, (50, 30): 133,
    (60, 30): 162, (70, 30): 189, (80, 30): 217, (90, 30): 245,
    (100, 30): 273,
    # NR FR1, 60 kHz
    (10, 60): 11, (20, 60): 24, (40, 60): 51, (60, 60): 79,
    (80, 60): 107, (100, 60): 135,
    # NR FR2, 120 kHz
    (50, 120): 32, (100, 120): 66, (200, 120): 132, (400, 120): 264,
}

#: LTE N_RB (SCS fixed at 15 kHz; narrower guard bands than NR).
_LTE_NRB_TABLE: Dict[float, int] = {1.4: 6, 3: 15, 5: 25, 10: 50, 15: 75, 20: 100}


def num_resource_blocks(bandwidth_mhz: float, scs_khz: int, rat: str = "5G") -> int:
    """Number of resource blocks for a channel (3GPP tables, exact)."""
    if rat == "4G":
        if bandwidth_mhz not in _LTE_NRB_TABLE:
            raise ValueError(f"unsupported LTE bandwidth {bandwidth_mhz} MHz")
        return _LTE_NRB_TABLE[bandwidth_mhz]
    key = (bandwidth_mhz, scs_khz)
    if key in _NRB_TABLE:
        return _NRB_TABLE[key]
    # Fallback: usable spectrum with ~2% guard per edge.
    n_rb = int(bandwidth_mhz * 1e3 * 0.96 / (SUBCARRIERS_PER_RB * scs_khz))
    if n_rb < 1:
        raise ValueError(f"bandwidth {bandwidth_mhz} MHz too narrow for SCS {scs_khz} kHz")
    return n_rb


# ----------------------------------------------------------------------
# MCS table (TS 38.214 Table 5.1.3.1-2, 256QAM) — index -> (Qm, R*1024)
# ----------------------------------------------------------------------

MCS_TABLE_256QAM: Tuple[Tuple[int, float], ...] = (
    (2, 120), (2, 193), (2, 308), (2, 449), (2, 602),
    (4, 378), (4, 434), (4, 490), (4, 553), (4, 616), (4, 658),
    (6, 466), (6, 517), (6, 567), (6, 616), (6, 666), (6, 719), (6, 772),
    (6, 822), (6, 873),
    (8, 682.5), (8, 711), (8, 754), (8, 797), (8, 841), (8, 885), (8, 916.5), (8, 948),
)

MAX_MCS_INDEX = len(MCS_TABLE_256QAM) - 1


def mcs_to_modulation_coding(mcs_index: int) -> Tuple[int, float]:
    """Return (modulation order Qm, code rate R) for an MCS index."""
    if not 0 <= mcs_index <= MAX_MCS_INDEX:
        raise ValueError(f"MCS index must be in [0, {MAX_MCS_INDEX}]")
    qm, r1024 = MCS_TABLE_256QAM[mcs_index]
    return qm, r1024 / 1024.0


def mcs_spectral_efficiency(mcs_index: int) -> float:
    """Bits per resource element for the MCS (Qm * R)."""
    qm, r = mcs_to_modulation_coding(mcs_index)
    return qm * r


# ----------------------------------------------------------------------
# CQI table (TS 38.214 Table 5.2.2.1-3, 256QAM) — index -> efficiency
# ----------------------------------------------------------------------

CQI_EFFICIENCY_256QAM: Tuple[float, ...] = (
    0.0,       # CQI 0: out of range
    0.1523, 0.3770, 0.8770,            # QPSK
    1.4766, 1.9141, 2.4063,            # 16QAM
    2.7305, 3.3223, 3.9023,            # 64QAM
    4.5234, 5.1152, 5.5547,            # 64/256QAM
    6.2266, 6.9141, 7.4063,            # 256QAM
)

MAX_CQI = len(CQI_EFFICIENCY_256QAM) - 1


#: CQI efficiencies (CQI 1..15) as a sorted array for binary search.
_CQI_EFF_SORTED = np.array(CQI_EFFICIENCY_256QAM[1:], dtype=np.float64)


def cqi_from_sinr(sinr_db: float) -> int:
    """Map SINR to CQI via the standard ~2 dB-per-step link abstraction.

    Uses the Shannon-gap approximation ``eff = log2(1 + SINR/gap)`` with a
    3 dB implementation gap, then picks the highest CQI whose efficiency
    is supported.  The efficiency table is strictly increasing, so the
    scan reduces to one binary search.
    """
    gap = 10 ** (3.0 / 10.0)
    capacity = math.log2(1.0 + 10 ** (sinr_db / 10.0) / gap)
    return int(np.searchsorted(_CQI_EFF_SORTED, capacity, side="right"))


def _cqi_from_sinr_scan(sinr_db: float) -> int:
    """Linear-scan reference for :func:`cqi_from_sinr` (equivalence tests)."""
    gap = 10 ** (3.0 / 10.0)
    capacity = math.log2(1.0 + 10 ** (sinr_db / 10.0) / gap)
    cqi = 0
    for index in range(1, MAX_CQI + 1):
        if CQI_EFFICIENCY_256QAM[index] <= capacity:
            cqi = index
    return cqi


#: MCS spectral efficiencies (Qm * R), strictly increasing over the table.
_MCS_EFF_SORTED = np.array(
    [qm * r1024 / 1024.0 for qm, r1024 in MCS_TABLE_256QAM], dtype=np.float64
)


def mcs_from_cqi(cqi: int) -> int:
    """Pick the highest MCS whose efficiency does not exceed the CQI's."""
    if not 0 <= cqi <= MAX_CQI:
        raise ValueError(f"CQI must be in [0, {MAX_CQI}]")
    target = CQI_EFFICIENCY_256QAM[cqi]
    return max(0, int(np.searchsorted(_MCS_EFF_SORTED, target + 1e-9, side="right")) - 1)


def _mcs_from_cqi_scan(cqi: int) -> int:
    """Linear-scan reference for :func:`mcs_from_cqi` (equivalence tests)."""
    if not 0 <= cqi <= MAX_CQI:
        raise ValueError(f"CQI must be in [0, {MAX_CQI}]")
    target = CQI_EFFICIENCY_256QAM[cqi]
    best = 0
    for index in range(MAX_MCS_INDEX + 1):
        if mcs_spectral_efficiency(index) <= target + 1e-9:
            best = index
    return best


# ----------------------------------------------------------------------
# TBS computation (TS 38.214 §5.1.3.2)
# ----------------------------------------------------------------------

#: TS 38.214 Table 5.1.3.2-1: allowed TBS values for N_info <= 3824.
_TBS_TABLE_SMALL: Tuple[int, ...] = (
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
    152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
    336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
    672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
    1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672,
    1736, 1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472,
    2536, 2600, 2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496,
    3624, 3752, 3824,
)

#: REs per PRB cap applied by the spec when computing N_info.
_MAX_RE_PER_PRB = 156

#: default DMRS + control overhead in REs per PRB per slot.
DEFAULT_OVERHEAD_RE_PER_PRB = 18


def resource_elements(
    n_prb: int,
    n_symbols: int = SYMBOLS_PER_SLOT,
    overhead_re_per_prb: int = DEFAULT_OVERHEAD_RE_PER_PRB,
) -> int:
    """Usable resource elements per slot for a PRB allocation.

    ``N_re = min(156, 12 * n_symbols - overhead) * n_prb`` per TS 38.214.
    """
    if n_prb < 0:
        raise ValueError("n_prb must be non-negative")
    if not 1 <= n_symbols <= SYMBOLS_PER_SLOT:
        raise ValueError(f"n_symbols must be in [1, {SYMBOLS_PER_SLOT}]")
    per_prb = SUBCARRIERS_PER_RB * n_symbols - overhead_re_per_prb
    per_prb = max(min(per_prb, _MAX_RE_PER_PRB), 0)
    return per_prb * n_prb


def transport_block_size(
    mcs_index: int,
    n_prb: int,
    n_layers: int = 1,
    n_symbols: int = SYMBOLS_PER_SLOT,
    overhead_re_per_prb: int = DEFAULT_OVERHEAD_RE_PER_PRB,
) -> int:
    """Transport block size in bits per slot (TS 38.214 §5.1.3.2).

    This is the quantizer of the paper's Eq. (1): ``N_info = N_re * R *
    Qm * v`` rounded to a standard-aligned TBS.
    """
    if not 1 <= n_layers <= 8:
        raise ValueError("n_layers must be in [1, 8]")
    n_re = resource_elements(n_prb, n_symbols, overhead_re_per_prb)
    if n_re == 0:
        return 0
    qm, r = mcs_to_modulation_coding(mcs_index)
    n_info = n_re * r * qm * n_layers
    if n_info <= 0:
        return 0
    if n_info <= 3824:
        n = max(3, int(math.floor(math.log2(n_info))) - 6)
        n_info_q = max(24, (1 << n) * (int(n_info) >> n))
        for tbs in _TBS_TABLE_SMALL:
            if tbs >= n_info_q:
                return tbs
        return _TBS_TABLE_SMALL[-1]
    n = int(math.floor(math.log2(n_info - 24))) - 5
    n_info_q = max(3840, (1 << n) * round((n_info - 24) / (1 << n)))
    if r <= 0.25:
        c = math.ceil((n_info_q + 24) / 3816)
    elif n_info_q > 8424:
        c = math.ceil((n_info_q + 24) / 8424)
    else:
        c = 1
    return int(8 * c * math.ceil((n_info_q + 24) / (8 * c)) - 24)


def phy_throughput_mbps(
    mcs_index: int,
    n_prb: int,
    n_layers: int,
    scs_khz: int,
    bler: float = 0.0,
    dl_duty: float = 1.0,
    n_symbols: int = SYMBOLS_PER_SLOT,
) -> float:
    """Sustained PHY-layer downlink throughput for one component carrier.

    ``TBS per slot x slots per second x (1 - BLER) x DL duty`` where the
    duty factor accounts for the TDD downlink share (1.0 for FDD).
    """
    if not 0.0 <= bler < 1.0:
        raise ValueError("bler must be in [0, 1)")
    if not 0.0 < dl_duty <= 1.0:
        raise ValueError("dl_duty must be in (0, 1]")
    tbs = transport_block_size(mcs_index, n_prb, n_layers, n_symbols)
    slots_per_second = SLOTS_PER_MS[scs_khz] * 1000
    return tbs * slots_per_second * (1.0 - bler) * dl_duty / 1e6


#: Typical TDD DL duty factor (e.g. DDDSU-style patterns give ~70-75% DL).
DEFAULT_TDD_DL_DUTY = 0.74


def duplex_dl_duty(duplex: str) -> float:
    """Downlink time share: 1.0 for FDD, ~0.74 for TDD patterns."""
    if duplex == "FDD":
        return 1.0
    if duplex == "TDD":
        return DEFAULT_TDD_DL_DUTY
    raise ValueError(f"unknown duplex mode {duplex!r}")
