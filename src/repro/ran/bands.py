"""3GPP frequency-band registry for the bands observed in the paper.

Table 6 of the paper lists every 4G ("b"-prefixed) and 5G ("n"-prefixed)
band the authors observed across the three US operators, with duplex
mode, carrier frequency and allowed channel bandwidths.  This module
encodes that table, plus band-class helpers (low/mid/high, FR1/FR2)
used throughout the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Band:
    """A 3GPP frequency band as deployed by one or more operators.

    Attributes
    ----------
    name:
        3GPP designation, e.g. ``"n41"`` (5G) or ``"b2"`` (4G).
    rat:
        Radio access technology, ``"4G"`` or ``"5G"``.
    duplex:
        ``"FDD"`` or ``"TDD"``.
    freq_mhz:
        Representative downlink carrier frequency in MHz.
    bandwidths_mhz:
        Channel bandwidths observed for this band (paper Table 6).
    scs_khz:
        Sub-carrier spacings usable on this band. 4G is fixed at 15 kHz;
        5G FR1 typically 15/30 kHz; FR2 120 kHz.
    """

    name: str
    rat: str
    duplex: str
    freq_mhz: float
    bandwidths_mhz: Tuple[float, ...]
    scs_khz: Tuple[int, ...] = (15,)

    def __post_init__(self) -> None:
        if self.rat not in ("4G", "5G"):
            raise ValueError(f"unknown RAT {self.rat!r}")
        if self.duplex not in ("FDD", "TDD"):
            raise ValueError(f"unknown duplex mode {self.duplex!r}")
        if not self.bandwidths_mhz:
            raise ValueError("band must allow at least one bandwidth")

    @property
    def is_5g(self) -> bool:
        return self.rat == "5G"

    @property
    def frequency_range(self) -> str:
        """5G frequency range: ``"FR1"`` (sub-7 GHz) or ``"FR2"`` (mmWave)."""
        return "FR2" if self.freq_mhz >= 24_000 else "FR1"

    @property
    def band_class(self) -> str:
        """Low (<1 GHz), mid (1-7 GHz) or high (mmWave) band."""
        if self.freq_mhz < 1_000:
            return "low"
        if self.freq_mhz < 7_100:
            return "mid"
        return "high"

    @property
    def max_bandwidth_mhz(self) -> float:
        return max(self.bandwidths_mhz)

    @property
    def default_scs_khz(self) -> int:
        """Preferred SCS as deployed in practice.

        FR2 uses 120 kHz; TDD FR1 (n41/n77) uses 30 kHz; FDD FR1 NR
        carriers (n25/n71/n5) are commonly run at 15 kHz (the paper's
        Fig 14 shows ~103 RBs on a 20 MHz n25, i.e. 15 kHz SCS); 4G is
        fixed at 15 kHz.
        """
        if self.frequency_range == "FR2":
            return max(self.scs_khz)
        if self.duplex == "TDD" and self.is_5g:
            return 30 if 30 in self.scs_khz else max(self.scs_khz)
        return min(self.scs_khz)


def _b(name: str, duplex: str, freq: float, bws: Tuple[float, ...]) -> Band:
    return Band(name, "4G", duplex, freq, bws, scs_khz=(15,))


def _n(name: str, duplex: str, freq: float, bws: Tuple[float, ...], scs: Tuple[int, ...]) -> Band:
    return Band(name, "5G", duplex, freq, bws, scs_khz=scs)


#: All bands observed in the paper's measurements (Table 6).
BAND_REGISTRY: Dict[str, Band] = {
    band.name: band
    for band in [
        # --- 4G LTE bands -------------------------------------------------
        _b("b2", "FDD", 1_900, (5, 10, 15, 20)),
        _b("b4", "FDD", 1_700, (10, 15, 20)),
        _b("b5", "FDD", 850, (10,)),
        _b("b12", "FDD", 700, (5, 10)),
        _b("b13", "FDD", 700, (10,)),
        _b("b14", "FDD", 700, (10,)),
        _b("b25", "FDD", 1_900, (5,)),
        _b("b29", "FDD", 700, (5,)),
        _b("b30", "FDD", 2_300, (5, 10)),
        _b("b41", "TDD", 2_500, (20,)),
        _b("b46", "TDD", 5_200, (20,)),
        _b("b48", "TDD", 3_600, (10, 20)),
        _b("b66", "FDD", 2_100, (5, 10, 15, 20)),
        _b("b71", "FDD", 600, (5,)),
        # --- 5G NR bands --------------------------------------------------
        _n("n5", "FDD", 850, (10,), (15, 30)),
        _n("n25", "FDD", 1_900, (20,), (15, 30)),
        _n("n41", "TDD", 2_500, (20, 40, 60, 100), (30,)),
        _n("n66", "FDD", 2_100, (5, 10), (15, 30)),
        _n("n71", "FDD", 600, (15, 20), (15, 30)),
        _n("n77", "TDD", 3_700, (40, 60, 100), (30,)),
        _n("n260", "TDD", 39_000, (100,), (120,)),
        _n("n261", "TDD", 28_000, (100,), (120,)),
    ]
}


def get_band(name: str) -> Band:
    """Look up a band by 3GPP name; raises ``KeyError`` with guidance."""
    try:
        return BAND_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(BAND_REGISTRY))
        raise KeyError(f"unknown band {name!r}; known bands: {known}") from None


def bands_for_rat(rat: str) -> List[Band]:
    """All registered bands for ``"4G"`` or ``"5G"``."""
    if rat not in ("4G", "5G"):
        raise ValueError(f"unknown RAT {rat!r}")
    return [band for band in BAND_REGISTRY.values() if band.rat == rat]
