"""Operator profiles matching the paper's OpX / OpY / OpZ observations.

Paper Table 2 and Appendix A.1:

* **OpX** — AT&T-like: 4G up to 5 CCs; 5G FR1 2CC (n77+n77, 120 MHz) and
  mmWave n260 up to 8 CCs; 5G CA prevalence ~24%, mmWave confined to
  dense urban pockets.
* **OpY** — Verizon-like: 4G up to 5 CCs; 5G FR1 2CC (n77+n77, 160 MHz,
  and n5+n77) and mmWave n261 up to 8 CCs; prevalence ~44%.
* **OpZ** — T-Mobile-like: aggressive FR1 re-farming; up to 4 CCs from
  n41/n41/n25/n71 (aggregate up to 180 MHz); prevalence ~86%, broad
  suburban/highway coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .cells import ChannelPlan


@dataclass(frozen=True)
class OperatorProfile:
    """Deployment policy for one (anonymized) operator."""

    name: str
    plans_4g: Tuple[ChannelPlan, ...]
    plans_5g: Tuple[ChannelPlan, ...]
    max_ca_4g: int
    max_ca_5g_fr1: int
    max_ca_5g_fr2: int
    #: per-scenario fraction of sites carrying each 5G band
    deploy_fraction: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def channel_plans(self) -> Tuple[ChannelPlan, ...]:
        return self.plans_4g + self.plans_5g

    def fraction_for(self, scenario: str) -> Dict[str, float]:
        return self.deploy_fraction.get(scenario, {})


OP_X = OperatorProfile(
    name="OpX",
    plans_4g=(
        ChannelPlan("b12", 10),
        ChannelPlan("b14", 10),
        ChannelPlan("b2", 20, per_site=2),
        ChannelPlan("b66", 20, per_site=2),
        ChannelPlan("b30", 10),
    ),
    plans_5g=(
        ChannelPlan("n5", 10),
        ChannelPlan("n77", 100),
        ChannelPlan("n77", 40),
        ChannelPlan("n260", 100, per_site=8),
    ),
    max_ca_4g=5,
    max_ca_5g_fr1=2,
    max_ca_5g_fr2=8,
    deploy_fraction={
        # not every site carries every LTE carrier (the source of the
        # paper's hundreds of distinct 4G CA combinations)
        "urban": {"n77": 0.45, "n260": 0.08, "n5": 0.8, "b12": 0.8, "b14": 0.6, "b30": 0.7, "b66": 0.9},
        "suburban": {"n77": 0.2, "n260": 0.0, "n5": 0.9, "b12": 0.9, "b14": 0.7, "b30": 0.5, "b66": 0.85},
        "highway": {"n77": 0.12, "n260": 0.0, "n5": 0.9, "b12": 0.9, "b14": 0.7, "b30": 0.4, "b66": 0.8},
        "indoor": {"n77": 0.4, "n260": 0.05, "n5": 0.9, "b12": 0.8, "b14": 0.6, "b30": 0.7, "b66": 0.9},
    },
)

OP_Y = OperatorProfile(
    name="OpY",
    plans_4g=(
        ChannelPlan("b13", 10),
        ChannelPlan("b5", 10),
        ChannelPlan("b4", 20, per_site=2),
        ChannelPlan("b2", 20),
        ChannelPlan("b66", 20, per_site=2),
    ),
    plans_5g=(
        ChannelPlan("n5", 10),
        ChannelPlan("n77", 100),
        ChannelPlan("n77", 60),
        ChannelPlan("n261", 100, per_site=8),
    ),
    max_ca_4g=5,
    max_ca_5g_fr1=2,
    max_ca_5g_fr2=8,
    deploy_fraction={
        "urban": {"n77": 0.6, "n261": 0.25, "n5": 0.85, "b5": 0.7, "b4": 0.85, "b66": 0.9},
        "suburban": {"n77": 0.35, "n261": 0.0, "n5": 0.9, "b5": 0.8, "b4": 0.8, "b66": 0.85},
        "highway": {"n77": 0.25, "n261": 0.0, "n5": 0.9, "b5": 0.8, "b4": 0.7, "b66": 0.8},
        "indoor": {"n77": 0.55, "n261": 0.1, "n5": 0.9, "b5": 0.7, "b4": 0.85, "b66": 0.9},
    },
)

OP_Z = OperatorProfile(
    name="OpZ",
    plans_4g=(
        ChannelPlan("b71", 5),
        ChannelPlan("b2", 20, per_site=2),
        ChannelPlan("b4", 20),
        ChannelPlan("b66", 20),
        ChannelPlan("b41", 20, per_site=2),
    ),
    plans_5g=(
        ChannelPlan("n71", 20),
        ChannelPlan("n25", 20),
        ChannelPlan("n41", 100),
        ChannelPlan("n41", 40),
    ),
    max_ca_4g=5,
    max_ca_5g_fr1=4,
    max_ca_5g_fr2=0,
    deploy_fraction={
        "urban": {"n41": 0.95, "n25": 0.9, "n71": 0.95, "b2": 0.85, "b4": 0.8, "b66": 0.85, "b41": 0.75},
        "suburban": {"n41": 0.75, "n25": 0.7, "n71": 0.95, "b2": 0.9, "b4": 0.8, "b66": 0.8, "b41": 0.6},
        "highway": {"n41": 0.55, "n25": 0.5, "n71": 0.95, "b2": 0.9, "b4": 0.7, "b66": 0.75, "b41": 0.5},
        "indoor": {"n41": 0.9, "n25": 0.85, "n71": 0.95, "b2": 0.85, "b4": 0.8, "b66": 0.85, "b41": 0.75},
    },
)

OPERATORS: Dict[str, OperatorProfile] = {op.name: op for op in (OP_X, OP_Y, OP_Z)}


def get_operator(name: str) -> OperatorProfile:
    """Look up an operator profile by anonymized name (OpX/OpY/OpZ)."""
    try:
        return OPERATORS[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; choose from {sorted(OPERATORS)}") from None
