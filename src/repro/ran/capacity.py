"""Theoretical channel capacity (paper Appendix B.1).

Computes the peak PHY-layer data rate of a channel or CA combination
from the TS 38.214 TBS machinery — the "theoretical calculation of PHY
throughput" referenced in §4.1 — and the headroom of measured traces
against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .bands import get_band
from .phy import (
    MAX_MCS_INDEX,
    duplex_dl_duty,
    num_resource_blocks,
    phy_throughput_mbps,
)


@dataclass(frozen=True)
class ChannelSpec:
    """A (band, bandwidth) channel for capacity computation."""

    band_name: str
    bandwidth_mhz: float
    n_layers: int = 4


def channel_capacity_mbps(spec: ChannelSpec, mcs_index: int = MAX_MCS_INDEX) -> float:
    """Peak sustained rate of one channel: top MCS, full RB allocation.

    Applies the band's duplex DL duty (TDD spends slots on uplink) and
    its default SCS.
    """
    band = get_band(spec.band_name)
    scs = band.default_scs_khz
    n_rb = num_resource_blocks(spec.bandwidth_mhz, scs, band.rat)
    layers = min(spec.n_layers, 2 if band.rat == "4G" else 4)
    return phy_throughput_mbps(
        mcs_index,
        n_rb,
        layers,
        scs,
        dl_duty=duplex_dl_duty(band.duplex),
    )


def aggregate_capacity_mbps(specs: Sequence[ChannelSpec]) -> float:
    """Upper bound of a CA combination: sum of per-CC capacities.

    This is the *theoretical* sum the paper's Fig 6 compares against —
    real aggregates fall short because of power splits, MIMO-layer
    reductions and RB throttling (see ``repro.ran.ca``).
    """
    if not specs:
        raise ValueError("need at least one channel")
    return sum(channel_capacity_mbps(spec) for spec in specs)


def utilization(measured_mbps: float, specs: Sequence[ChannelSpec]) -> float:
    """Measured throughput as a fraction of the theoretical capacity."""
    capacity = aggregate_capacity_mbps(specs)
    if measured_mbps < 0:
        raise ValueError("measured throughput must be non-negative")
    return measured_mbps / capacity
