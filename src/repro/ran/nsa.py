"""NSA (EN-DC) dual connectivity: 4G anchor + 5G NR leg.

The paper (§2.1) frames NSA dual connectivity as a form of "CA at the
PDCP layer": user traffic is split between 4G LTE carriers (which may
themselves aggregate up to 5 CCs) and 5G NR carriers, then merged
above RLC.  This module composes two :class:`TraceSimulator` legs over
one shared UE trajectory and deployment:

* the **LTE anchor** must be connected for the NR leg to exist (the
  defining NSA property — losing LTE drops everything);
* the **NR leg** is added when its best cell's filtered RSRP exceeds a
  B1-style threshold and released below it (with hysteresis), which is
  what makes OpX/OpY phones "fall back to 4G" indoors (paper Fig 27);
* merged throughput pays a small **PDCP split efficiency** cost for
  reordering across legs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from .. import obs
from .cells import build_deployment
from .mobility import MobilityModel, make_mobility
from .operators import OperatorProfile, get_operator
from .simulator import TraceSimulator
from .traces import Trace, TraceRecord
from .ue import UECapability, get_ue


@dataclass
class NSAConfig:
    """EN-DC control parameters."""

    nr_add_threshold_dbm: float = -110.0  #: B1 threshold to add the NR leg
    nr_release_margin_db: float = 6.0
    time_to_trigger_s: float = 0.32
    pdcp_split_efficiency: float = 0.95  #: merged-throughput efficiency

    def __post_init__(self) -> None:
        if not 0.0 < self.pdcp_split_efficiency <= 1.0:
            raise ValueError("pdcp_split_efficiency must be in (0, 1]")


class DualConnectivitySimulator:
    """Simulate an NSA UE: LTE anchor leg + NR secondary leg."""

    def __init__(
        self,
        operator: Union[str, OperatorProfile] = "OpX",
        scenario: str = "urban",
        mobility: Union[str, MobilityModel] = "driving",
        modem: Union[str, UECapability] = "X70",
        dt_s: float = 1.0,
        seed: int = 0,
        area_m: float = 1_000.0,
        config: Optional[NSAConfig] = None,
        hour: float = 0.5,
    ) -> None:
        self.operator = get_operator(operator) if isinstance(operator, str) else operator
        self.ue = get_ue(modem) if isinstance(modem, str) else modem
        self.config = config or NSAConfig()
        self.dt_s = dt_s
        self.seed = seed
        self.scenario = scenario
        self.mobility_name = mobility if isinstance(mobility, str) else type(mobility).__name__
        self.mobility = make_mobility(mobility) if isinstance(mobility, str) else mobility
        self._rng = np.random.default_rng(seed)

        # one deployment shared by both legs (co-sited 4G/5G, as deployed)
        deployment = build_deployment(
            self.operator.channel_plans(),
            scenario=scenario if scenario != "indoor" else "urban",
            area_m=area_m,
            seed=seed,
            deploy_fraction=self.operator.fraction_for(scenario),
        )
        self.lte = TraceSimulator(
            operator=self.operator, scenario=scenario, mobility=self.mobility,
            modem=self.ue, rat="4G", dt_s=dt_s, seed=seed + 1, deployment=deployment,
            hour=hour,
        )
        self.nr = TraceSimulator(
            operator=self.operator, scenario=scenario, mobility=self.mobility,
            modem=self.ue, rat="5G", dt_s=dt_s, seed=seed + 2, deployment=deployment,
            hour=hour,
        )
        if mobility == "indoor":
            # same in-coverage-but-NLOS anchoring as TraceSimulator
            from .mobility import IndoorWalk

            site = deployment.stations[0].position
            self.mobility = IndoorWalk(start=(site[0] + 200.0, site[1]), area_m=60.0)
        self._nr_attached = False
        self._nr_timer = 0.0

    # ------------------------------------------------------------------
    def _nr_leg_decision(self, nr_record: TraceRecord, lte_connected: bool) -> List[str]:
        """B1-style NR leg add/release; returns EN-DC events."""
        events: List[str] = []
        best_nr = max(
            (cc.rsrp_dbm for cc in nr_record.ccs if cc.active), default=-math.inf
        )
        threshold = self.config.nr_add_threshold_dbm
        if not lte_connected:
            if self._nr_attached:
                events.append("nr_leg_release:anchor_lost")
            self._nr_attached = False
            self._nr_timer = 0.0
            return events
        if self._nr_attached:
            if best_nr < threshold - self.config.nr_release_margin_db:
                self._nr_timer += self.dt_s
                if self._nr_timer >= self.config.time_to_trigger_s:
                    self._nr_attached = False
                    self._nr_timer = 0.0
                    events.append("nr_leg_release:b1_low")
            else:
                self._nr_timer = 0.0
        else:
            if best_nr > threshold:
                self._nr_timer += self.dt_s
                if self._nr_timer >= self.config.time_to_trigger_s:
                    self._nr_attached = True
                    self._nr_timer = 0.0
                    events.append("nr_leg_add:b1_high")
            else:
                self._nr_timer = 0.0
        return events

    # ------------------------------------------------------------------
    def run(self, duration_s: float, route_id: int = 0) -> Trace:
        """Simulate an EN-DC session; returns a merged trace (rat="NSA")."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n_steps = max(1, int(round(duration_s / self.dt_s)))
        state = self.mobility.reset(self._rng)
        self.lte.reset()
        self.nr.reset()
        self._nr_attached = False
        self._nr_timer = 0.0

        with obs.span(
            "simulate.nsa_run",
            operator=self.operator.name,
            scenario=self.scenario,
            mobility=self.mobility_name,
            steps=n_steps,
            seed=self.seed,
        ):
            records = self._run_steps(n_steps, state)
            # the legs are driven through step() directly, so their
            # per-step tallies are published here, not by their run()
            self.lte._publish_obs_counts()
            self.nr._publish_obs_counts()
        return Trace(
            records=records,
            dt_s=self.dt_s,
            operator=self.operator.name,
            scenario=self.scenario,
            mobility=self.mobility_name,
            modem=self.ue.modem,
            rat="NSA",
            route_id=route_id,
            seed=self.seed,
        )

    def _run_steps(self, n_steps: int, state) -> List[TraceRecord]:
        records: List[TraceRecord] = []
        for _ in range(n_steps):
            state = self.mobility.step(self.dt_s, self._rng)
            lte_record = self.lte.step(state)
            nr_record = self.nr.step(state)
            lte_connected = lte_record.n_active_ccs > 0
            events = list(lte_record.events)
            events += self._nr_leg_decision(nr_record, lte_connected)

            ccs = [cc for cc in lte_record.ccs if cc.active]
            total = lte_record.total_tput_mbps
            if self._nr_attached and nr_record.n_active_ccs:
                events += nr_record.events
                nr_ccs = [cc for cc in nr_record.ccs if cc.active]
                # NR cells join as secondary-group cells (no second PCell)
                for cc in nr_ccs:
                    cc.is_pcell = False
                ccs = ccs + nr_ccs
                total = (
                    lte_record.total_tput_mbps + nr_record.total_tput_mbps
                ) * self.config.pdcp_split_efficiency

            records.append(
                TraceRecord(
                    t=lte_record.t,
                    position=state.position,
                    ccs=ccs,
                    total_tput_mbps=total,
                    events=events,
                    indoor=state.indoor,
                    speed_mps=state.speed_mps,
                )
            )
        return records

    def nr_attachment_ratio(self, trace: Trace) -> float:
        """Fraction of samples where the NR leg carried traffic."""
        if not trace.records:
            raise ValueError("empty trace")
        with_nr = sum(
            1
            for rec in trace.records
            if any(cc.band_name.startswith("n") for cc in rec.ccs if cc.active)
        )
        return with_nr / len(trace.records)
