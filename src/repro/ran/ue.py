"""User-equipment (modem) capability model.

Paper Table 5 + Fig 29: CA depends not only on the network but on the
handset.  The Samsung S10 (Snapdragon X50) does not support SA 5G CA at
all; the S21 (X60) supports 2CC; the S22 (X65) up to 3CC; the S23 (X70)
up to 4CC FR1.  mmWave 8CC requires X55 or later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class UECapability:
    """What a modem supports for carrier aggregation."""

    modem: str
    phone_model: str
    max_ca_5g_fr1: int  #: max FR1 component carriers in SA mode
    max_ca_5g_fr2: int  #: max mmWave component carriers
    max_ca_4g: int
    max_mimo_layers: int = 4

    def cap_ccs(self, frequency_range: str, rat: str = "5G") -> int:
        """Maximum usable CC count for a RAT/frequency range."""
        if rat == "4G":
            return self.max_ca_4g
        return self.max_ca_5g_fr2 if frequency_range == "FR2" else self.max_ca_5g_fr1


UE_REGISTRY: Dict[str, UECapability] = {
    ue.modem: ue
    for ue in [
        UECapability("X50", "Galaxy S10", max_ca_5g_fr1=1, max_ca_5g_fr2=4, max_ca_4g=5),
        UECapability("X55", "Galaxy S20 Ultra", max_ca_5g_fr1=2, max_ca_5g_fr2=8, max_ca_4g=5),
        UECapability("X60", "Galaxy S21 Ultra", max_ca_5g_fr1=2, max_ca_5g_fr2=8, max_ca_4g=5),
        UECapability("X65", "Galaxy S22", max_ca_5g_fr1=3, max_ca_5g_fr2=8, max_ca_4g=5),
        UECapability("X70", "Galaxy S23", max_ca_5g_fr1=4, max_ca_5g_fr2=8, max_ca_4g=5),
    ]
}


def get_ue(modem: str) -> UECapability:
    """Look up a modem capability profile (X50..X70)."""
    try:
        return UE_REGISTRY[modem]
    except KeyError:
        raise KeyError(f"unknown modem {modem!r}; choose from {sorted(UE_REGISTRY)}") from None
