"""Carrier-aggregation control: PCell selection, SCell add/release.

Implements the RRC-level behaviour the paper dissects in §3-§4:

* **PCell selection/change** — strongest (L3-filtered) cell wins, with
  a hysteresis so the PCell doesn't ping-pong; low-band FDD naturally
  becomes PCell indoors because of its lower pathloss (Fig 28).
* **SCell management** — A4-style events: a candidate whose filtered
  RSRP stays above ``add_threshold`` for a time-to-trigger is added;
  an SCell whose RSRP stays below ``add_threshold - remove_margin``
  for the TTT is released.  The number of aggregated CCs is capped by
  min(operator policy, UE capability) (Fig 29).
* **CA performance coupling** — when multiple co-sited carriers are
  aggregated, per-CC transmit power drops (shared PA budget) which
  lowers SINR and the achievable MIMO rank on SCells: the mechanism
  behind Fig 14 (n25 falls from 3 layers alone to 1 layer in CA), and
  the sub-additivity of Fig 6.
* **Event log** — every add/release/change is emitted as an RRC event
  string; these are exactly the signaling inputs Prism5G consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .cells import Cell, Deployment
from .ue import UECapability


@dataclass
class CAState:
    """CA configuration after one control step."""

    pcell_id: Optional[int]
    scell_ids: List[int] = field(default_factory=list)
    events: List[str] = field(default_factory=list)

    @property
    def active_ids(self) -> List[int]:
        return ([self.pcell_id] if self.pcell_id is not None else []) + self.scell_ids

    @property
    def n_ccs(self) -> int:
        return len(self.active_ids)


class CAManager:
    """Stateful carrier-aggregation controller for a single UE."""

    def __init__(
        self,
        deployment: Deployment,
        ue: UECapability,
        rat: str = "5G",
        max_ccs_policy: int = 4,
        max_ccs_policy_fr2: Optional[int] = None,
        serve_threshold_dbm: float = -114.0,
        add_threshold_dbm: float = -108.0,
        remove_margin_db: float = 6.0,
        pcell_hysteresis_db: float = 4.0,
        time_to_trigger_s: float = 0.64,
        l3_filter_alpha: float = 0.5,
        power_split_db_per_cc: float = 1.8,
        max_power_split_db: float = 6.0,
        scell_layer_cap: int = 2,
        ca_enabled: bool = True,
    ) -> None:
        if rat not in ("4G", "5G"):
            raise ValueError(f"unknown RAT {rat!r}")
        self.deployment = deployment
        self.ue = ue
        self.rat = rat
        self.max_ccs_policy = max_ccs_policy
        self.max_ccs_policy_fr2 = max_ccs_policy if max_ccs_policy_fr2 is None else max_ccs_policy_fr2
        self.max_power_split_db = max_power_split_db
        self.serve_threshold = serve_threshold_dbm
        self.add_threshold = add_threshold_dbm
        self.remove_threshold = add_threshold_dbm - remove_margin_db
        self.pcell_hysteresis = pcell_hysteresis_db
        self.ttt_s = time_to_trigger_s
        self.l3_alpha = l3_filter_alpha
        self.power_split_db_per_cc = power_split_db_per_cc
        self.scell_layer_cap = scell_layer_cap
        self.ca_enabled = ca_enabled

        self._filtered: Dict[int, float] = {}
        self._add_timers: Dict[int, float] = {}
        self._remove_timers: Dict[int, float] = {}
        self._state = CAState(pcell_id=None)

    # ------------------------------------------------------------------
    @property
    def state(self) -> CAState:
        return self._state

    def _max_ccs(self, cells: Dict[int, Cell]) -> int:
        """Effective CC cap: operator policy x UE capability (per FR)."""
        if self._state.pcell_id is not None and self._state.pcell_id in cells:
            fr = cells[self._state.pcell_id].band.frequency_range
        else:
            fr = "FR1"
        policy = self.max_ccs_policy_fr2 if fr == "FR2" else self.max_ccs_policy
        return max(1, min(policy, self.ue.cap_ccs(fr, self.rat)))

    def _filter_rsrp(self, raw: Dict[int, float]) -> Dict[int, float]:
        """3GPP L3 exponential filtering of raw RSRP measurements."""
        out = {}
        for cell_id, value in raw.items():
            previous = self._filtered.get(cell_id)
            if previous is None:
                out[cell_id] = value
            else:
                out[cell_id] = self.l3_alpha * value + (1 - self.l3_alpha) * previous
        self._filtered = dict(out)
        return out

    @staticmethod
    def _pcell_preference(cell: Cell, rsrp: float) -> float:
        """Scalar preference score for PCell candidates (higher wins).

        Operators prioritize capacity layers when their signal is good
        enough: mmWave above -90 dBm, then wide mid-band above -100 dBm,
        with low-band as the coverage fallback (this is what makes n71
        the indoor PCell in Fig 28).  Tier steps (200) dominate RSRP, so
        the dB hysteresis only matters within a tier.
        """
        if cell.band.band_class == "high":
            tier = 3 if rsrp > -90.0 else 0
        elif cell.band.band_class == "mid":
            tier = 2 if rsrp > -97.0 else 0
        else:
            tier = 1
        bandwidth_bonus = 0.25 * cell.bandwidth_mhz if tier >= 2 else 0.0
        return tier * 200.0 + bandwidth_bonus + rsrp

    # ------------------------------------------------------------------
    def step(self, dt_s: float, cell_rsrp: Dict[int, float], cells: Dict[int, Cell]) -> CAState:
        """Advance one control interval.

        Parameters
        ----------
        dt_s:
            Interval duration (controls TTT accumulation).
        cell_rsrp:
            Raw RSRP of every *candidate* cell (already filtered for
            band locks / RAT by the caller).
        cells:
            Cell objects keyed by id for every candidate.
        """
        events: List[str] = []
        filtered = self._filter_rsrp(cell_rsrp)

        # drop cells that vanished from coverage
        for stale in list(self._add_timers):
            if stale not in filtered:
                del self._add_timers[stale]
        for stale in list(self._remove_timers):
            if stale not in filtered:
                del self._remove_timers[stale]

        # ---------------- PCell ------------------------------------------
        pcell_id = self._state.pcell_id
        servable = {cid: r for cid, r in filtered.items() if r > self.serve_threshold}
        if pcell_id is not None and pcell_id not in servable:
            if pcell_id in [s for s in self._state.scell_ids]:
                pass
            events.append(f"pcell_loss:{cells.get(pcell_id).channel_key if pcell_id in cells else pcell_id}")
            pcell_id = None
        if servable:
            best_id = max(
                servable,
                key=lambda cid: self._pcell_preference(cells[cid], servable[cid]),
            )
            if pcell_id is None:
                pcell_id = best_id
                events.append(f"pcell_change:{cells[pcell_id].channel_key}")
            elif best_id != pcell_id:
                current_pref = self._pcell_preference(cells[pcell_id], servable.get(pcell_id, -999.0))
                best_pref = self._pcell_preference(cells[best_id], servable[best_id])
                if best_pref > current_pref + self.pcell_hysteresis:
                    pcell_id = best_id
                    events.append(f"pcell_change:{cells[pcell_id].channel_key}")
        else:
            pcell_id = None

        # ---------------- SCells -----------------------------------------
        scells = [s for s in self._state.scell_ids if s in filtered and s != pcell_id]
        released_on_pcell_change = pcell_id != self._state.pcell_id and self._state.pcell_id is not None
        if released_on_pcell_change:
            for scell in scells:
                events.append(f"scell_release:{cells[scell].channel_key}")
            scells = []
            self._add_timers.clear()
            self._remove_timers.clear()

        if pcell_id is None or not self.ca_enabled:
            for scell in scells:
                events.append(f"scell_release:{cells[scell].channel_key}")
            scells = []
        else:
            max_ccs = self._max_ccs(cells)
            pcell_fr = cells[pcell_id].band.frequency_range
            pcell_site = self.deployment.site_of(cells[pcell_id])

            # release weak SCells after TTT
            kept: List[int] = []
            for scell in scells:
                if filtered[scell] < self.remove_threshold:
                    self._remove_timers[scell] = self._remove_timers.get(scell, 0.0) + dt_s
                    if self._remove_timers[scell] >= self.ttt_s:
                        events.append(f"scell_release:{cells[scell].channel_key}")
                        self._remove_timers.pop(scell, None)
                        continue
                else:
                    self._remove_timers.pop(scell, None)
                kept.append(scell)
            scells = kept

            # add strong candidates after TTT (same frequency range,
            # co-sited with the PCell — the common deployment constraint)
            candidates = [
                cid
                for cid, rsrp in filtered.items()
                if cid != pcell_id
                and cid not in scells
                and rsrp > self.add_threshold
                and cells[cid].band.frequency_range == pcell_fr
                and self.deployment.site_of(cells[cid]) == pcell_site
            ]
            for cid in list(self._add_timers):
                if cid not in candidates:
                    del self._add_timers[cid]
            candidates.sort(key=lambda cid: filtered[cid], reverse=True)
            for cid in candidates:
                self._add_timers[cid] = self._add_timers.get(cid, 0.0) + dt_s
                if len(scells) + 1 >= max_ccs:
                    continue
                if self._add_timers[cid] >= self.ttt_s:
                    scells.append(cid)
                    events.append(f"scell_add:{cells[cid].channel_key}")
                    del self._add_timers[cid]

            # enforce the cap (capability may shrink after a PCell move)
            while len(scells) + 1 > max_ccs:
                dropped = min(scells, key=lambda cid: filtered[cid])
                scells.remove(dropped)
                events.append(f"scell_release:{cells[dropped].channel_key}")

        self._state = CAState(pcell_id=pcell_id, scell_ids=scells, events=events)
        return self._state

    # ------------------------------------------------------------------
    # CA performance coupling (power split, layer caps)
    # ------------------------------------------------------------------
    def sinr_penalty_db(self, cell_id: int) -> float:
        """Per-CC SINR penalty from sharing the site PA across CCs.

        Zero when only one CC is active; grows with the number of
        co-sited active CCs up to ``max_power_split_db``.  The PCell is
        partially protected (it carries control signalling).
        """
        active = self._state.active_ids
        if cell_id not in active or len(active) <= 1:
            return 0.0
        penalty = min(self.power_split_db_per_cc * (len(active) - 1), self.max_power_split_db)
        if cell_id == self._state.pcell_id:
            penalty *= 0.4
        return penalty

    def layer_cap(self, cell: Cell, default_cap: int = 4) -> int:
        """Maximum MIMO layers for a CC under the current CA state.

        The PCell keeps its full rank.  Narrow FDD SCells lose layers
        first when power is split — with >= 3 CCs they fall to a single
        layer, reproducing Fig 14 (n25: 3 layers alone -> 1 in CA).
        Wide TDD mid-band SCells retain ``scell_layer_cap`` + 1.
        """
        cap = min(default_cap, self.ue.max_mimo_layers)
        if cell.cell_id == self._state.pcell_id or len(self._state.active_ids) <= 1:
            return cap
        cc_count = len(self._state.active_ids)
        if cell.band.duplex == "FDD":
            cell_cap = self.scell_layer_cap if cc_count < 3 else 1
        else:
            cell_cap = self.scell_layer_cap + 1 if cc_count < 3 else self.scell_layer_cap
        return max(1, min(cap, cell_cap))
