"""UE mobility models: stationary, walking, driving, indoor walking.

Matches the paper's measurement settings (Table 1): stationary hot-spot
baselines, urban walking, and driving across urban / suburban / beltway
routes (with traffic-light stops in urban areas — footnote 6 notes CC
changes happen more often on highways because of speed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class UEState:
    """Instantaneous kinematic state of the UE."""

    position: Tuple[float, float]
    speed_mps: float
    indoor: bool = False


class MobilityModel:
    """Base class: ``step(dt, rng)`` advances and returns the new state."""

    def reset(self, rng: np.random.Generator) -> UEState:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self, dt_s: float, rng: np.random.Generator) -> UEState:  # pragma: no cover - abstract
        raise NotImplementedError


class Stationary(MobilityModel):
    """Fixed position (ideal-condition hot-spot measurements)."""

    def __init__(self, position: Tuple[float, float] = (0.0, 0.0), indoor: bool = False) -> None:
        self.position = position
        self.indoor = indoor
        self._state = UEState(position, 0.0, indoor)

    def reset(self, rng: np.random.Generator) -> UEState:
        self._state = UEState(self.position, 0.0, self.indoor)
        return self._state

    def step(self, dt_s: float, rng: np.random.Generator) -> UEState:
        return self._state


class RandomWalk(MobilityModel):
    """Pedestrian random waypointless walk (~1.4 m/s, smooth heading)."""

    def __init__(
        self,
        start: Tuple[float, float] = (0.0, 0.0),
        speed_mps: float = 1.4,
        heading_sigma: float = 0.3,
        area_m: Optional[float] = 1_000.0,
        indoor: bool = False,
    ) -> None:
        if speed_mps < 0:
            raise ValueError("speed must be non-negative")
        self.start = start
        self.speed = speed_mps
        self.heading_sigma = heading_sigma
        self.area_m = area_m
        self.indoor = indoor
        self._position = np.array(start, dtype=np.float64)
        self._heading = 0.0

    def reset(self, rng: np.random.Generator) -> UEState:
        self._position = np.array(self.start, dtype=np.float64)
        self._heading = rng.uniform(0, 2 * math.pi)
        return UEState(tuple(self._position), self.speed, self.indoor)

    def step(self, dt_s: float, rng: np.random.Generator) -> UEState:
        self._heading += rng.normal(0.0, self.heading_sigma * math.sqrt(dt_s))
        delta = self.speed * dt_s
        self._position += (delta * math.cos(self._heading), delta * math.sin(self._heading))
        if self.area_m is not None:
            # reflect at the area boundary to stay in coverage
            for axis in range(2):
                if self._position[axis] < 0:
                    self._position[axis] = -self._position[axis]
                    self._heading += math.pi / 2
                elif self._position[axis] > self.area_m:
                    self._position[axis] = 2 * self.area_m - self._position[axis]
                    self._heading += math.pi / 2
        return UEState(tuple(self._position), self.speed, self.indoor)


class DrivingRoute(MobilityModel):
    """Waypoint-following drive with speed variation and urban stops."""

    def __init__(
        self,
        waypoints: Optional[Tuple[Tuple[float, float], ...]] = None,
        speed_mps: float = 12.0,
        stop_probability_per_min: float = 1.5,
        stop_duration_s: float = 20.0,
        loop: bool = True,
    ) -> None:
        if waypoints is not None and len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        self.waypoints = waypoints or ((0.0, 0.0), (800.0, 0.0), (800.0, 800.0), (0.0, 800.0))
        self.cruise_speed = speed_mps
        self.stop_rate = stop_probability_per_min / 60.0
        self.stop_duration_s = stop_duration_s
        self.loop = loop
        self._segment = 0
        self._position = np.array(self.waypoints[0], dtype=np.float64)
        self._stopped_until = 0.0
        self._clock = 0.0

    def reset(self, rng: np.random.Generator) -> UEState:
        self._segment = 0
        self._position = np.array(self.waypoints[0], dtype=np.float64)
        self._stopped_until = 0.0
        self._clock = 0.0
        return UEState(tuple(self._position), self.cruise_speed)

    def step(self, dt_s: float, rng: np.random.Generator) -> UEState:
        self._clock += dt_s
        if self._clock < self._stopped_until:
            return UEState(tuple(self._position), 0.0)
        if self.stop_rate > 0 and rng.random() < self.stop_rate * dt_s:
            self._stopped_until = self._clock + self.stop_duration_s * rng.uniform(0.5, 1.5)
            return UEState(tuple(self._position), 0.0)
        speed = max(self.cruise_speed * rng.uniform(0.8, 1.15), 0.0)
        remaining = speed * dt_s
        while remaining > 0:
            target = np.array(self.waypoints[(self._segment + 1) % len(self.waypoints)])
            to_target = target - self._position
            distance = float(np.linalg.norm(to_target))
            if distance <= remaining:
                self._position = target.copy()
                remaining -= distance
                self._segment += 1
                if not self.loop and self._segment >= len(self.waypoints) - 1:
                    break
            else:
                self._position += to_target / distance * remaining
                remaining = 0.0
        return UEState(tuple(self._position), speed)


class IndoorWalk(RandomWalk):
    """Walking inside a building (higher penetration loss, small area)."""

    def __init__(self, start: Tuple[float, float] = (200.0, 200.0), area_m: float = 80.0) -> None:
        super().__init__(start=start, speed_mps=1.0, heading_sigma=0.6, area_m=None, indoor=True)
        self._anchor = np.array(start, dtype=np.float64)
        self.room_m = area_m

    def step(self, dt_s: float, rng: np.random.Generator) -> UEState:
        super().step(dt_s, rng)  # advances self._position/_heading
        # keep within the building footprint around the anchor
        offset = self._position - self._anchor
        radius = float(np.linalg.norm(offset))
        if radius > self.room_m:
            self._position = self._anchor + offset / radius * self.room_m
            self._heading += math.pi
        return UEState(tuple(self._position), self.speed, indoor=True)


def make_mobility(kind: str, **kwargs) -> MobilityModel:
    """Factory: ``stationary`` / ``walking`` / ``driving`` / ``indoor``."""
    factories = {
        "stationary": Stationary,
        "walking": RandomWalk,
        "driving": DrivingRoute,
        "indoor": IndoorWalk,
    }
    if kind not in factories:
        raise ValueError(f"unknown mobility {kind!r}; choose from {sorted(factories)}")
    return factories[kind](**kwargs)
