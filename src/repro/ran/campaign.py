"""Measurement-campaign orchestration and CA deployment statistics.

Replays the paper's campaign structure (Table 1): for each operator x
scenario x mobility, generate traces and summarize what a measurement
analyst would report — unique channels, CA combinations (ordered and
as unique sets, the "270/162"-style counts of Table 2), CA prevalence
(Fig 25), CC-count spatial maps (Fig 4), and peak/average throughput.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..parallel import parallel_map
from .simulator import TraceSimulator
from .traces import Trace, TraceSet


@dataclass
class CAStatistics:
    """Aggregated CA observations over a set of traces."""

    operator: str
    rat: str
    unique_channels: int
    ordered_combos: int
    unique_combos: int
    max_ccs: int
    ca_prevalence: float  #: fraction of samples with >= 2 active CCs
    peak_tput_mbps: float
    mean_tput_mbps: float
    combo_counter: Counter = field(default_factory=Counter)

    def top_combos(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.combo_counter.most_common(k)


def analyze_traces(traces: Sequence[Trace], operator: str = "", rat: str = "5G") -> CAStatistics:
    """Compute Table-2-style statistics from traces."""
    channels = set()
    ordered: Counter = Counter()
    unique_sets = set()
    max_ccs = 0
    ca_samples = 0
    total_samples = 0
    peak = 0.0
    tputs: List[float] = []
    for trace in traces:
        for rec in trace.records:
            total_samples += 1
            tputs.append(rec.total_tput_mbps)
            peak = max(peak, rec.total_tput_mbps)
            active = [cc for cc in rec.ccs if cc.active]
            if not active:
                continue
            for cc in active:
                channels.add(cc.channel_key)
            max_ccs = max(max_ccs, len(active))
            if len(active) >= 2:
                ca_samples += 1
                ordered[rec.combo_channels] += 1
                unique_sets.add(frozenset(cc.channel_key for cc in active))
    return CAStatistics(
        operator=operator,
        rat=rat,
        unique_channels=len(channels),
        ordered_combos=len(ordered),
        unique_combos=len(unique_sets),
        max_ccs=max_ccs,
        ca_prevalence=ca_samples / total_samples if total_samples else 0.0,
        peak_tput_mbps=peak,
        mean_tput_mbps=float(np.mean(tputs)) if tputs else 0.0,
        combo_counter=ordered,
    )


@dataclass
class CampaignConfig:
    """Scope of a synthetic measurement campaign."""

    operators: Tuple[str, ...] = ("OpX", "OpY", "OpZ")
    scenarios: Tuple[str, ...] = ("urban", "suburban", "highway")
    rats: Tuple[str, ...] = ("4G", "5G")
    traces_per_cell: int = 2
    duration_s: float = 60.0
    dt_s: float = 1.0
    modem: str = "X70"
    seed: int = 0


@dataclass
class CampaignResult:
    """All traces plus per-(operator, rat, scenario) statistics."""

    traces: TraceSet
    stats: Dict[Tuple[str, str, str], CAStatistics]

    def prevalence_table(self) -> Dict[str, Dict[str, float]]:
        """operator -> scenario -> 5G CA prevalence (paper Fig 25)."""
        table: Dict[str, Dict[str, float]] = {}
        for (operator, rat, scenario), stat in self.stats.items():
            if rat != "5G":
                continue
            table.setdefault(operator, {})[scenario] = stat.ca_prevalence
        return table


def _mobility_for(scenario: str) -> str:
    return {"urban": "driving", "suburban": "driving", "highway": "driving", "indoor": "indoor"}[scenario]


def _simulate_campaign_trace(job: Dict) -> Trace:
    """Top-level worker so :func:`~repro.parallel.parallel_map` can pickle it."""
    sim = TraceSimulator(**job["sim"])
    return sim.run(job["duration_s"], route_id=job["route_id"])


def campaign_cache_config(config: CampaignConfig) -> Dict:
    """The trace-cache configuration for one campaign synthesis.

    Shared by :func:`run_campaign` and the experiment pipeline's
    synthesize stage so both derive the same cache key.
    """
    return {"kind": "campaign", **asdict(config)}


def run_campaign(
    config: Optional[CampaignConfig] = None,
    cache: object = "auto",
    processes: Optional[int] = None,
) -> CampaignResult:
    """Run the full campaign and compute per-cell statistics.

    Traces are synthesized in parallel (``processes`` workers; the
    ``REPRO_PROCS`` env var overrides) and cached on disk keyed by a
    hash of ``config`` (``cache="auto"``; pass ``None`` to disable or a
    :class:`~repro.data.cache.TraceCache` / directory to redirect).
    Results are identical to the serial, uncached path: seeds are
    assigned in the original nested-loop order and pool mapping
    preserves item order.
    """
    config = config or CampaignConfig()
    jobs: List[Dict] = []
    keys: List[Tuple[str, str, str]] = []
    seed = config.seed
    for operator in config.operators:
        for rat in config.rats:
            for scenario in config.scenarios:
                for run in range(config.traces_per_cell):
                    seed += 1
                    jobs.append(
                        {
                            "sim": dict(
                                operator=operator,
                                scenario=scenario,
                                mobility=_mobility_for(scenario),
                                modem=config.modem,
                                rat=rat,
                                dt_s=config.dt_s,
                                seed=seed,
                                area_m=1_500.0 if scenario != "urban" else 1_000.0,
                            ),
                            "duration_s": config.duration_s,
                            "route_id": run,
                        }
                    )
                    keys.append((operator, rat, scenario))

    def synthesize() -> TraceSet:
        return TraceSet(parallel_map(_simulate_campaign_trace, jobs, processes=processes))

    from ..data.cache import resolve_cache  # local: avoids import cycle

    with obs.sample_window("campaign"), obs.span(
        "campaign.run",
        operators=list(config.operators),
        scenarios=list(config.scenarios),
        rats=list(config.rats),
        traces=len(jobs),
    ):
        trace_cache = resolve_cache(cache)
        if trace_cache is None:
            traces = synthesize()
        else:
            traces = trace_cache.get_or_create(campaign_cache_config(config), synthesize)

        all_traces = list(traces)
        grouped: Dict[Tuple[str, str, str], List[Trace]] = {}
        for key, trace in zip(keys, all_traces):
            grouped.setdefault(key, []).append(trace)
        stats = {
            key: analyze_traces(cell_traces, key[0], key[1])
            for key, cell_traces in grouped.items()
        }
    obs.write_manifest(
        kind="campaign",
        config=asdict(config),
        seed=config.seed,
        extra={
            "n_traces": len(all_traces),
            "ca_prevalence": {
                "/".join(key): stat.ca_prevalence for key, stat in stats.items()
            },
        },
    )
    return CampaignResult(traces=TraceSet(all_traces), stats=stats)


def cc_spatial_map(trace: Trace, grid_m: float = 50.0) -> Dict[Tuple[int, int], float]:
    """Mean active-CC count per spatial grid cell (paper Fig 4)."""
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for rec in trace.records:
        key = (int(rec.position[0] // grid_m), int(rec.position[1] // grid_m))
        buckets.setdefault(key, []).append(rec.n_active_ccs)
    return {key: float(np.mean(values)) for key, values in buckets.items()}
