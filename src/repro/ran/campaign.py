"""Measurement-campaign orchestration and CA deployment statistics.

Replays the paper's campaign structure (Table 1): for each operator x
scenario x mobility, generate traces and summarize what a measurement
analyst would report — unique channels, CA combinations (ordered and
as unique sets, the "270/162"-style counts of Table 2), CA prevalence
(Fig 25), CC-count spatial maps (Fig 4), and peak/average throughput.

Two engines share the statistics layer:

* :func:`run_campaign` — the paper-scale engine: one UE per trace,
  every trace materialized, per-(operator, rat, scenario) statistics.
* :func:`run_city_campaign` — the city-scale engine: tens of thousands
  of UEs against shared deployments, partitioned into shards by a
  :class:`ShardPlan` (deterministic UE→shard assignment derived from
  the campaign's canonical hash).  Shards run in worker processes with
  shared-nothing radio state (:func:`repro.parallel.run_tasks` adds
  per-shard retry/timeout), stream their records into
  :class:`CAStatisticsAccumulator` objects (no shard ever materializes
  a per-record list), persist a per-shard result file plus a
  pipeline-style stage marker, and optionally spill their traces into
  the content-hash cache.  A killed run resumes from its last finished
  shard: completed shards are loaded from their result files and only
  pending shards are re-dispatched.
"""

from __future__ import annotations

import json
import math
import os
from collections import Counter
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs, runtime
from ..parallel import parallel_map, run_tasks
from .cells import Deployment, build_city_deployment
from .multi_ue import MultiUESimulator
from .simulator import TraceSimulator
from .traces import Trace, TraceRecord, TraceSet

#: folded into every city-campaign hash so semantic changes to the
#: sharded engine invalidate old shard state directories.
CITY_CAMPAIGN_SCHEMA = "repro-city-campaign-v1"

#: schema stamp of per-shard result files.
SHARD_RESULT_SCHEMA = "repro-city-shard-v1"


# ---------------------------------------------------------------------------
# streaming statistics


@dataclass
class CAStatisticsAccumulator:
    """Streaming Table-2 statistics: O(1) memory in the sample count.

    ``update_record`` folds one :class:`~repro.ran.traces.TraceRecord`
    into running counters (channel set, ordered-combo counter, unique
    combo sets, CA/total sample counts, throughput sum/peak), so a
    shard can stream an arbitrarily long campaign without ever holding
    a per-record list.  Accumulators merge associatively
    (:meth:`merge`) and round-trip through JSON (:meth:`to_dict` /
    :meth:`from_dict`) for the per-shard result files.
    """

    channels: set = field(default_factory=set)
    ordered: Counter = field(default_factory=Counter)
    unique_sets: set = field(default_factory=set)
    max_ccs: int = 0
    ca_samples: int = 0
    total_samples: int = 0
    peak_tput_mbps: float = 0.0
    tput_sum_mbps: float = 0.0

    def update_record(self, rec: TraceRecord) -> None:
        self.total_samples += 1
        self.tput_sum_mbps += rec.total_tput_mbps
        if rec.total_tput_mbps > self.peak_tput_mbps:
            self.peak_tput_mbps = rec.total_tput_mbps
        active = [cc for cc in rec.ccs if cc.active]
        if not active:
            return
        for cc in active:
            self.channels.add(cc.channel_key)
        if len(active) > self.max_ccs:
            self.max_ccs = len(active)
        if len(active) >= 2:
            self.ca_samples += 1
            self.ordered[rec.combo_channels] += 1
            self.unique_sets.add(frozenset(cc.channel_key for cc in active))

    def update_trace(self, trace: Trace) -> None:
        for rec in trace.records:
            self.update_record(rec)

    def merge(self, other: "CAStatisticsAccumulator") -> "CAStatisticsAccumulator":
        """Fold ``other`` into this accumulator (in place; returns self)."""
        self.channels |= other.channels
        self.ordered.update(other.ordered)
        self.unique_sets |= other.unique_sets
        self.max_ccs = max(self.max_ccs, other.max_ccs)
        self.ca_samples += other.ca_samples
        self.total_samples += other.total_samples
        self.peak_tput_mbps = max(self.peak_tput_mbps, other.peak_tput_mbps)
        self.tput_sum_mbps += other.tput_sum_mbps
        return self

    def finalize(self, operator: str = "", rat: str = "5G") -> "CAStatistics":
        return CAStatistics(
            operator=operator,
            rat=rat,
            unique_channels=len(self.channels),
            ordered_combos=len(self.ordered),
            unique_combos=len(self.unique_sets),
            max_ccs=self.max_ccs,
            ca_prevalence=self.ca_samples / self.total_samples if self.total_samples else 0.0,
            peak_tput_mbps=self.peak_tput_mbps,
            mean_tput_mbps=self.tput_sum_mbps / self.total_samples if self.total_samples else 0.0,
            combo_counter=Counter(self.ordered),
            accumulator=self,
        )

    # -- JSON round-trip (shard result files) ---------------------------
    def to_dict(self) -> Dict:
        return {
            "channels": sorted(self.channels),
            "ordered": dict(self.ordered),
            "unique_sets": sorted(sorted(s) for s in self.unique_sets),
            "max_ccs": self.max_ccs,
            "ca_samples": self.ca_samples,
            "total_samples": self.total_samples,
            "peak_tput_mbps": self.peak_tput_mbps,
            "tput_sum_mbps": self.tput_sum_mbps,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CAStatisticsAccumulator":
        return cls(
            channels=set(data["channels"]),
            ordered=Counter(data["ordered"]),
            unique_sets={frozenset(s) for s in data["unique_sets"]},
            max_ccs=int(data["max_ccs"]),
            ca_samples=int(data["ca_samples"]),
            total_samples=int(data["total_samples"]),
            peak_tput_mbps=float(data["peak_tput_mbps"]),
            tput_sum_mbps=float(data["tput_sum_mbps"]),
        )


@dataclass
class CAStatistics:
    """Aggregated CA observations over a set of traces."""

    operator: str
    rat: str
    unique_channels: int
    ordered_combos: int
    unique_combos: int
    max_ccs: int
    ca_prevalence: float  #: fraction of samples with >= 2 active CCs
    peak_tput_mbps: float
    mean_tput_mbps: float
    combo_counter: Counter = field(default_factory=Counter)
    #: the underlying streaming state, kept so statistics stay mergeable
    #: (unique-count fields cannot be combined from the summary alone).
    accumulator: Optional[CAStatisticsAccumulator] = field(default=None, repr=False)

    def top_combos(self, k: int = 5) -> List[Tuple[str, int]]:
        return self.combo_counter.most_common(k)

    def merge(self, other: "CAStatistics") -> "CAStatistics":
        """Combine two per-shard statistics into campaign-level ones.

        Requires both sides to carry their accumulators (every
        statistics object produced by this module does); unique-channel
        and unique-combo counts are recomputed from the merged sets, so
        ``a.merge(b)`` equals statistics computed over the concatenated
        traces.
        """
        if self.accumulator is None or other.accumulator is None:
            raise ValueError("CAStatistics.merge needs accumulator-backed statistics")
        merged = CAStatisticsAccumulator()
        merged.merge(self.accumulator)
        merged.merge(other.accumulator)
        return merged.finalize(self.operator, self.rat)


def analyze_traces(traces: Iterable[Trace], operator: str = "", rat: str = "5G") -> CAStatistics:
    """Compute Table-2-style statistics from traces.

    Streams every record through a :class:`CAStatisticsAccumulator`
    (count/sum/peak instead of materialized per-record lists), so
    memory is O(1) in the number of samples — the same code path shard
    workers use for city-scale aggregation.
    """
    acc = CAStatisticsAccumulator()
    for trace in traces:
        acc.update_trace(trace)
    return acc.finalize(operator, rat)


# ---------------------------------------------------------------------------
# paper-scale campaign (one UE per trace, materialized)


@dataclass
class CampaignConfig:
    """Scope of a synthetic measurement campaign."""

    operators: Tuple[str, ...] = ("OpX", "OpY", "OpZ")
    scenarios: Tuple[str, ...] = ("urban", "suburban", "highway")
    rats: Tuple[str, ...] = ("4G", "5G")
    traces_per_cell: int = 2
    duration_s: float = 60.0
    dt_s: float = 1.0
    modem: str = "X70"
    seed: int = 0


@dataclass
class CampaignResult:
    """All traces plus per-(operator, rat, scenario) statistics."""

    traces: TraceSet
    stats: Dict[Tuple[str, str, str], CAStatistics]

    def prevalence_table(self) -> Dict[str, Dict[str, float]]:
        """operator -> scenario -> 5G CA prevalence (paper Fig 25)."""
        return _prevalence_table(self.stats)


def _prevalence_table(stats: Dict[Tuple[str, str, str], CAStatistics]) -> Dict[str, Dict[str, float]]:
    table: Dict[str, Dict[str, float]] = {}
    for (operator, rat, scenario), stat in stats.items():
        if rat != "5G":
            continue
        table.setdefault(operator, {})[scenario] = stat.ca_prevalence
    return table


def _mobility_for(scenario: str) -> str:
    return {"urban": "driving", "suburban": "driving", "highway": "driving", "indoor": "indoor"}[scenario]


def _area_for(scenario: str) -> float:
    return 1_500.0 if scenario != "urban" else 1_000.0


def _simulate_campaign_trace(job: Dict) -> Trace:
    """Top-level worker so :func:`~repro.parallel.parallel_map` can pickle it."""
    sim = TraceSimulator(**job["sim"])
    return sim.run(job["duration_s"], route_id=job["route_id"])


def campaign_cache_config(config: CampaignConfig) -> Dict:
    """The trace-cache configuration for one campaign synthesis.

    Shared by :func:`run_campaign` and the experiment pipeline's
    synthesize stage so both derive the same cache key.
    """
    return {"kind": "campaign", **asdict(config)}


def _campaign_jobs(config: CampaignConfig) -> Tuple[List[Dict], List[Tuple[str, str, str]]]:
    """The legacy nested-loop job list: seeds assigned in iteration order."""
    jobs: List[Dict] = []
    keys: List[Tuple[str, str, str]] = []
    seed = config.seed
    for operator in config.operators:
        for rat in config.rats:
            for scenario in config.scenarios:
                for run in range(config.traces_per_cell):
                    seed += 1
                    jobs.append(
                        {
                            "sim": dict(
                                operator=operator,
                                scenario=scenario,
                                mobility=_mobility_for(scenario),
                                modem=config.modem,
                                rat=rat,
                                dt_s=config.dt_s,
                                seed=seed,
                                area_m=_area_for(scenario),
                            ),
                            "duration_s": config.duration_s,
                            "route_id": run,
                        }
                    )
                    keys.append((operator, rat, scenario))
    return jobs, keys


def run_campaign(
    config: Optional[CampaignConfig] = None,
    cache: object = "auto",
    processes: Optional[int] = None,
) -> CampaignResult:
    """Run the full campaign and compute per-cell statistics.

    Traces are synthesized in parallel (``processes`` workers; the
    ``REPRO_PROCS`` env var overrides) and cached on disk keyed by a
    hash of ``config`` (``cache="auto"``; pass ``None`` to disable or a
    :class:`~repro.data.cache.TraceCache` / directory to redirect).
    Results are identical to the serial, uncached path: seeds are
    assigned in the original nested-loop order and pool mapping
    preserves item order.
    """
    config = config or CampaignConfig()
    jobs, keys = _campaign_jobs(config)

    def synthesize() -> TraceSet:
        return TraceSet(parallel_map(_simulate_campaign_trace, jobs, processes=processes))

    from ..data.cache import resolve_cache  # local: avoids import cycle

    with obs.sample_window("campaign"), obs.span(
        "campaign.run",
        operators=list(config.operators),
        scenarios=list(config.scenarios),
        rats=list(config.rats),
        traces=len(jobs),
    ):
        trace_cache = resolve_cache(cache)
        if trace_cache is None:
            traces = synthesize()
        else:
            traces = trace_cache.get_or_create(campaign_cache_config(config), synthesize)

        all_traces = list(traces)
        accs: Dict[Tuple[str, str, str], CAStatisticsAccumulator] = {}
        for key, trace in zip(keys, all_traces):
            accs.setdefault(key, CAStatisticsAccumulator()).update_trace(trace)
        stats = {key: acc.finalize(key[0], key[1]) for key, acc in accs.items()}
    obs.write_manifest(
        kind="campaign",
        config=asdict(config),
        seed=config.seed,
        extra={
            "n_traces": len(all_traces),
            "ca_prevalence": {
                "/".join(key): stat.ca_prevalence for key, stat in stats.items()
            },
        },
    )
    return CampaignResult(traces=TraceSet(all_traces), stats=stats)


# ---------------------------------------------------------------------------
# city-scale campaign: shard plan


@dataclass(frozen=True)
class UEJob:
    """One UE's simulation assignment inside a city campaign."""

    index: int  #: global UE index in canonical (operator, rat, scenario, ue) order
    operator: str
    rat: str
    scenario: str
    seed: int  #: simulator seed, assigned in the legacy nested-loop order
    route_id: int  #: per-group UE ordinal (mobility route / trace id)

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.operator, self.rat, self.scenario)


@dataclass
class CityCampaignConfig:
    """Scope of a sharded, city-scale measurement campaign.

    ``ues`` UEs per (operator, rat, scenario) group are partitioned
    into ``shards`` worker units.  With ``cells == 0`` every UE gets
    its own deployment — the legacy per-trace semantics, bit-identical
    to :func:`run_campaign` (the oracle mode).  With ``cells > 0`` each
    group shares one city deployment sized to roughly that many cells,
    and UEs are stepped in structure-of-arrays cohorts of ``cohort``
    through :class:`~repro.ran.multi_ue.MultiUESimulator`.
    """

    operators: Tuple[str, ...] = ("OpX", "OpY", "OpZ")
    scenarios: Tuple[str, ...] = ("urban", "suburban", "highway")
    rats: Tuple[str, ...] = ("5G",)
    ues: int = 100  #: UEs per (operator, rat, scenario) group
    cells: int = 0  #: >0: shared deployment with ~this many cells per group
    shards: int = 1
    cohort: int = 32  #: UEs batched per SoA step (shared-deployment mode)
    duration_s: float = 60.0
    dt_s: float = 1.0
    modem: str = "X70"
    seed: int = 0
    spill_traces: bool = False  #: spill per-cohort traces into the content-hash cache
    shard_timeout_s: Optional[float] = None  #: per-shard wall budget (None = unbounded)

    def __post_init__(self) -> None:
        self.operators = tuple(self.operators)
        self.scenarios = tuple(self.scenarios)
        self.rats = tuple(self.rats)
        if self.ues < 1:
            raise ValueError("ues must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.cohort < 1:
            raise ValueError("cohort must be >= 1")

    def to_dict(self) -> Dict:
        data = asdict(self)
        for key in ("operators", "scenarios", "rats"):
            data[key] = list(data[key])
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "CityCampaignConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown city campaign key(s) {unknown}; valid keys: {sorted(known)}")
        return cls(**dict(data))

    def hash(self) -> str:
        """Canonical content hash naming the campaign's shard state."""
        return runtime.canonical_hash(self.to_dict(), schema=CITY_CAMPAIGN_SCHEMA)


def city_campaign_jobs(config: CityCampaignConfig) -> List[UEJob]:
    """Every UE job in canonical order (seed assignment matches
    :func:`run_campaign`'s nested loops, which is what makes the
    ``shards=1, ues=1`` oracle bit-identical to the legacy path)."""
    jobs: List[UEJob] = []
    seed = config.seed
    index = 0
    for operator in config.operators:
        for rat in config.rats:
            for scenario in config.scenarios:
                for ue in range(config.ues):
                    seed += 1
                    jobs.append(
                        UEJob(
                            index=index,
                            operator=operator,
                            rat=rat,
                            scenario=scenario,
                            seed=seed,
                            route_id=ue,
                        )
                    )
                    index += 1
    return jobs


@dataclass
class ShardPlan:
    """Deterministic UE→shard assignment for one campaign.

    The assignment is a pure function of the campaign's canonical hash
    and each UE's global index: shard ids are derived per UE from
    ``canonical_hash({campaign, ue})``, so re-planning the same config
    always reproduces the same partition (what makes shard result
    files resumable), while different campaigns shuffle differently.
    """

    campaign_hash: str
    n_shards: int
    shards: List[List[UEJob]]

    @staticmethod
    def shard_of(campaign_hash: str, ue_index: int, n_shards: int) -> int:
        digest = runtime.canonical_hash(
            {"campaign": campaign_hash, "ue": ue_index}, schema="repro-shard-assign-v1"
        )
        return int(digest, 16) % n_shards

    @classmethod
    def build(cls, config: CityCampaignConfig) -> "ShardPlan":
        campaign_hash = config.hash()
        shards: List[List[UEJob]] = [[] for _ in range(config.shards)]
        for job in city_campaign_jobs(config):
            shards[cls.shard_of(campaign_hash, job.index, config.shards)].append(job)
        return cls(campaign_hash=campaign_hash, n_shards=config.shards, shards=shards)

    @property
    def n_ues(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_id(self, index: int) -> str:
        return f"shard-{index:04d}"


# ---------------------------------------------------------------------------
# city-scale campaign: shard execution


def _shard_result_path(state_dir: Path, shard_id: str) -> Path:
    return state_dir / f"{shard_id}.json"


def city_shard_cache_config(campaign_hash: str, shard_id: str, cohort_index: int) -> Dict:
    """Content-hash cache key for one cohort's spilled traces."""
    return {
        "kind": "city-shard",
        "campaign_hash": campaign_hash,
        "shard": shard_id,
        "cohort": cohort_index,
    }


def _build_group_deployment(config: CityCampaignConfig, operator: str, scenario: str) -> Deployment:
    """The shared city deployment for one (operator, scenario) group.

    Deterministic in the campaign seed, so shared-nothing shard workers
    rebuild byte-identical layouts without any cross-process state.
    """
    from .operators import get_operator

    profile = get_operator(operator)
    return build_city_deployment(
        profile.channel_plans(),
        scenario=scenario if scenario != "indoor" else "urban",
        target_cells=config.cells,
        seed=config.seed + 7919 * (1 + sorted(config.operators).index(operator)),
        deploy_fraction=profile.fraction_for(scenario),
    )


def _run_city_shard(payload: Dict) -> Dict:
    """Top-level shard worker (picklable for :func:`repro.parallel.run_tasks`).

    Streams every simulated record into per-group accumulators — no
    per-record list is ever materialized — optionally spilling each
    cohort's traces into the content-hash cache, then atomically writes
    the shard's result file.  The returned dict is exactly what was
    persisted, so the parent can merge without re-reading the file.
    """
    config = CityCampaignConfig.from_dict(payload["config"])
    jobs = [UEJob(**job) for job in payload["jobs"]]
    shard_id: str = payload["shard_id"]
    state_dir = Path(payload["state_dir"])
    campaign_hash: str = payload["campaign_hash"]

    accs: Dict[Tuple[str, str, str], CAStatisticsAccumulator] = {}
    spill_keys: List[str] = []
    cohort_index = 0

    cache = None
    if config.spill_traces:
        from ..data.cache import TraceCache  # local: avoids import cycle

        cache = TraceCache(payload["cache_dir"]) if payload.get("cache_dir") else TraceCache()

    def spill(traces: List[Trace]) -> None:
        nonlocal cohort_index
        if cache is None or not traces:
            return
        entry_config = city_shard_cache_config(campaign_hash, shard_id, cohort_index)
        cache.put(entry_config, TraceSet(traces))
        spill_keys.append(cache.path_for(entry_config).name)
        cohort_index += 1

    with obs.sample_window("campaign.shard"), obs.span(
        "campaign.shard", shard=shard_id, ues=len(jobs), campaign=campaign_hash
    ):
        if config.cells <= 0:
            # legacy semantics: one deployment per UE, same kwargs and
            # seed assignment as run_campaign's nested loop — this is
            # the bit-identical oracle mode
            pending: List[Trace] = []
            for job in jobs:
                sim = TraceSimulator(
                    operator=job.operator,
                    scenario=job.scenario,
                    mobility=_mobility_for(job.scenario),
                    modem=config.modem,
                    rat=job.rat,
                    dt_s=config.dt_s,
                    seed=job.seed,
                    area_m=_area_for(job.scenario),
                )
                trace = sim.run(config.duration_s, route_id=job.route_id)
                accs.setdefault(job.key, CAStatisticsAccumulator()).update_trace(trace)
                if cache is not None:
                    pending.append(trace)
                    if len(pending) >= config.cohort:
                        spill(pending)
                        pending = []
            spill(pending)
        else:
            # city semantics: one shared deployment per group, UEs
            # stepped in SoA cohorts through MultiUESimulator
            groups: Dict[Tuple[str, str, str], List[UEJob]] = {}
            for job in jobs:
                groups.setdefault(job.key, []).append(job)
            for key, group_jobs in groups.items():
                operator, rat, scenario = key
                deployment = _build_group_deployment(config, operator, scenario)
                acc = accs.setdefault(key, CAStatisticsAccumulator())
                for start in range(0, len(group_jobs), config.cohort):
                    cohort_jobs = group_jobs[start : start + config.cohort]
                    lanes = [
                        TraceSimulator(
                            operator=job.operator,
                            scenario=job.scenario,
                            mobility=_mobility_for(job.scenario),
                            modem=config.modem,
                            rat=job.rat,
                            dt_s=config.dt_s,
                            seed=job.seed,
                            deployment=deployment,
                        )
                        for job in cohort_jobs
                    ]
                    msim = MultiUESimulator(lanes)
                    if cache is not None:
                        traces = msim.run(
                            config.duration_s,
                            route_ids=[job.route_id for job in cohort_jobs],
                        )
                        for trace in traces:
                            acc.update_trace(trace)
                        spill(list(traces))
                    else:
                        msim.run(
                            config.duration_s,
                            route_ids=[job.route_id for job in cohort_jobs],
                            keep_traces=False,
                            on_record=lambda lane, rec, acc=acc: acc.update_record(rec),
                        )
        obs.flush()

    result = {
        "schema": SHARD_RESULT_SCHEMA,
        "campaign_hash": campaign_hash,
        "shard": shard_id,
        "n_ues": len(jobs),
        "ue_indices": [job.index for job in jobs],
        "stats": {"|".join(key): acc.to_dict() for key, acc in accs.items()},
        "spill_keys": spill_keys,
    }
    path = _shard_result_path(state_dir, shard_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(path)
    return result


def _load_shard_result(state_dir: Path, shard_id: str, campaign_hash: str) -> Optional[Dict]:
    try:
        data = json.loads(_shard_result_path(state_dir, shard_id).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != SHARD_RESULT_SCHEMA:
        return None
    if data.get("campaign_hash") != campaign_hash:
        return None
    return data


@dataclass
class CityCampaignResult:
    """Merged statistics plus shard bookkeeping for one city campaign."""

    config: CityCampaignConfig
    hash: str
    state_dir: Path
    stats: Dict[Tuple[str, str, str], CAStatistics]
    shards_total: int
    shards_completed: int
    shards_resumed: int
    n_ues: int
    complete: bool
    spill_keys: List[str] = field(default_factory=list)
    peak_rss_mb: float = 0.0
    wall_s: float = 0.0

    @property
    def ues_per_sec(self) -> float:
        return self.n_ues / self.wall_s if self.wall_s > 0 else 0.0

    def prevalence_table(self) -> Dict[str, Dict[str, float]]:
        """operator -> scenario -> 5G CA prevalence (paper Fig 25)."""
        return _prevalence_table(self.stats)

    def load_spilled_traces(self, cache: object = "auto") -> TraceSet:
        """Load every spilled trace cohort back from the content-hash cache."""
        from ..data.cache import resolve_cache

        trace_cache = resolve_cache(cache)
        if trace_cache is None:
            return TraceSet([])
        traces: List[Trace] = []
        for name in self.spill_keys:
            entry = trace_cache.directory / name
            if (entry / "manifest.json").exists():
                from ..data.artifacts import load_trace_set

                traces.extend(load_trace_set(entry))
        return TraceSet(traces)


def _peak_rss_mb() -> float:
    """Max resident set of this process and its reaped children (MB)."""
    try:
        import resource

        self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        return max(self_kb, child_kb) / 1024.0
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX hosts
        return 0.0


def default_campaign_state_dir(config: CityCampaignConfig) -> Path:
    """``<runs dir>/campaigns/city-<hash>`` — the resumable shard state."""
    from ..pipeline import default_runs_dir  # local: avoids import cycle

    return default_runs_dir() / "campaigns" / f"city-{config.hash()}"


def run_city_campaign(
    config: Optional[CityCampaignConfig] = None,
    state_dir: Union[str, Path, None] = None,
    processes: Optional[int] = None,
    max_shards: Optional[int] = None,
    cache_dir: Union[str, Path, None] = None,
) -> CityCampaignResult:
    """Run (or resume) a sharded city-scale campaign.

    Shards whose stage marker and result file are already present for
    this exact campaign hash are loaded instead of re-simulated; the
    rest are dispatched to worker processes through
    :func:`repro.parallel.run_tasks` (one retry per shard, optional
    per-shard timeout, order-preserving).  ``max_shards`` bounds how
    many *pending* shards this invocation runs — the deterministic
    stand-in for a killed run in tests and CI — leaving the remainder
    for the next call.  Statistics are merged in shard order from the
    streamed accumulators; no per-record list exists anywhere.
    """
    from ..pipeline import read_stage_marker, write_stage_marker  # local: avoids import cycle

    import time

    config = config or CityCampaignConfig()
    start = time.perf_counter()
    plan = ShardPlan.build(config)
    campaign_hash = plan.campaign_hash
    root = Path(state_dir) if state_dir is not None else default_campaign_state_dir(config)
    root.mkdir(parents=True, exist_ok=True)

    completed: Dict[str, Dict] = {}
    pending: List[int] = []
    resumed = 0
    for i in range(plan.n_shards):
        shard_id = plan.shard_id(i)
        result = None
        if read_stage_marker(root, shard_id, campaign_hash) is not None:
            result = _load_shard_result(root, shard_id, campaign_hash)
        if result is not None:
            completed[shard_id] = result
            resumed += 1
        else:
            pending.append(i)

    to_run = pending if max_shards is None else pending[: max(0, max_shards)]
    with obs.sample_window("campaign"), obs.span(
        "campaign.city.run",
        campaign=campaign_hash,
        ues=plan.n_ues,
        shards=plan.n_shards,
        pending=len(to_run),
        resumed=resumed,
    ) as sp:
        if obs.metrics_enabled():
            obs.counter("campaign.shard.resumed", resumed)
        payloads = [
            {
                "config": config.to_dict(),
                "campaign_hash": campaign_hash,
                "shard_id": plan.shard_id(i),
                "jobs": [asdict(job) for job in plan.shards[i]],
                "state_dir": str(root),
                "cache_dir": None if cache_dir is None else str(cache_dir),
            }
            for i in to_run
        ]
        results = run_tasks(
            _run_city_shard,
            payloads,
            labels=[plan.shard_id(i) for i in to_run],
            processes=processes,
            retries=1,
            timeout_s=config.shard_timeout_s,
        )
        for i, result in zip(to_run, results):
            shard_id = plan.shard_id(i)
            completed[shard_id] = result
            write_stage_marker(
                root,
                shard_id,
                campaign_hash,
                _shard_result_path(root, shard_id),
                detail={"n_ues": result["n_ues"], "spill_keys": result["spill_keys"]},
            )
            if obs.metrics_enabled():
                obs.counter("campaign.shard.completed")

        merged: Dict[Tuple[str, str, str], CAStatisticsAccumulator] = {}
        spill_keys: List[str] = []
        ues_done = 0
        for i in range(plan.n_shards):
            shard_id = plan.shard_id(i)
            result = completed.get(shard_id)
            if result is None:
                continue
            ues_done += int(result["n_ues"])
            spill_keys.extend(result.get("spill_keys") or [])
            for key_str, acc_data in result["stats"].items():
                key = tuple(key_str.split("|"))
                merged.setdefault(key, CAStatisticsAccumulator()).merge(
                    CAStatisticsAccumulator.from_dict(acc_data)
                )
        stats = {key: acc.finalize(key[0], key[1]) for key, acc in merged.items()}
        complete = len(completed) == plan.n_shards
        sp.set(completed=len(completed), complete=complete)

    wall = time.perf_counter() - start
    obs.write_manifest(
        kind="city_campaign",
        config=config.to_dict(),
        seed=config.seed,
        extra={
            "campaign_hash": campaign_hash,
            "shards_total": plan.n_shards,
            "shards_completed": len(completed),
            "shards_resumed": resumed,
            "n_ues": ues_done,
            "complete": complete,
            "peak_rss_mb": _peak_rss_mb(),
            "ca_prevalence": {"/".join(key): s.ca_prevalence for key, s in stats.items()},
        },
    )
    return CityCampaignResult(
        config=config,
        hash=campaign_hash,
        state_dir=root,
        stats=stats,
        shards_total=plan.n_shards,
        shards_completed=len(completed),
        shards_resumed=resumed,
        n_ues=ues_done,
        complete=complete,
        spill_keys=spill_keys,
        peak_rss_mb=_peak_rss_mb(),
        wall_s=wall,
    )


# ---------------------------------------------------------------------------


def cc_spatial_map(trace: Trace, grid_m: float = 50.0) -> Dict[Tuple[int, int], float]:
    """Mean active-CC count per spatial grid cell (paper Fig 4)."""
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for rec in trace.records:
        key = (int(rec.position[0] // grid_m), int(rec.position[1] // grid_m))
        buckets.setdefault(key, []).append(rec.n_active_ccs)
    return {key: float(np.mean(values)) for key, values in buckets.items()}
