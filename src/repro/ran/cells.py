"""Cells, base stations, and per-scenario deployments.

Each base station hosts one or more *cells* (a channel within a band,
with its own PCI) — the left panel of the paper's Fig 3.  Deployment
generators place sites with scenario-appropriate inter-site distances
and per-operator band inventories, so that a moving UE sees exactly the
phenomenon the paper maps in Fig 4: the set of coverage-overlapping
channels (hence possible CA combinations) changes along the route.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bands import Band, get_band


@dataclass(frozen=True)
class Cell:
    """One channel (component-carrier candidate) at a site."""

    cell_id: int
    pci: int
    band: Band
    bandwidth_mhz: float
    scs_khz: int
    position: Tuple[float, float]
    tx_power_dbm: float
    channel_key: str  #: e.g. "n41@2506" — distinguishes co-band channels

    @property
    def is_5g(self) -> bool:
        return self.band.is_5g

    def __repr__(self) -> str:
        return f"Cell({self.channel_key}, {self.bandwidth_mhz:g} MHz, pci={self.pci})"


@dataclass
class BaseStation:
    """A site hosting co-located cells (possibly multiple bands)."""

    site_id: int
    position: Tuple[float, float]
    cells: List[Cell] = field(default_factory=list)


#: typical total transmit power by band class (mmWave is beamformed EIRP).
_TX_POWER_DBM = {"low": 46.0, "mid": 46.0, "high": 50.0}

#: coverage radius heuristics by band class (metres) for cell placement sanity.
COVERAGE_RADIUS_M = {"low": 3_000.0, "mid": 1_200.0, "high": 200.0}


class Deployment:
    """A set of base stations covering a scenario area."""

    def __init__(self, stations: Sequence[BaseStation]) -> None:
        if not stations:
            raise ValueError("deployment needs at least one base station")
        self.stations = list(stations)
        self.cells: List[Cell] = [cell for bs in self.stations for cell in bs.cells]
        self._cell_site: Dict[int, int] = {
            cell.cell_id: bs.site_id for bs in self.stations for cell in bs.cells
        }

    def site_of(self, cell: Cell) -> int:
        return self._cell_site[cell.cell_id]

    def cells_near(self, position: Tuple[float, float], max_distance_m: Optional[float] = None) -> List[Cell]:
        """Cells whose class-based coverage radius reaches ``position``."""
        out = []
        for cell in self.cells:
            distance = math.dist(position, cell.position)
            radius = COVERAGE_RADIUS_M[cell.band.band_class]
            limit = radius if max_distance_m is None else min(radius, max_distance_m)
            if distance <= limit:
                out.append(cell)
        return out

    def unique_channels(self, rat: Optional[str] = None) -> List[str]:
        """Distinct channel keys in the deployment (optionally by RAT)."""
        keys = {
            cell.channel_key
            for cell in self.cells
            if rat is None or cell.band.rat == rat
        }
        return sorted(keys)


@dataclass(frozen=True)
class ChannelPlan:
    """A channel an operator deploys: band + bandwidth (+ count per site)."""

    band_name: str
    bandwidth_mhz: float
    per_site: int = 1  #: co-channel instances per site (e.g. two n41 carriers)


#: scenario -> inter-site distance (metres); the one place layout
#: density is defined, shared by area- and cell-count-sized builders.
_SCENARIO_SPACING_M = {
    "urban": 350.0,
    "suburban": 900.0,
    "highway": 1_500.0,
    "indoor": 400.0,
}


def scenario_spacing_m(scenario: str) -> float:
    """Inter-site distance for a scenario."""
    try:
        return _SCENARIO_SPACING_M[scenario]
    except KeyError:
        raise ValueError(f"unknown scenario {scenario!r}") from None


def _site_positions(scenario: str, area_m: float, rng: np.random.Generator) -> List[Tuple[float, float]]:
    """Site layout per scenario: dense urban grid, sparse suburban, linear highway."""
    spacing = scenario_spacing_m(scenario)
    if scenario == "highway":
        n = max(2, int(area_m / spacing))
        return [
            (i * spacing + rng.uniform(-100, 100), rng.uniform(-300, 300))
            for i in range(n + 1)
        ]
    n = max(1, int(area_m / spacing))
    positions = []
    for i, j in itertools.product(range(n + 1), repeat=2):
        jitter = rng.uniform(-spacing / 6, spacing / 6, size=2)
        positions.append((i * spacing + jitter[0], j * spacing + jitter[1]))
    return positions


def build_deployment(
    channel_plans: Sequence[ChannelPlan],
    scenario: str = "urban",
    area_m: float = 1_000.0,
    seed: int = 0,
    deploy_fraction: Optional[Dict[str, float]] = None,
) -> Deployment:
    """Place base stations and instantiate cells from channel plans.

    ``deploy_fraction`` maps a band name to the fraction of sites that
    carry it (e.g. mmWave only in dense pockets; OpX's sparse FR1 CA).
    """
    rng = np.random.default_rng(seed)
    positions = _site_positions(scenario, area_m, rng)
    stations: List[BaseStation] = []
    cell_id = itertools.count(1)
    pci = itertools.count(100)
    # Assign each (plan, instance) a globally consistent spectrum slot so
    # that, e.g., the 100 MHz n41 carrier has the same channel key at
    # every site (distinct from the 40 MHz n41 carrier: n41^a vs n41^b).
    plan_keys: Dict[Tuple[int, int], str] = {}
    band_offsets: Dict[str, int] = {}
    for plan_index, plan in enumerate(channel_plans):
        band = get_band(plan.band_name)
        for instance in range(plan.per_site):
            offset = band_offsets.get(band.name, 0)
            band_offsets[band.name] = offset + int(plan.bandwidth_mhz)
            plan_keys[(plan_index, instance)] = f"{band.name}@{int(band.freq_mhz) + offset}"
    for site_id, position in enumerate(positions):
        cells: List[Cell] = []
        for plan_index, plan in enumerate(channel_plans):
            band = get_band(plan.band_name)
            fraction = 1.0 if deploy_fraction is None else deploy_fraction.get(plan.band_name, 1.0)
            if rng.random() > fraction:
                continue
            for instance in range(plan.per_site):
                key = plan_keys[(plan_index, instance)]
                cells.append(
                    Cell(
                        cell_id=next(cell_id),
                        pci=next(pci) % 504,
                        band=band,
                        bandwidth_mhz=plan.bandwidth_mhz,
                        scs_khz=band.default_scs_khz,
                        position=position,
                        tx_power_dbm=_TX_POWER_DBM[band.band_class],
                        channel_key=key,
                    )
                )
        if cells:
            stations.append(BaseStation(site_id=site_id, position=position, cells=cells))
    return Deployment(stations)


def build_city_deployment(
    channel_plans: Sequence[ChannelPlan],
    scenario: str = "urban",
    target_cells: int = 100,
    seed: int = 0,
    deploy_fraction: Optional[Dict[str, float]] = None,
) -> Deployment:
    """Place a deployment sized to roughly ``target_cells`` cells.

    The city-scale campaign engine's sizing knob: instead of an area in
    metres, callers ask for a cell count and the area is derived from
    the scenario's inter-site distance and the expected cells per site
    (channel plans weighted by their deploy fraction).  Placement
    jitter and fractional band deployment make the realized count
    approximate — read ``len(deployment.cells)`` for the actual figure.
    """
    if target_cells < 1:
        raise ValueError("target_cells must be >= 1")
    spacing = scenario_spacing_m(scenario)
    per_site = 0.0
    for plan in channel_plans:
        fraction = 1.0 if deploy_fraction is None else deploy_fraction.get(plan.band_name, 1.0)
        per_site += plan.per_site * fraction
    per_site = max(per_site, 1.0)
    sites = max(2, math.ceil(target_cells / per_site))
    if scenario == "highway":
        area_m = sites * spacing
    else:
        # the grid builder places (n+1)^2 sites for n = area/spacing
        n = max(1, math.ceil(math.sqrt(sites)) - 1)
        area_m = n * spacing
    return build_deployment(
        channel_plans,
        scenario=scenario,
        area_m=area_m,
        seed=seed,
        deploy_fraction=deploy_fraction,
    )
