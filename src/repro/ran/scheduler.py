"""Multi-user cell load and resource-block scheduling.

The UE never gets the full carrier: other users share the cell, and the
scheduler grants a time-varying fraction of the resource blocks.  The
paper's Appendix B.2 (Tables 8-10, Figs 31-32) shows that time-of-day
load moves #RB while RSRP/CQI/MCS stay flat — so throughput temporal
dynamics are capturable from the #RB feature.  We model per-cell load
as a mean-reverting process around a time-of-day profile, plus a CA
*throttling* effect: when a UE aggregates many wide CCs, busy cells cut
the marginal SCell's share (the paper's Fig 15 explanation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

import numpy as np


def time_of_day_load(hour: float, scenario: str = "urban") -> float:
    """Mean cell utilization in [0, 1] by local hour.

    Campus-style double peak (midday + evening) for urban, flatter for
    suburban/highway; midnight (the paper's main measurement window)
    is the trough.
    """
    if not 0.0 <= hour < 24.0:
        raise ValueError("hour must be in [0, 24)")
    base = {"urban": 0.45, "suburban": 0.30, "highway": 0.25, "indoor": 0.40}.get(scenario, 0.35)
    midday = math.exp(-((hour - 12.5) ** 2) / 8.0)
    evening = math.exp(-((hour - 18.5) ** 2) / 5.0)
    night_dip = 0.25 * math.exp(-((hour % 24 - 3.0) ** 2) / 10.0)
    return float(np.clip(base * (0.5 + 0.9 * midday + 0.7 * evening) - night_dip * base, 0.02, 0.95))


@dataclass
class CellLoadProcess:
    """Mean-reverting (AR(1)) utilization process for one cell."""

    mean_load: float = 0.2
    volatility: float = 0.04
    reversion_s: float = 5.0
    _load: float = field(default=-1.0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean_load <= 1.0:
            raise ValueError("mean_load must be in [0, 1]")

    def step(self, dt_s: float, rng: np.random.Generator) -> float:
        """Advance and return current utilization in [0, 0.97]."""
        if self._load < 0:
            self._load = self.mean_load
        theta = min(dt_s / self.reversion_s, 1.0)
        noise = self.volatility * math.sqrt(max(dt_s, 1e-6)) * rng.normal()
        self._load += theta * (self.mean_load - self._load) + noise
        self._load = float(np.clip(self._load, 0.0, 0.97))
        return self._load


class Scheduler:
    """Grants the probe UE a share of each cell's resource blocks."""

    def __init__(
        self,
        hour: float = 0.5,
        scenario: str = "urban",
        seed: int = 0,
        throttle_bw_mhz: float = 120.0,
        throttle_strength: float = 0.45,
    ) -> None:
        self.hour = hour
        self.scenario = scenario
        self.rng = np.random.default_rng(seed)
        self.throttle_bw_mhz = throttle_bw_mhz
        self.throttle_strength = throttle_strength
        self._processes: Dict[int, CellLoadProcess] = {}

    def _process_for(self, cell_id: int) -> CellLoadProcess:
        if cell_id not in self._processes:
            mean = time_of_day_load(self.hour, self.scenario)
            # per-cell heterogeneity
            mean = float(np.clip(mean * self.rng.uniform(0.7, 1.3), 0.02, 0.95))
            self._processes[cell_id] = CellLoadProcess(mean_load=mean)
        return self._processes[cell_id]

    def rb_fraction(
        self,
        cell_id: int,
        dt_s: float,
        aggregate_bw_before_mhz: float = 0.0,
        cell_bw_mhz: float = 20.0,
    ) -> float:
        """Fraction of the cell's RBs granted to the probe this interval.

        ``aggregate_bw_before_mhz`` is the bandwidth already aggregated by
        earlier (higher-priority) CCs of this UE; busy cells deprioritize
        marginal wide aggregations (Fig 15's #RB throttling).
        """
        load = self._process_for(cell_id).step(dt_s, self.rng)
        share = 1.0 - load
        if aggregate_bw_before_mhz >= self.throttle_bw_mhz:
            over = (aggregate_bw_before_mhz - self.throttle_bw_mhz) / self.throttle_bw_mhz
            throttle = 1.0 / (1.0 + self.throttle_strength * over * (load / 0.3 + 0.5))
            share *= throttle
        # packet-level granularity jitter
        share *= self.rng.uniform(0.96, 1.0)
        return float(np.clip(share, 0.02, 1.0))
