"""Multi-UE cohort simulation: batch the radio update across lanes.

A :class:`MultiUESimulator` drives a *cohort* of single-UE
:class:`~repro.ran.simulator.TraceSimulator` lanes — typically sharing
one city :class:`~repro.ran.cells.Deployment` — through lockstep time.
Each step runs every lane's phase-1 bookkeeping (mobility, candidate
refresh, AR(1) shadowing/fading advance, preserving each lane's private
RNG stream exactly), then packs the per-lane candidate state into
carrier-major structure-of-arrays tensors padded to the cohort's widest
candidate set and dispatches **one** ``radio_step_multi`` backend call
for the whole cohort, then finishes each lane (CA decision, link
adaptation, record) independently.

Because every lane keeps its own RNG, CA manager, and link adapters,
a lane's trace from a cohort run equals the trace the same
``TraceSimulator`` produces solo against the same deployment — exactly
on the per-lane dispatch path, and to ulp-level tolerances on the
batched path (BLAS reduction order differs between the ``(C,C) @ (C,)``
and ``(U,C,C) @ (U,C,1)`` products, the same class of difference as the
existing vectorized-vs-scalar radio oracle).

Streaming: ``run(..., keep_traces=False, on_record=...)`` hands each
:class:`~repro.ran.traces.TraceRecord` to the callback and retains
nothing, so a shard can aggregate an arbitrarily long cohort in O(1)
memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import backends, obs
from .simulator import (
    _CO_CHANNEL_ACTIVITY,
    _LOS_BLEND_M,
    TraceSimulator,
    vectorized_radio_enabled,
)
from .traces import Trace, TraceRecord

#: padding constants for lanes narrower than the cohort's widest
#: candidate set: a pseudo-cell ~1e7 m away with 0 dBm per-RE power and
#: unit noise — every padded output stays finite (~-250 dB RSRP) and is
#: sliced off before any lane sees it.
_PAD_POS_M = 1.0e7
_PAD_FREQ_MHZ = 1_000.0


class MultiUESimulator:
    """Lockstep driver for a cohort of single-UE simulator lanes."""

    def __init__(self, lanes: Sequence[TraceSimulator], batch: bool = True) -> None:
        if not lanes:
            raise ValueError("cohort needs at least one lane")
        dts = {lane.dt_s for lane in lanes}
        if len(dts) != 1:
            raise ValueError(f"cohort lanes must share dt_s, got {sorted(dts)}")
        self.lanes: List[TraceSimulator] = list(lanes)
        self.dt_s = self.lanes[0].dt_s
        force_los = {lane.force_los for lane in lanes}
        #: batched dispatch shares one force_los across the cohort; a
        #: mixed cohort silently degrades to per-lane dispatch instead
        self._shared_force_los: Optional[bool] = force_los.pop() if len(force_los) == 1 else None
        self._mixed_force_los = bool(force_los)
        self.batch = batch
        self._pack_key: Optional[Tuple[int, ...]] = None
        self._pack: Optional[Tuple[np.ndarray, ...]] = None

    # ------------------------------------------------------------------
    def _use_batch(self) -> bool:
        return (
            self.batch
            and len(self.lanes) > 1
            and vectorized_radio_enabled()
            and not self._mixed_force_los
        )

    def _packed_candidates(self) -> Tuple[np.ndarray, ...]:
        """Padded (U, Cmax) candidate tensors, rebuilt only on refresh.

        Candidate sets change only when a lane's refresh fires
        (:meth:`TraceSimulator._refresh_candidates` rebinds the list),
        so the pack is cached keyed on the lanes' candidate-list
        identities and most steps reuse it untouched.
        """
        key = tuple(id(lane._candidates) for lane in self.lanes)
        if key == self._pack_key and self._pack is not None:
            return self._pack
        u = len(self.lanes)
        cmax = max(len(lane._candidates) for lane in self.lanes)
        cand_pos = np.full((u, cmax, 2), _PAD_POS_M, dtype=np.float64)
        cand_freq = np.full((u, cmax), _PAD_FREQ_MHZ, dtype=np.float64)
        cand_per_re_tx = np.zeros((u, cmax), dtype=np.float64)
        cand_noise_mw = np.ones((u, cmax), dtype=np.float64)
        cand_nrb = np.ones((u, cmax), dtype=np.float64)
        cand_nrb_db = np.zeros((u, cmax), dtype=np.float64)
        cand_indoor_pen = np.zeros((u, cmax), dtype=np.float64)
        interf_mask = np.zeros((u, cmax, cmax), dtype=np.float64)
        for i, lane in enumerate(self.lanes):
            c = len(lane._candidates)
            if not c:
                continue
            cand_pos[i, :c] = lane._cand_pos
            cand_freq[i, :c] = lane._cand_freq
            cand_per_re_tx[i, :c] = lane._cand_per_re_tx
            cand_noise_mw[i, :c] = lane._cand_noise_mw
            cand_nrb[i, :c] = lane._cand_nrb
            cand_nrb_db[i, :c] = lane._cand_nrb_db
            cand_indoor_pen[i, :c] = lane._cand_indoor_pen
            interf_mask[i, :c, :c] = lane._interf_mask
        self._pack_key = key
        self._pack = (
            cand_pos,
            cand_freq,
            cand_per_re_tx,
            cand_noise_mw,
            cand_nrb,
            cand_nrb_db,
            cand_indoor_pen,
            interf_mask,
        )
        return self._pack

    def step_all(self, states: Sequence) -> List[TraceRecord]:
        """Advance every lane one sampling interval (one batched radio call)."""
        lanes = self.lanes
        begun = [lane._begin_step(state) for lane, state in zip(lanes, states)]
        if not self._use_batch():
            records = []
            for lane, state, (step, rho) in zip(lanes, states, begun):
                if vectorized_radio_enabled():
                    maps = lane._radio_update_vec(state, rho)
                else:
                    maps = lane._radio_update_loop(state, rho)
                records.append(lane._finish_step(step, state, *maps))
            return records

        # phase 2, batched: advance each lane's AR(1) processes in lane
        # order (identical RNG stream to the solo run), then one SoA
        # radio_step_multi call over the padded cohort tensors
        advances = [
            lane._advance_radio_processes(state, rho)
            for lane, state, (_, rho) in zip(lanes, states, begun)
        ]
        u = len(lanes)
        cmax = max(len(lane._candidates) for lane in lanes)
        if cmax == 0:
            return [
                lane._finish_step(step, state, {}, {}, {})
                for lane, state, (step, _) in zip(lanes, states, begun)
            ]
        positions = np.array([state.position for state in states], dtype=np.float64)
        indoor = np.array([bool(state.indoor) for state in states])
        shadows = np.zeros((u, cmax), dtype=np.float64)
        fadings = np.zeros((u, cmax), dtype=np.float64)
        for i, (lane_shadows, lane_fadings) in enumerate(advances):
            c = lane_shadows.shape[0]
            shadows[i, :c] = lane_shadows
            fadings[i, :c] = lane_fadings
        rsrp, sinr, rsrq = backends.active().radio_step_multi(
            positions,
            indoor,
            self._shared_force_los,
            shadows,
            fadings,
            *self._packed_candidates(),
            _LOS_BLEND_M,
            _CO_CHANNEL_ACTIVITY,
        )
        records = []
        for i, (lane, state, (step, _)) in enumerate(zip(lanes, states, begun)):
            rsrp_map: Dict[int, float] = {}
            sinr_map: Dict[int, float] = {}
            rsrq_map: Dict[int, float] = {}
            for j, cell in enumerate(lane._candidates):
                rsrp_map[cell.cell_id] = float(rsrp[i, j])
                sinr_map[cell.cell_id] = float(sinr[i, j])
                rsrq_map[cell.cell_id] = float(rsrq[i, j])
            records.append(lane._finish_step(step, state, rsrp_map, sinr_map, rsrq_map))
        return records

    # ------------------------------------------------------------------
    def run(
        self,
        duration_s: float,
        route_ids: Optional[Sequence[int]] = None,
        keep_traces: bool = True,
        on_record: Optional[Callable[[int, TraceRecord], None]] = None,
    ) -> Optional[List[Trace]]:
        """Simulate the cohort for ``duration_s`` seconds in lockstep.

        With ``keep_traces=False`` nothing is retained — each record is
        handed to ``on_record(lane_index, record)`` and dropped, the
        streaming mode shard workers use.  Otherwise returns one
        :class:`Trace` per lane (``route_ids`` defaults to lane order).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not keep_traces and on_record is None:
            raise ValueError("keep_traces=False needs an on_record callback")
        lanes = self.lanes
        ids = list(route_ids) if route_ids is not None else list(range(len(lanes)))
        if len(ids) != len(lanes):
            raise ValueError(f"got {len(ids)} route_ids for {len(lanes)} lanes")
        n_steps = max(1, int(round(duration_s / self.dt_s)))
        states = [lane.mobility.reset(lane._rng) for lane in lanes]
        for lane in lanes:
            lane.reset()
        per_lane: Optional[List[List[TraceRecord]]] = (
            [[] for _ in lanes] if keep_traces else None
        )
        with obs.sample_window("simulate.multi"), obs.span(
            "simulate.multi.run", lanes=len(lanes), steps=n_steps, batch=self._use_batch()
        ):
            for _ in range(n_steps):
                states = [lane.mobility.step(self.dt_s, lane._rng) for lane in lanes]
                for i, rec in enumerate(self.step_all(states)):
                    if per_lane is not None:
                        per_lane[i].append(rec)
                    if on_record is not None:
                        on_record(i, rec)
            for lane in lanes:
                lane._publish_obs_counts()
        if per_lane is None:
            return None
        return [
            Trace(
                records=per_lane[i],
                dt_s=lane.dt_s,
                operator=lane.operator.name,
                scenario=lane.scenario,
                mobility=lane.mobility_name,
                modem=lane.ue.modem,
                rat=lane.rat,
                route_id=ids[i],
                seed=lane.seed,
            )
            for i, lane in enumerate(lanes)
        ]
