"""Trace data model: the Table 12 feature schema + JSONL persistence.

A :class:`TraceRecord` is one sampling instant (10 ms or 1 s) holding
per-component-carrier PHY features exactly as a UE could collect them
(paper Table 3 / Table 12): band info, ssRSRP, ssRSRQ, SINR, CQI, BLER,
and optionally #RB, #Layers, MCS — plus the RRC CA events and the
per-CC and aggregate throughput.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

#: per-CC feature names in canonical order (ML input layout).
CC_FEATURES: Tuple[str, ...] = (
    "rsrp_dbm",
    "rsrq_db",
    "sinr_db",
    "cqi",
    "bler",
    "n_rb",
    "n_layers",
    "mcs",
    "tput_mbps",
    "is_pcell",
)


@dataclass
class CCSample:
    """Per-component-carrier observation at one instant."""

    channel_key: str
    band_name: str
    pci: int
    is_pcell: bool
    active: bool
    rsrp_dbm: float
    rsrq_db: float
    sinr_db: float
    cqi: int
    bler: float
    n_rb: float
    n_layers: int
    mcs: int
    tput_mbps: float

    def feature_vector(self) -> np.ndarray:
        """Numeric features in :data:`CC_FEATURES` order."""
        return np.array([getattr(self, name) for name in CC_FEATURES], dtype=np.float64)

    @staticmethod
    def inactive(channel_key: str = "", band_name: str = "") -> "CCSample":
        """Placeholder for a configured-but-inactive CC slot."""
        return CCSample(
            channel_key=channel_key,
            band_name=band_name,
            pci=-1,
            is_pcell=False,
            active=False,
            rsrp_dbm=-140.0,
            rsrq_db=-30.0,
            sinr_db=-10.0,
            cqi=0,
            bler=0.0,
            n_rb=0.0,
            n_layers=0,
            mcs=0,
            tput_mbps=0.0,
        )


@dataclass
class TraceRecord:
    """One sampling instant of a measurement trace."""

    t: float
    position: Tuple[float, float]
    ccs: List[CCSample]
    total_tput_mbps: float
    events: List[str] = field(default_factory=list)  #: RRC events this step
    indoor: bool = False
    speed_mps: float = 0.0

    @property
    def n_active_ccs(self) -> int:
        return sum(1 for cc in self.ccs if cc.active)

    @property
    def pcell(self) -> Optional[CCSample]:
        for cc in self.ccs:
            if cc.active and cc.is_pcell:
                return cc
        return None

    @property
    def combo_key(self) -> str:
        """Ordered CA combination, PCell first (e.g. ``n41+n25+n41``)."""
        active = [cc for cc in self.ccs if cc.active]
        active.sort(key=lambda cc: (not cc.is_pcell,))
        return "+".join(cc.band_name for cc in active)

    @property
    def combo_channels(self) -> str:
        """Ordered CA combination at channel granularity."""
        active = [cc for cc in self.ccs if cc.active]
        active.sort(key=lambda cc: (not cc.is_pcell,))
        return "+".join(cc.channel_key for cc in active)

    @property
    def aggregate_bandwidth_mhz(self) -> float:
        # bandwidth is encoded in the channel key's plan; recomputed upstream.
        return sum(cc.n_rb for cc in self.ccs if cc.active)


@dataclass
class Trace:
    """A contiguous measurement run with fixed sampling period."""

    records: List[TraceRecord]
    dt_s: float
    operator: str = ""
    scenario: str = ""
    mobility: str = ""
    modem: str = ""
    rat: str = "5G"
    route_id: int = 0
    seed: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def duration_s(self) -> float:
        return len(self.records) * self.dt_s

    def throughput_series(self) -> np.ndarray:
        """Aggregate throughput (Mbps) over time."""
        return np.array([rec.total_tput_mbps for rec in self.records])

    def cc_count_series(self) -> np.ndarray:
        return np.array([rec.n_active_ccs for rec in self.records])

    def event_steps(self) -> List[int]:
        """Indices at which any RRC CA event occurred."""
        return [i for i, rec in enumerate(self.records) if rec.events]

    def channel_slots(self) -> List[str]:
        """Stable per-slot channel keys (union over the trace)."""
        slots: List[str] = []
        for rec in self.records:
            for i, cc in enumerate(rec.ccs):
                if i >= len(slots):
                    slots.append(cc.channel_key)
        return slots

    # ------------------------------------------------------------------
    # ML feature extraction
    # ------------------------------------------------------------------
    def feature_tensor(self, max_ccs: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(features, mask, total)``.

        features: (T, max_ccs, F) per-CC features, zeros where inactive.
        mask:     (T, max_ccs) binary activity mask (the RRC-derived
                  state vector *I* of the paper's §5.2).
        total:    (T,) aggregate throughput in Mbps.

        Slot assignment is *stable*: each channel keeps its slot for as
        long as it stays configured, so a slot's time series really is
        one carrier's history (the property Prism5G's per-CC RNN relies
        on).  New channels claim a free slot, evicting the
        least-recently-active owner if none is free; channels beyond
        ``max_ccs`` concurrent ones are dropped from the tensor (their
        throughput still counts toward ``total``).
        """
        n = len(self.records)
        features = np.zeros((n, max_ccs, len(CC_FEATURES)))
        mask = np.zeros((n, max_ccs))
        total = np.zeros(n)
        slot_of: Dict[str, int] = {}
        last_active: Dict[str, int] = {}
        for t, rec in enumerate(self.records):
            total[t] = rec.total_tput_mbps
            active = sorted(
                (cc for cc in rec.ccs if cc.active),
                key=lambda cc: (not cc.is_pcell,),
            )
            active_keys = {cc.channel_key for cc in active}
            for cc in active:
                if cc.channel_key not in slot_of:
                    used = set(slot_of.values())
                    free = [s for s in range(max_ccs) if s not in used]
                    if free:
                        slot_of[cc.channel_key] = free[0]
                    else:
                        # evict the least-recently-active inactive owner
                        evictable = [k for k in slot_of if k not in active_keys]
                        if not evictable:
                            continue  # more concurrent CCs than slots
                        victim = min(evictable, key=lambda k: last_active.get(k, -1))
                        slot_of[cc.channel_key] = slot_of.pop(victim)
                slot = slot_of[cc.channel_key]
                last_active[cc.channel_key] = t
                features[t, slot] = cc.feature_vector()
                mask[t, slot] = 1.0
        return features, mask, total

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines (one record per line + header)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "dt_s": self.dt_s,
            "operator": self.operator,
            "scenario": self.scenario,
            "mobility": self.mobility,
            "modem": self.modem,
            "rat": self.rat,
            "route_id": self.route_id,
            "seed": self.seed,
        }
        with path.open("w") as handle:
            handle.write(json.dumps({"header": header}) + "\n")
            for rec in self.records:
                payload = asdict(rec)
                payload["position"] = list(rec.position)
                handle.write(json.dumps(payload) + "\n")

    @staticmethod
    def from_jsonl(path: Union[str, Path]) -> "Trace":
        """Load a trace written by :meth:`to_jsonl`."""
        path = Path(path)
        records: List[TraceRecord] = []
        header: Dict = {}
        with path.open() as handle:
            for line_no, line in enumerate(handle):
                payload = json.loads(line)
                if line_no == 0 and "header" in payload:
                    header = payload["header"]
                    continue
                ccs = [CCSample(**cc) for cc in payload.pop("ccs")]
                payload["position"] = tuple(payload["position"])
                records.append(TraceRecord(ccs=ccs, **payload))
        return Trace(records=records, **header)


class TraceSet:
    """A collection of traces with shared metadata filters."""

    def __init__(self, traces: Sequence[Trace]) -> None:
        self.traces = list(traces)

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def __getitem__(self, index: int) -> Trace:
        return self.traces[index]

    def filter(self, **criteria) -> "TraceSet":
        """Filter by metadata equality, e.g. ``filter(operator="OpZ")``."""
        selected = []
        for trace in self.traces:
            if all(getattr(trace, key) == value for key, value in criteria.items()):
                selected.append(trace)
        return TraceSet(selected)

    def total_duration_s(self) -> float:
        return sum(trace.duration_s for trace in self.traces)

    def throughput_samples(self) -> np.ndarray:
        """All aggregate throughput samples pooled across traces."""
        if not self.traces:
            return np.empty(0)
        return np.concatenate([trace.throughput_series() for trace in self.traces])
