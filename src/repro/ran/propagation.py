"""Radio propagation: pathloss, correlated shadowing, fast fading.

Grounded in the 3GPP TR 38.901 UMa/UMi models.  What matters for the
paper's phenomena is that (a) pathloss grows with carrier frequency, so
low-band (n71) reaches farther than mid-band (n41) and far farther than
mmWave — driving PCell choice and SCell availability (Figs 27-28);
(b) shadowing is *spatially correlated* but only *partially correlated
across bands* at the same location, reproducing the intra- vs
inter-band RSRP correlation structure of Figs 11-13; and (c) fast
fading is time-correlated with mobility (Doppler), giving the 10 ms
traces their short-term texture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: thermal noise power spectral density in dBm/Hz at 290 K.
THERMAL_NOISE_DBM_HZ = -174.0


def freespace_pathloss_db(distance_m: float, freq_mhz: float) -> float:
    """Free-space pathloss (Friis)."""
    distance_m = max(distance_m, 1.0)
    return 20 * math.log10(distance_m) + 20 * math.log10(freq_mhz) - 27.55


def urban_macro_pathloss_db(distance_m: float, freq_mhz: float, los: bool = False) -> float:
    """3GPP TR 38.901 UMa pathloss (simplified, d in metres, f in MHz).

    LOS:  PL = 28.0 + 22 log10(d) + 20 log10(f_GHz)
    NLOS: PL = 13.54 + 39.08 log10(d) + 20 log10(f_GHz) - 0.6(h_UT - 1.5)
    """
    distance_m = max(distance_m, 10.0)
    f_ghz = freq_mhz / 1e3
    if los:
        return 28.0 + 22.0 * math.log10(distance_m) + 20.0 * math.log10(f_ghz)
    return 13.54 + 39.08 * math.log10(distance_m) + 20.0 * math.log10(f_ghz)


def urban_macro_pathloss_db_array(
    distance_m: np.ndarray, freq_mhz: np.ndarray, los: bool = False
) -> np.ndarray:
    """Vectorized :func:`urban_macro_pathloss_db` over candidate arrays.

    Same model expressions evaluated with numpy ufuncs; SIMD
    transcendentals round differently from ``math.log10`` in the last
    ulp, so results match the scalar path to ~1e-12 relative, not bit
    for bit (see the simulator's per-field equivalence tests).
    """
    d = np.maximum(np.asarray(distance_m, dtype=np.float64), 10.0)
    f_ghz = np.asarray(freq_mhz, dtype=np.float64) / 1e3
    if los:
        return 28.0 + 22.0 * np.log10(d) + 20.0 * np.log10(f_ghz)
    return 13.54 + 39.08 * np.log10(d) + 20.0 * np.log10(f_ghz)


def indoor_penetration_loss_db(freq_mhz: float) -> float:
    """Building-entry loss, strongly frequency dependent (TR 38.901 §7.4.3).

    Low band ~12 dB, mid band ~16-19 dB, mmWave effectively blocking
    (~49 dB); this frequency gap is why OpZ anchors indoor CA on the
    n71 FDD PCell while n41 survives only as an SCell (Fig 28).
    """
    f_ghz = freq_mhz / 1e3
    return 10.0 + 8.0 * f_ghz ** 0.7


@dataclass
class ShadowingProcess:
    """Spatially correlated log-normal shadowing (Gudmundson model).

    Correlation decays exponentially with travelled distance with a
    decorrelation length ``decorr_m``.  A per-band independent component
    mixed with a shared site component controls the cross-band
    correlation: intra-band CCs (same site, same frequency) see nearly
    identical shadowing while inter-band CCs decorrelate (paper Fig 13).
    """

    sigma_db: float = 6.0
    decorr_m: float = 50.0
    band_mix: float = 0.6  #: fraction of variance from the band-specific part

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ValueError("sigma_db must be non-negative")
        if self.decorr_m <= 0:
            raise ValueError("decorr_m must be positive")
        if not 0.0 <= self.band_mix <= 1.0:
            raise ValueError("band_mix must be in [0, 1]")
        self._shared = 0.0
        self._own = 0.0
        self._initialized = False

    def sample(self, moved_m: float, rng: np.random.Generator, shared_value: Optional[float] = None) -> float:
        """Advance the process by ``moved_m`` metres and return loss in dB.

        ``shared_value`` lets multiple same-site processes reuse one
        site-common component (pass the value returned by
        :meth:`shared_component` of a master process).
        """
        rho = math.exp(-abs(moved_m) / self.decorr_m)
        innovation_scale = math.sqrt(max(1.0 - rho * rho, 0.0))
        if not self._initialized:
            self._own = rng.normal(0.0, 1.0)
            self._shared = rng.normal(0.0, 1.0) if shared_value is None else shared_value
            self._initialized = True
        else:
            self._own = rho * self._own + innovation_scale * rng.normal(0.0, 1.0)
            if shared_value is None:
                self._shared = rho * self._shared + innovation_scale * rng.normal(0.0, 1.0)
            else:
                self._shared = shared_value
        mixed = math.sqrt(self.band_mix) * self._own + math.sqrt(1.0 - self.band_mix) * self._shared
        return self.sigma_db * mixed

    def shared_component(self) -> float:
        return self._shared


@dataclass
class FastFadingProcess:
    """Time-correlated small-scale fading margin in dB (AR(1) model).

    The correlation time scales inversely with Doppler spread, i.e.
    with UE speed and carrier frequency; stationary UEs see slowly
    varying fading while driving UEs see fast variation, matching the
    per-granularity texture of the measured traces.
    """

    sigma_db: float = 2.0

    def __post_init__(self) -> None:
        self._state = 0.0
        self._initialized = False

    @staticmethod
    def coherence_time_s(speed_mps: float, freq_mhz: float) -> float:
        """Approximate channel coherence time (0.423 / f_doppler)."""
        speed = max(speed_mps, 0.05)
        doppler_hz = speed * freq_mhz * 1e6 / 3e8
        return 0.423 / doppler_hz

    def sample(self, dt_s: float, speed_mps: float, freq_mhz: float, rng: np.random.Generator) -> float:
        rho = math.exp(-dt_s / self.coherence_time_s(speed_mps, freq_mhz))
        if not self._initialized:
            self._state = rng.normal(0.0, 1.0)
            self._initialized = True
        else:
            self._state = rho * self._state + math.sqrt(max(1.0 - rho * rho, 0.0)) * rng.normal(0.0, 1.0)
        return self.sigma_db * self._state


def noise_power_dbm(bandwidth_mhz: float, noise_figure_db: float = 7.0) -> float:
    """Receiver noise power over the channel bandwidth."""
    if bandwidth_mhz <= 0:
        raise ValueError("bandwidth must be positive")
    return THERMAL_NOISE_DBM_HZ + 10 * math.log10(bandwidth_mhz * 1e6) + noise_figure_db


def rsrp_dbm(
    tx_power_dbm: float,
    pathloss_db: float,
    shadowing_db: float = 0.0,
    fading_db: float = 0.0,
    n_rb: int = 100,
) -> float:
    """Reference-signal received power: per-RE received power.

    Total cell power is spread over all sub-carriers; RSRP is the power
    of a single reference RE.
    """
    per_re_tx = tx_power_dbm - 10 * math.log10(max(n_rb, 1) * 12)
    return per_re_tx - pathloss_db - shadowing_db + fading_db


def sinr_db(
    rsrp: float,
    noise_dbm_per_re: float,
    interference_dbm_per_re: float = -math.inf,
) -> float:
    """SINR per RE given noise and co-channel interference powers."""
    signal_mw = 10 ** (rsrp / 10.0)
    noise_mw = 10 ** (noise_dbm_per_re / 10.0)
    interference_mw = 0.0 if interference_dbm_per_re == -math.inf else 10 ** (interference_dbm_per_re / 10.0)
    return 10 * math.log10(signal_mw / (noise_mw + interference_mw))


def rsrq_db(rsrp: float, rssi_dbm: float, n_rb: int) -> float:
    """Reference-signal received quality: N_RB * RSRP / RSSI (in dB)."""
    if n_rb < 1:
        raise ValueError("n_rb must be >= 1")
    return 10 * math.log10(n_rb) + rsrp - rssi_dbm
