"""ViVo: visibility-aware volumetric (XR) streaming simulator (§3.3, §7).

ViVo [16] streams 3D point-cloud frames with a hard 150 ms delivery
deadline, picking each frame's quality level (point density) from a
bandwidth estimate for the next 150 ms.  QoE = (average quality level,
stall time), where a frame that misses its deadline stalls playback.

The simulator consumes a throughput time series at a fine granularity
(10 ms in the paper) and a *bandwidth estimator* — an array of
predicted mean bandwidths for the next-deadline window at every step.
Estimators: the stock ViVo moving-average, any trained predictor, or
the oracle ("ideal ViVo") that reads the actual future.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .qoe import QoEResult

#: default quality ladder as fractions of the session's max bitrate.
DEFAULT_QUALITY_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class ViVoConfig:
    """ViVo session parameters.

    ``max_bitrate_mbps`` is 375 for the standard app and 750 for the
    scaled-up variant the paper uses over 4CC CA.
    """

    max_bitrate_mbps: float = 375.0
    quality_fractions: Sequence[float] = DEFAULT_QUALITY_FRACTIONS
    frame_interval_s: float = 1.0 / 30.0
    deadline_s: float = 0.150
    safety: float = 0.9  #: fraction of the estimate ViVo dares to use

    @property
    def bitrates_mbps(self) -> np.ndarray:
        return np.asarray([f * self.max_bitrate_mbps for f in self.quality_fractions])


def future_mean_bandwidth(tput: np.ndarray, dt_s: float, window_s: float) -> np.ndarray:
    """Oracle estimator: actual mean bandwidth over the next window."""
    tput = np.asarray(tput, dtype=np.float64)
    steps = max(1, int(round(window_s / dt_s)))
    out = np.empty_like(tput)
    cumsum = np.concatenate([[0.0], np.cumsum(tput)])
    for i in range(len(tput)):
        j = min(i + steps, len(tput))
        out[i] = (cumsum[j] - cumsum[i]) / max(j - i, 1)
    return out


def past_mean_bandwidth(tput: np.ndarray, dt_s: float, window_s: float) -> np.ndarray:
    """Stock ViVo estimator: mean of the recent past window."""
    tput = np.asarray(tput, dtype=np.float64)
    steps = max(1, int(round(window_s / dt_s)))
    out = np.empty_like(tput)
    cumsum = np.concatenate([[0.0], np.cumsum(tput)])
    for i in range(len(tput)):
        lo = max(0, i - steps + 1)
        out[i] = (cumsum[i + 1] - cumsum[lo]) / max(i + 1 - lo, 1)
    return out


class ViVoSimulator:
    """Frame-by-frame delivery simulation against a throughput trace."""

    def __init__(self, config: Optional[ViVoConfig] = None) -> None:
        self.config = config or ViVoConfig()

    def _choose_quality(self, estimate_mbps: float) -> int:
        """Highest quality whose bitrate fits the (safety-scaled) estimate."""
        usable = self.config.safety * max(estimate_mbps, 0.0)
        bitrates = self.config.bitrates_mbps
        level = 0
        for i, rate in enumerate(bitrates):
            if rate <= usable:
                level = i
        return level

    def run(
        self,
        tput_mbps: np.ndarray,
        dt_s: float,
        bandwidth_estimate_mbps: np.ndarray,
    ) -> QoEResult:
        """Stream frames over the trace using the given estimates.

        ``bandwidth_estimate_mbps[i]`` is the estimator's output at step
        ``i`` for the next deadline window; frames start at multiples of
        the frame interval and must finish within ``deadline_s``.
        """
        tput = np.asarray(tput_mbps, dtype=np.float64)
        estimates = np.asarray(bandwidth_estimate_mbps, dtype=np.float64)
        if tput.shape != estimates.shape:
            raise ValueError("estimate series must align with the throughput series")
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        cfg = self.config
        duration = len(tput) * dt_s
        n_frames = int((duration - cfg.deadline_s) / cfg.frame_interval_s)
        if n_frames < 1:
            raise ValueError("trace too short for a single frame")

        qualities: List[int] = []
        switches = 0
        stall_time = 0.0
        n_stalls = 0
        previous_quality: Optional[int] = None

        for frame in range(n_frames):
            start = int(frame * cfg.frame_interval_s / dt_s)
            quality = self._choose_quality(estimates[start])
            qualities.append(quality)
            if previous_quality is not None and quality != previous_quality:
                switches += 1
            previous_quality = quality
            size_mbit = cfg.bitrates_mbps[quality] * cfg.frame_interval_s
            # deliver using the actual link: integrate capacity until done
            delivered = 0.0
            step = start
            elapsed = 0.0
            while delivered < size_mbit and step < len(tput):
                delivered += tput[step] * dt_s
                elapsed += dt_s
                step += 1
            if delivered < size_mbit:
                # ran off the trace; extrapolate with the last sample
                remaining = size_mbit - delivered
                last = max(tput[-1], 1e-6)
                elapsed += remaining / last
            if elapsed > cfg.deadline_s:
                stall_time += elapsed - cfg.deadline_s
                n_stalls += 1
        return QoEResult(
            avg_quality=float(np.mean(qualities)),
            stall_time_s=stall_time,
            n_stalls=n_stalls,
            n_units=n_frames,
            quality_switches=switches,
        )

    def run_ideal(self, tput_mbps: np.ndarray, dt_s: float) -> QoEResult:
        """The paper's *ideal ViVo*: estimator = actual future bandwidth."""
        oracle = future_mean_bandwidth(tput_mbps, dt_s, self.config.deadline_s)
        return self.run(tput_mbps, dt_s, oracle)

    def run_stock(self, tput_mbps: np.ndarray, dt_s: float, history_s: float = 0.5) -> QoEResult:
        """Stock ViVo: past-window mean estimator."""
        estimate = past_mean_bandwidth(tput_mbps, dt_s, history_s)
        return self.run(tput_mbps, dt_s, estimate)
