"""MPC-based adaptive-bitrate video streaming simulator (paper §7).

Implements the control-theoretic ABR of Yin et al. [50]: at each chunk
boundary the client picks the bitrate sequence over a lookahead window
that maximizes a QoE objective (bitrate reward − rebuffering penalty −
smoothness penalty), given buffer state and a bandwidth forecast.

The paper emulates 16K video over 5G CA traces with the quality ladder
[1.5, 2.5, 40.71, 152.66, 280, 585] Mbps (360p..16K) and swaps MPC's
stock harmonic-mean forecaster for Prism5G.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..forecast.harmonic import harmonic_mean
from .qoe import QoEResult

#: the paper's 16K ladder in Mbps: [360p, 480p, 2K, 4K, 8K, 16K].
PAPER_BITRATES_MBPS: Tuple[float, ...] = (1.5, 2.5, 40.71, 152.66, 280.0, 585.0)


@dataclass
class ABRConfig:
    """Player and MPC parameters."""

    bitrates_mbps: Sequence[float] = PAPER_BITRATES_MBPS
    chunk_s: float = 2.0
    buffer_max_s: float = 30.0
    startup_buffer_s: float = 4.0
    lookahead: int = 3  #: chunks of MPC lookahead
    rebuffer_penalty: float = 600.0  #: QoE penalty per stalled second (Mbps-equiv, ~max bitrate)
    switch_penalty: float = 1.0

    def __post_init__(self) -> None:
        rates = list(self.bitrates_mbps)
        if rates != sorted(rates):
            raise ValueError("bitrates must be ascending")
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")


#: a forecaster maps (history Mbps, horizon chunks, chunk seconds) -> per-chunk Mbps.
Forecaster = Callable[[np.ndarray, int, float], np.ndarray]


def harmonic_forecaster(history: np.ndarray, horizon: int, chunk_s: float) -> np.ndarray:
    """Stock MPC forecaster: harmonic mean of the last 5 samples."""
    window = np.asarray(history, dtype=np.float64)[-5:]
    if window.size == 0:
        return np.full(horizon, 1.0)
    return np.full(horizon, harmonic_mean(window))


class MPCPlayer:
    """Chunked video session driven by MPC decisions."""

    def __init__(self, config: Optional[ABRConfig] = None) -> None:
        self.config = config or ABRConfig()

    # ------------------------------------------------------------------
    def _plan(
        self,
        forecast_mbps: np.ndarray,
        buffer_s: float,
        last_level: Optional[int],
    ) -> int:
        """Exhaustive MPC over the lookahead; returns the next level."""
        cfg = self.config
        rates = cfg.bitrates_mbps
        best_score, best_first = -np.inf, 0
        horizon = min(cfg.lookahead, len(forecast_mbps))
        for plan in itertools.product(range(len(rates)), repeat=horizon):
            score = 0.0
            buf = buffer_s
            prev = last_level
            for step, level in enumerate(plan):
                bandwidth = max(forecast_mbps[step], 1e-6)
                download_s = rates[level] * cfg.chunk_s / bandwidth
                rebuffer = max(download_s - buf, 0.0)
                buf = max(buf - download_s, 0.0) + cfg.chunk_s
                buf = min(buf, cfg.buffer_max_s)
                score += rates[level]
                score -= cfg.rebuffer_penalty * rebuffer
                if prev is not None:
                    score -= cfg.switch_penalty * abs(rates[level] - rates[prev])
                prev = level
            if score > best_score:
                best_score, best_first = score, plan[0]
        return best_first

    # ------------------------------------------------------------------
    def run(
        self,
        tput_mbps: np.ndarray,
        dt_s: float,
        forecaster: Forecaster = harmonic_forecaster,
        n_chunks: Optional[int] = None,
    ) -> QoEResult:
        """Stream over a throughput trace; loops the trace if needed."""
        cfg = self.config
        tput = np.asarray(tput_mbps, dtype=np.float64)
        if tput.size < 2:
            raise ValueError("trace too short")
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        total_chunks = n_chunks or max(1, int(len(tput) * dt_s / cfg.chunk_s) - cfg.lookahead)

        clock = 0.0
        buffer_s = cfg.startup_buffer_s
        last_level: Optional[int] = None
        bitrates: List[float] = []
        stall_time = 0.0
        n_stalls = 0
        switches = 0
        observed: List[float] = []

        def bandwidth_at(t: float) -> float:
            index = int(t / dt_s) % len(tput)
            return max(tput[index], 1e-6)

        for _ in range(total_chunks):
            history = np.asarray(observed[-10:]) if observed else tput[:1]
            forecast = np.asarray(forecaster(history, cfg.lookahead, cfg.chunk_s), dtype=np.float64)
            if forecast.shape[0] < cfg.lookahead:
                forecast = np.pad(forecast, (0, cfg.lookahead - len(forecast)), mode="edge")
            level = self._plan(forecast, buffer_s, last_level)
            if last_level is not None and level != last_level:
                switches += 1
            last_level = level
            size_mbit = cfg.bitrates_mbps[level] * cfg.chunk_s
            # download against the actual trace
            downloaded = 0.0
            download_time = 0.0
            while downloaded < size_mbit:
                rate = bandwidth_at(clock + download_time)
                step = min(dt_s, (size_mbit - downloaded) / rate)
                downloaded += rate * step
                download_time += step
            observed.append(size_mbit / download_time if download_time > 0 else cfg.bitrates_mbps[level])
            rebuffer = max(download_time - buffer_s, 0.0)
            if rebuffer > 1e-9:
                stall_time += rebuffer
                n_stalls += 1
            buffer_s = max(buffer_s - download_time, 0.0) + cfg.chunk_s
            buffer_s = min(buffer_s, cfg.buffer_max_s)
            clock += download_time
            bitrates.append(cfg.bitrates_mbps[level])

        return QoEResult(
            avg_quality=float(np.mean(bitrates)),
            stall_time_s=stall_time,
            n_stalls=n_stalls,
            n_units=total_chunks,
            quality_switches=switches,
        )


def oracle_forecaster_factory(tput_mbps: np.ndarray, dt_s: float, chunk_s: float) -> Forecaster:
    """Build a clairvoyant forecaster for *this* trace (upper bound).

    It tracks how much of the trace has been consumed via the number of
    history samples seen so far (one per downloaded chunk).
    """
    tput = np.asarray(tput_mbps, dtype=np.float64)
    steps_per_chunk = max(1, int(round(chunk_s / dt_s)))

    def forecast(history: np.ndarray, horizon: int, _chunk_s: float) -> np.ndarray:
        consumed = len(history) * steps_per_chunk
        out = np.empty(horizon)
        for k in range(horizon):
            lo = (consumed + k * steps_per_chunk) % len(tput)
            hi = lo + steps_per_chunk
            window = np.take(tput, np.arange(lo, hi), mode="wrap")
            out[k] = window.mean()
        return out

    return forecast
