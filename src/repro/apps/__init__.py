"""QoE use cases: ViVo volumetric streaming and MPC video ABR."""

from .bridge import (
    predicted_bandwidth_series,
    predictor_forecaster,
    trace_windows_normalized,
)
from .abr import (
    ABRConfig,
    Forecaster,
    MPCPlayer,
    PAPER_BITRATES_MBPS,
    harmonic_forecaster,
    oracle_forecaster_factory,
)
from .qoe import QoEResult, relative_degradation, stall_tail_improvements
from .vivo import (
    DEFAULT_QUALITY_FRACTIONS,
    ViVoConfig,
    ViVoSimulator,
    future_mean_bandwidth,
    past_mean_bandwidth,
)

__all__ = [
    "ABRConfig",
    "DEFAULT_QUALITY_FRACTIONS",
    "Forecaster",
    "MPCPlayer",
    "PAPER_BITRATES_MBPS",
    "QoEResult",
    "ViVoConfig",
    "ViVoSimulator",
    "future_mean_bandwidth",
    "harmonic_forecaster",
    "oracle_forecaster_factory",
    "past_mean_bandwidth",
    "predicted_bandwidth_series",
    "predictor_forecaster",
    "relative_degradation",
    "stall_tail_improvements",
    "trace_windows_normalized",
]
