"""QoE metric containers shared by the ViVo and ABR use cases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass
class QoEResult:
    """Outcome of one streaming session."""

    avg_quality: float  #: mean quality level (ViVo) or bitrate Mbps (ABR)
    stall_time_s: float
    n_stalls: int
    n_units: int  #: frames (ViVo) or chunks (ABR)
    quality_switches: int = 0

    @property
    def stall_per_unit_ms(self) -> float:
        return self.stall_time_s * 1e3 / max(self.n_units, 1)


def relative_degradation(result: QoEResult, ideal: QoEResult) -> Dict[str, float]:
    """Percentage QoE loss vs the ideal (future-knowing) run — Fig 8/19.

    quality_drop_pct: how much lower the average quality is than ideal.
    stall_increase_pct: stall-time increase relative to the session
    length proxy (ideal stall + 1 s guard to avoid division blow-ups).
    """
    quality_drop = (ideal.avg_quality - result.avg_quality) / max(ideal.avg_quality, 1e-9) * 100.0
    stall_increase = (result.stall_time_s - ideal.stall_time_s) / max(ideal.stall_time_s, 1.0) * 100.0
    return {"quality_drop_pct": quality_drop, "stall_increase_pct": stall_increase}


def stall_tail_improvements(
    baseline_stalls: Sequence[float],
    improved_stalls: Sequence[float],
    percentiles: Sequence[float] = (99.0, 95.0, 90.0),
) -> Dict[float, float]:
    """Per-percentile stall-time reduction in seconds (paper Fig 21)."""
    baseline = np.asarray(baseline_stalls, dtype=np.float64)
    improved = np.asarray(improved_stalls, dtype=np.float64)
    if baseline.size == 0 or improved.size == 0:
        raise ValueError("need stall samples for both runs")
    return {
        q: float(np.percentile(baseline, q) - np.percentile(improved, q))
        for q in percentiles
    }
