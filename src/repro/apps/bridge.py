"""Bridge trained throughput predictors into the QoE applications.

The use cases (§7) replace an application's stock bandwidth estimator
with a trained predictor (e.g. ViVo+Prism5G, MPC+Prism5G).  This module
turns a fitted :class:`~repro.core.predictors.Predictor` plus a trace
into a per-step bandwidth-estimate series (for ViVo) or an MPC
forecaster callable (for ABR).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.predictors import Predictor
from ..core.prism5g import pack_inputs  # noqa: F401  (re-exported convenience)
from ..data.datasets import MLDataset
from ..data.windowing import WindowedDataset, window_trace
from ..ran.traces import Trace
from .abr import Forecaster
from .vivo import past_mean_bandwidth


def trace_windows_normalized(
    trace: Trace,
    dataset: MLDataset,
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
) -> Optional[WindowedDataset]:
    """Window one trace and normalize it with a training set's scalers."""
    windows = window_trace(trace, history, horizon, max_ccs)
    if windows is None:
        return None
    x, mask, y, y_hist, y_cc = windows
    n, t, c, f = x.shape
    x_norm = dataset.feature_scaler.transform(x.reshape(-1, f)).reshape(n, t, c, f)
    y_norm = dataset.target_scaler.transform(y.reshape(-1, 1)).reshape(y.shape)
    y_hist_norm = dataset.target_scaler.transform(y_hist.reshape(-1, 1)).reshape(y_hist.shape)
    span = dataset.target_scaler._range[0]
    return WindowedDataset(
        x=x_norm,
        mask=mask,
        y=y_norm,
        y_hist=y_hist_norm,
        trace_ids=np.zeros(n, dtype=int),
        y_cc=y_cc / span,
    )


def predicted_bandwidth_series(
    predictor: Predictor,
    trace: Trace,
    dataset: MLDataset,
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
) -> np.ndarray:
    """Per-step bandwidth estimates (Mbps) over a whole trace.

    The estimate at step ``t`` is the horizon-mean of the predictor's
    forecast given history ending at ``t``; the first ``history - 1``
    steps (no full history yet) fall back to the past-window mean, as
    stock ViVo would.
    """
    windows = trace_windows_normalized(trace, dataset, history, horizon, max_ccs)
    tput = trace.throughput_series()
    fallback = past_mean_bandwidth(tput, trace.dt_s, history * trace.dt_s)
    if windows is None:
        return fallback
    pred_norm = predictor.predict(windows)
    pred_mbps = dataset.denormalize_tput(pred_norm)
    estimates = fallback.copy()
    horizon_mean = np.maximum(pred_mbps.mean(axis=1), 0.0)
    # window i has history covering [i, i + history); its forecast is
    # available from step i + history - 1 onward.
    for i, value in enumerate(horizon_mean):
        estimates[i + history - 1] = value
    if len(horizon_mean):
        estimates[len(horizon_mean) + history - 1 :] = horizon_mean[-1]
    return estimates


def predictor_forecaster(
    predictor: Predictor,
    trace: Trace,
    dataset: MLDataset,
    chunk_s: float,
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
) -> Forecaster:
    """Build an MPC forecaster backed by a trained predictor.

    MPC consumes per-chunk bandwidth forecasts; we precompute the
    predictor's per-step series over the trace and serve chunk-mean
    slices of it, tracking position by the number of observed chunks
    (the same contract as :func:`repro.apps.abr.oracle_forecaster_factory`).
    """
    series = predicted_bandwidth_series(predictor, trace, dataset, history, horizon, max_ccs)
    steps_per_chunk = max(1, int(round(chunk_s / trace.dt_s)))

    def forecast(history_mbps: np.ndarray, n_ahead: int, _chunk_s: float) -> np.ndarray:
        consumed = len(history_mbps) * steps_per_chunk
        out = np.empty(n_ahead)
        for k in range(n_ahead):
            lo = (consumed + k * steps_per_chunk) % len(series)
            out[k] = np.take(series, np.arange(lo, lo + steps_per_chunk), mode="wrap").mean()
        return np.maximum(out, 1e-3)

    return forecast
