"""Pluggable compute backends for the fused hot-path primitives.

Every fused primitive in the repo — the LSTM/GRU sequence and cell
kernels, the affine projection, the Seq2Seq decoder rollout
(:mod:`repro.nn.kernels`) and the simulator's vectorized radio step
(:mod:`repro.ran.simulator`) — dispatches through the backend object
this package manages.  A backend is a module of pure ``ndarray ->
ndarray`` functions (see :data:`PRIMITIVES`); the kernel layer keeps
all autograd bookkeeping, so backends never see a ``Tensor``.

Two backends ship:

* ``numpy`` (:mod:`repro.backends.numpy_backend`) — the default and
  reference implementation, extracted verbatim from the pre-refactor
  fused kernels and therefore bit-identical to the loop oracles under
  the existing property tests.
* ``numba`` (:mod:`repro.backends.numba_backend`) — optional JIT
  compilation of the LSTM/GRU gate loops and the simulator radio step.
  When numba is not installed (or a name is unknown) resolution
  *degrades gracefully* to numpy and publishes the
  ``backend.fallback`` obs counter instead of failing the run.

Selection follows the PR-4 write-through-mirror pattern: the canonical
value is the ``backend`` runtime flag (:mod:`repro.runtime`, presetable
with ``REPRO_BACKEND``); this package registers a mirror that resolves
the *name* to a :class:`Backend` object once per flag change, so hot
paths pay one attribute read per kernel call.  Both the requested name
and the resolved name are stamped into run manifests
(:func:`repro.obs.manifest.kernel_paths`).

Backends may implement any subset of :data:`PRIMITIVES`; missing
entries are inherited from the numpy backend per-primitive, so a
compiled backend only overrides the loops it actually accelerates.

The resolution seam is also where the numeric sanitizer hooks in:
when the ``sanitize`` runtime flag is armed (``REPRO_SANITIZE=1`` /
``repro5g --sanitize``), the resolved backend is wrapped by
:func:`repro.sanitize.wrap_backend` so every primitive call is guarded
with NaN/Inf and backward shape/dtype checks — zero overhead while the
flag is off, because unwrapped and wrapped backends swap atomically at
flag changes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .. import runtime
from . import arena, numpy_backend

__all__ = [
    "Backend",
    "PRIMITIVES",
    "active",
    "active_name",
    "arena",
    "available_backends",
    "numpy_backend",
    "register_backend",
    "registered_backends",
    "requested_name",
    "sanitize_active",
]

#: the dispatchable primitive set every backend may implement.
PRIMITIVES = (
    "affine_forward",
    "affine_backward",
    "lstm_cell_forward",
    "lstm_cell_backward_h",
    "lstm_cell_backward_c",
    "gru_cell_forward",
    "gru_cell_backward",
    "lstm_seq_forward",
    "lstm_seq_backward",
    "gru_seq_forward",
    "gru_seq_backward",
    "lstm_decoder_forward",
    "lstm_decoder_backward",
    "radio_step",
    "radio_step_multi",
)


class Backend:
    """A resolved backend: one attribute per primitive, numpy-completed.

    Primitives the implementing module does not define are inherited
    from the numpy reference backend, so partial backends (a JIT that
    only compiles the recurrent loops) stay drop-in.
    """

    __slots__ = ("name",) + PRIMITIVES

    def __init__(self, name: str, module) -> None:
        self.name = name
        for fname in PRIMITIVES:
            fn = getattr(module, fname, None)
            if fn is None:
                fn = getattr(numpy_backend, fname)
            setattr(self, fname, fn)

    def __repr__(self) -> str:
        return f"Backend({self.name!r})"


def _load_numba():
    from . import numba_backend

    if not numba_backend.AVAILABLE:
        return None
    return numba_backend


#: name -> lazy loader returning the implementing module (or ``None``
#: when its dependency is unavailable, triggering the numpy fallback).
_REGISTRY: Dict[str, Callable[[], Optional[object]]] = {
    "numpy": lambda: numpy_backend,
    "numba": _load_numba,
}

_NUMPY = Backend("numpy", numpy_backend)
_ACTIVE: Backend = _NUMPY
_REQUESTED: str = "numpy"
_SANITIZE: bool = False


def register_backend(name: str, loader: Callable[[], Optional[object]]) -> None:
    """Register a backend loader under ``name`` (lowercased).

    ``loader`` returns the implementing module, or ``None`` if its
    dependency is unavailable (resolution then falls back to numpy).
    Re-registering a name replaces the loader; if the name is currently
    selected, it is re-resolved immediately.
    """
    name = name.strip().lower()
    if not name:
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name] = loader
    if name == _REQUESTED:
        _set_backend_mirror(name)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name (available or not), sorted."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """The registered backends whose dependencies import, sorted."""
    names = []
    for name, loader in _REGISTRY.items():
        try:
            module = loader()
        except ImportError:
            module = None
        if module is not None:
            names.append(name)
    return tuple(sorted(names))


def _publish_fallback(requested: str, reason: str) -> None:
    try:  # lazy: repro.obs must stay importable without repro.backends
        from .. import obs

        if obs.metrics_enabled():
            obs.counter("backend.fallback")
    except ImportError:  # pragma: no cover - partial installs
        pass


def _resolve(requested: str) -> Backend:
    loader = _REGISTRY.get(requested)
    if loader is None:
        _publish_fallback(requested, "unknown backend")
        return _NUMPY
    try:
        module = loader()
    except ImportError:
        module = None
    if module is None:
        _publish_fallback(requested, "backend unavailable")
        return _NUMPY
    if module is numpy_backend:
        return _NUMPY
    return Backend(requested, module)


def _set_backend_mirror(requested: object) -> None:
    global _ACTIVE, _REQUESTED
    _REQUESTED = str(requested)
    resolved = _resolve(_REQUESTED)
    if _SANITIZE:
        # lazy: repro.sanitize pulls in repro.obs, and this mirror fires
        # while this package is still initializing
        from .. import sanitize

        resolved = sanitize.wrap_backend(resolved, PRIMITIVES)
    _ACTIVE = resolved


def _set_sanitize_mirror(value: object) -> None:
    global _SANITIZE
    _SANITIZE = str(value) == "1"
    # re-resolve so the active backend gains/sheds its sanitizer wrap;
    # hot paths keep paying a single attribute read either way.
    _set_backend_mirror(_REQUESTED)


# canonical value lives in repro.runtime ("backend" flag, REPRO_BACKEND
# env); this mirror resolves name -> Backend object once per flag
# change.  The "sanitize" mirror is registered first so the backend
# mirror's initial resolution already sees the REPRO_SANITIZE preset.
runtime.register_mirror("sanitize", _set_sanitize_mirror)
runtime.register_mirror("backend", _set_backend_mirror)


def active() -> Backend:
    """The resolved backend object hot paths dispatch through."""
    return _ACTIVE


def active_name() -> str:
    """The *resolved* backend name (numpy when a fallback occurred)."""
    return _ACTIVE.name


def requested_name() -> str:
    """The backend name the runtime flag asked for (pre-fallback)."""
    return _REQUESTED


def sanitize_active() -> bool:
    """Whether the active backend is wrapped by the numeric sanitizer.

    Mirrors the ``sanitize`` runtime flag (see :mod:`repro.sanitize`);
    the resolved ``name`` stays the inner backend's, so this is the
    authoritative way to ask whether guards are armed.
    """
    return _SANITIZE
