"""The reference compute backend: plain numpy, bit-identical by construction.

Every numeric core here was extracted *verbatim* from the fused
primitives that used to live inline in :mod:`repro.nn.tensor` (and the
simulator's vectorized radio update) — same expressions, same
evaluation order, same in-place ufunc sequences — so forward values and
gradients are bit-identical to the pre-refactor kernels, and therefore
to the op-by-op loop oracles the property tests compare against.

The split of responsibilities with :mod:`repro.nn.kernels` is:

* **backend** (this module): all array math — forward values, saved
  activations, and the raw gradient arrays of every primitive.  The
  only inputs and outputs are plain ``np.ndarray``; each forward
  returns an opaque ``saved`` dict its paired backward consumes.
* **kernel layer**: autograd bookkeeping only — Tensor construction,
  parent wiring, gradient accumulation and broadcast reduction.

Scratch arrays whose lifetime ends with the training step are drawn
from the workspace arena (:mod:`repro.backends.arena`); arrays that
escape as ``Tensor.data`` (layer outputs, final states) are always
freshly allocated — see the arena's lifetime rules.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import arena

name = "numpy"
#: always importable: this is the fallback target for every other backend.
AVAILABLE = True


# ----------------------------------------------------------------------
# shared scalar helpers
# ----------------------------------------------------------------------
def sigmoid(x: np.ndarray) -> np.ndarray:
    """Same clipped logistic as ``Tensor.sigmoid`` (bit-identical).

    ``minimum(maximum(x, lo), hi)`` selects the exact same values as
    ``np.clip`` (NaNs propagate identically) while skipping np.clip's
    dispatch overhead, which dominates the sequence kernels' step loops.
    """
    return 1.0 / (1.0 + np.exp(-np.minimum(np.maximum(x, -60.0), 60.0)))


def sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """:func:`sigmoid` evaluated in place into ``out``.

    Same FP operation sequence (clamp, negate, exp, +1, reciprocal), so
    results are bit-identical — but with zero temporaries, which is what
    the sequence kernels' step loops are bound by.
    """
    np.maximum(x, -60.0, out=out)
    np.minimum(out, 60.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.reciprocal(out, out=out)
    return out


def _weight_grad(inp: np.ndarray, g: np.ndarray, weight_shape: Tuple[int, ...]) -> np.ndarray:
    """dW for ``out = inp @ W`` with ``inp (..., F)`` and ``g (..., O)``."""
    f, o = weight_shape
    return inp.reshape(-1, f).T @ g.reshape(-1, o)


# ----------------------------------------------------------------------
# affine: x @ W [+ h @ W_h] [+ b]
# ----------------------------------------------------------------------
def affine_forward(
    x: np.ndarray,
    weight: np.ndarray,
    h: Optional[np.ndarray],
    weight_h: Optional[np.ndarray],
    bias: Optional[np.ndarray],
) -> np.ndarray:
    value = x @ weight
    if h is not None:
        value = value + h @ weight_h
    if bias is not None:
        value = value + bias
    return value


def affine_backward(
    g: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    h: Optional[np.ndarray],
    weight_h: Optional[np.ndarray],
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    grads: Dict[str, np.ndarray] = {}
    if needs["x"]:
        grads["x"] = g @ weight.T
    if needs["weight"]:
        grads["weight"] = _weight_grad(x, g, weight.shape)
    if h is not None:
        if needs["h"]:
            grads["h"] = g @ weight_h.T
        if needs["weight_h"]:
            grads["weight_h"] = _weight_grad(h, g, weight_h.shape)
    if needs.get("bias"):
        grads["bias"] = g  # kernel layer reduces over broadcast axes
    return grads


# ----------------------------------------------------------------------
# single LSTM / GRU steps
# ----------------------------------------------------------------------
def lstm_cell_forward(
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, Dict]:
    hidden = weight_hh.shape[0]
    gates = x @ weight_ih + h_prev @ weight_hh + bias
    i = sigmoid(gates[:, 0 * hidden : 1 * hidden])
    f = sigmoid(gates[:, 1 * hidden : 2 * hidden])
    g_in = np.tanh(gates[:, 2 * hidden : 3 * hidden])
    o = sigmoid(gates[:, 3 * hidden : 4 * hidden])
    c_val = f * c_prev + i * g_in
    tanh_c = np.tanh(c_val)
    h_val = o * tanh_c
    saved = {"gates": gates, "i": i, "f": f, "g_in": g_in, "o": o, "tanh_c": tanh_c, "hidden": hidden}
    return h_val, c_val, saved


def lstm_cell_backward_h(gh: np.ndarray, saved: Dict) -> Tuple[np.ndarray, np.ndarray]:
    """Output-gate split of the cell backward: ``(dc contribution, d_o)``."""
    o, tanh_c = saved["o"], saved["tanh_c"]
    return gh * (o * (1.0 - tanh_c * tanh_c)), gh * tanh_c


def lstm_cell_backward_c(
    gc: np.ndarray,
    d_o: Optional[np.ndarray],
    saved: Dict,
    x: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    hidden = saved["hidden"]
    i, f, g_in, o = saved["i"], saved["f"], saved["g_in"], saved["o"]
    d_gates = np.empty_like(saved["gates"])
    d_gates[:, 0 * hidden : 1 * hidden] = (gc * g_in) * i * (1.0 - i)
    d_gates[:, 1 * hidden : 2 * hidden] = (gc * c_prev) * f * (1.0 - f)
    d_gates[:, 2 * hidden : 3 * hidden] = (gc * i) * (1.0 - g_in * g_in)
    if d_o is None:  # h was not part of the loss; only c flowed onward
        d_gates[:, 3 * hidden : 4 * hidden] = 0.0
    else:
        d_gates[:, 3 * hidden : 4 * hidden] = d_o * o * (1.0 - o)
    grads: Dict[str, np.ndarray] = {}
    if needs["c_prev"]:
        grads["c_prev"] = gc * f
    if needs["x"]:
        grads["x"] = d_gates @ weight_ih.T
    if needs["h_prev"]:
        grads["h_prev"] = d_gates @ weight_hh.T
    if needs["weight_ih"]:
        grads["weight_ih"] = x.T @ d_gates
    if needs["weight_hh"]:
        grads["weight_hh"] = h_prev.T @ d_gates
    if needs["bias"]:
        grads["bias"] = d_gates.sum(axis=0)
    return grads


def gru_cell_forward(
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    bias_n: np.ndarray,
) -> Tuple[np.ndarray, Dict]:
    hidden = weight_hh.shape[0]
    gates = x @ weight_ih + h_prev @ weight_hh + bias
    r = sigmoid(gates[:, :hidden])
    z = sigmoid(gates[:, hidden:])
    rh = r * h_prev
    n = np.tanh(x @ weight_in + rh @ weight_hn + bias_n)
    h_val = (1.0 - z) * n + z * h_prev
    saved = {"gates": gates, "r": r, "z": z, "n": n, "rh": rh, "hidden": hidden}
    return h_val, saved


def gru_cell_backward(
    gh: np.ndarray,
    saved: Dict,
    x: np.ndarray,
    h_prev: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    hidden = saved["hidden"]
    r, z, n, rh = saved["r"], saved["z"], saved["n"], saved["rh"]
    dz = gh * (h_prev - n)
    dn_pre = (gh * (1.0 - z)) * (1.0 - n * n)
    drh = dn_pre @ weight_hn.T
    d_gates = np.empty_like(saved["gates"])
    d_gates[:, :hidden] = (drh * h_prev) * r * (1.0 - r)
    d_gates[:, hidden:] = dz * z * (1.0 - z)
    grads: Dict[str, np.ndarray] = {}
    if needs["x"]:
        grads["x"] = d_gates @ weight_ih.T + dn_pre @ weight_in.T
    if needs["h_prev"]:
        grads["h_prev"] = gh * z + drh * r + d_gates @ weight_hh.T
    if needs["weight_ih"]:
        grads["weight_ih"] = x.T @ d_gates
    if needs["weight_hh"]:
        grads["weight_hh"] = h_prev.T @ d_gates
    if needs["bias"]:
        grads["bias"] = d_gates.sum(axis=0)
    if needs["weight_in"]:
        grads["weight_in"] = x.T @ dn_pre
    if needs["weight_hn"]:
        grads["weight_hn"] = rh.T @ dn_pre
    if needs["bias_n"]:
        grads["bias_n"] = dn_pre.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# fused LSTM over a whole (B, T, F) sequence
# ----------------------------------------------------------------------
def lstm_seq_forward(
    x: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    requires: bool,
) -> Tuple[np.ndarray, np.ndarray, Dict]:
    """Returns ``(outputs (B,T,H), c_T, saved)``.

    Hoisted input projection (one flat GEMM over all ``(t, b)`` rows),
    time-major in-place step loop — the exact operation order of the
    op-by-op cell, so forward values are bit-identical to the oracle.
    """
    batch, time, features = x.shape
    hidden = weight_hh.shape[0]
    # hoisted input projection: one flat GEMM over all (t, b) rows (a
    # 3-D matmul would dispatch B tiny GEMMs), laid out time-major so
    # each step reads a contiguous (B, 4H) block
    x_tm = arena.empty((time, batch, features), dtype=x.dtype)
    np.copyto(x_tm, x.transpose(1, 0, 2))
    dtype = np.result_type(x.dtype, weight_ih.dtype, h0.dtype, bias.dtype)
    gx = arena.empty((time * batch, 4 * hidden), dtype=dtype)
    np.matmul(x_tm.reshape(time * batch, -1), weight_ih, out=gx)
    gx = gx.reshape(time, batch, -1)
    # Scratch is laid out time-major so every per-step write lands in one
    # contiguous (B, ·) block, and every elementwise op below runs in
    # place (out=) with the exact operation order of the op-by-op cell —
    # same bits, no temporaries.  Activations are stored gate-major
    # (step, [i, f, g, o, tanh_c], B, H) so each gate view is a
    # contiguous (B, H) block: strided column views of a packed (B, 5H)
    # row defeat the SIMD ufunc loops (measured ~2.7x slower sigmoid).
    out_tm = arena.empty((time, batch, hidden), dtype=dtype)
    gates = arena.empty((batch, 4 * hidden), dtype=dtype)
    ig = arena.empty((batch, hidden), dtype=dtype)
    c_pair = arena.empty((2, batch, hidden), dtype=dtype)
    # materialized bias rows: the broadcast add of a (4H,) row measures
    # ~2x a same-shape add, and the loop pays it every step
    bias_rows = arena.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows[:] = bias
    if requires:
        act = arena.empty((time, 5, batch, hidden), dtype=dtype)
        c_hist = arena.empty((time, batch, hidden), dtype=dtype)  # c entering step t
    else:
        act = c_hist = None
        step_act = arena.empty((5, batch, hidden), dtype=dtype)
    h = h0
    c = c0
    for t in range(time):
        np.matmul(h, weight_hh, out=gates)
        np.add(gx[t], gates, out=gates)
        np.add(gates, bias_rows, out=gates)
        i, f, g_in, o, tanh_c = act[t] if requires else step_act
        sigmoid_into(gates[:, 0 * hidden : 1 * hidden], i)
        sigmoid_into(gates[:, 1 * hidden : 2 * hidden], f)
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=g_in)
        sigmoid_into(gates[:, 3 * hidden : 4 * hidden], o)
        if requires:
            c_hist[t] = c
        c_new = c_pair[t & 1]
        np.multiply(f, c, out=c_new)
        np.multiply(i, g_in, out=ig)
        np.add(c_new, ig, out=c_new)  # f*c + i*g, same order as the cell
        np.tanh(c_new, out=tanh_c)
        c = c_new
        h = out_tm[t]
        np.multiply(o, tanh_c, out=h)
    # both escape as Tensor data: fresh allocations, never pooled
    outputs = np.ascontiguousarray(out_tm.transpose(1, 0, 2))
    c = c.copy()  # detach the final state from the ping-pong scratch
    saved = {
        "x_tm": x_tm,
        "out_tm": out_tm,
        "act": act,
        "c_hist": c_hist,
        "dtype": dtype,
        "dims": (batch, time, hidden),
    }
    return outputs, c, saved


def lstm_seq_backward(
    g_out_bm: np.ndarray,
    dc_T: Optional[np.ndarray],
    saved: Dict,
    x: np.ndarray,
    h0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    batch, time, hidden = saved["dims"]
    dtype = saved["dtype"]
    act, c_hist = saved["act"], saved["c_hist"]
    x_tm, out_tm = saved["x_tm"], saved["out_tm"]
    # time-major like the forward scratch: contiguous per-step reads
    # of the incoming grad and writes of the gate grads
    g_out = arena.empty((time, batch, hidden), dtype=g_out_bm.dtype)
    np.copyto(g_out, g_out_bm.transpose(1, 0, 2))
    dc = dc_T
    if dc is None:
        dc = arena.zeros((batch, hidden), dtype=dtype)
    dh_carry = arena.zeros((batch, hidden), dtype=dtype)
    dg_tm = arena.empty((time, batch, 4 * hidden), dtype=dtype)
    dh = arena.empty((batch, hidden), dtype=dtype)
    t1 = arena.empty((batch, hidden), dtype=dtype)
    t2 = arena.empty((batch, hidden), dtype=dtype)
    for t in range(time - 1, -1, -1):
        i, f, g_in, o, tanh_c = act[t]
        dg_step = dg_tm[t]
        np.add(g_out[t], dh_carry, out=dh)
        # dc += dh * (o * (1 - tanh_c^2)), same association as the cell
        np.multiply(tanh_c, tanh_c, out=t1)
        np.subtract(1.0, t1, out=t1)
        np.multiply(o, t1, out=t1)
        np.multiply(dh, t1, out=t1)
        np.add(dc, t1, out=dc)
        # gate grads: ((dc * pre) * gate) * (1 - gate), per gate
        np.multiply(dc, g_in, out=t1)
        np.multiply(t1, i, out=t1)
        np.subtract(1.0, i, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 0 * hidden : 1 * hidden])
        np.multiply(dc, c_hist[t], out=t1)
        np.multiply(t1, f, out=t1)
        np.subtract(1.0, f, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 1 * hidden : 2 * hidden])
        np.multiply(dc, i, out=t1)
        np.multiply(g_in, g_in, out=t2)
        np.subtract(1.0, t2, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 2 * hidden : 3 * hidden])
        np.multiply(dh, tanh_c, out=t1)
        np.multiply(t1, o, out=t1)
        np.subtract(1.0, o, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 3 * hidden : 4 * hidden])
        np.matmul(dg_step, weight_hh.T, out=dh_carry)
        np.multiply(dc, f, out=dc)
    grads: Dict[str, np.ndarray] = {}
    if needs["h0"]:
        grads["h0"] = dh_carry.copy()
    if needs["c0"]:
        grads["c0"] = dc
    # the collapsed grad matmuls stay time-major: weight grads are
    # sums over the same (t, b) row set either way (reassociated at
    # ulp level, within the documented gradient tolerance), and
    # skipping a batch-major restore saves a multi-MB transpose
    # copy per backward call
    flat_g = dg_tm.reshape(time * batch, 4 * hidden)
    if needs["x"]:
        # one flat GEMM; the broadcast form would dispatch B small ones
        dx_flat = arena.empty((time * batch, x.shape[-1]), dtype=dtype)
        np.matmul(flat_g, weight_ih.T, out=dx_flat)
        grads["x"] = dx_flat.reshape(time, batch, -1).transpose(1, 0, 2)
    if needs["weight_ih"]:
        grads["weight_ih"] = x_tm.reshape(time * batch, -1).T @ flat_g
    if needs["weight_hh"]:
        # h entering step t is h0 for t=0 and the step-(t-1) output
        h_prev = arena.empty((time, batch, hidden), dtype=dtype)
        h_prev[0] = h0
        h_prev[1:] = out_tm[:-1]
        grads["weight_hh"] = h_prev.reshape(time * batch, hidden).T @ flat_g
    if needs["bias"]:
        grads["bias"] = flat_g.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# fused GRU over a whole (B, T, F) sequence
# ----------------------------------------------------------------------
def gru_seq_forward(
    x: np.ndarray,
    h0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    bias_n: np.ndarray,
    requires: bool,
) -> Tuple[np.ndarray, Dict]:
    batch, time, features = x.shape
    hidden = weight_hh.shape[0]
    dtype = np.result_type(x.dtype, weight_ih.dtype, h0.dtype, bias.dtype)
    gx = arena.empty((batch, time, 2 * hidden), dtype=dtype)
    np.matmul(x, weight_ih, out=gx)  # (B, T, 2H)
    nx = arena.empty((batch, time, hidden), dtype=dtype)
    np.matmul(x, weight_in, out=nx)  # (B, T, H)
    outputs = np.empty((batch, time, hidden), dtype=dtype)  # escapes as Tensor data
    if requires:
        r_all = arena.empty((batch, time, hidden), dtype=dtype)
        z_all = arena.empty((batch, time, hidden), dtype=dtype)
        n_all = arena.empty((batch, time, hidden), dtype=dtype)
        rh_all = arena.empty((batch, time, hidden), dtype=dtype)
        h_prev_all = arena.empty((batch, time, hidden), dtype=dtype)
    else:
        r_all = z_all = n_all = rh_all = h_prev_all = None
    h = h0
    for t in range(time):
        gates = gx[:, t] + h @ weight_hh + bias
        r = sigmoid(gates[:, :hidden])
        z = sigmoid(gates[:, hidden:])
        rh = r * h
        n = np.tanh(nx[:, t] + rh @ weight_hn + bias_n)
        if requires:
            r_all[:, t], z_all[:, t], n_all[:, t] = r, z, n
            rh_all[:, t] = rh
            h_prev_all[:, t] = h
        h = (1.0 - z) * n + z * h
        outputs[:, t] = h
    saved = {
        "r_all": r_all,
        "z_all": z_all,
        "n_all": n_all,
        "rh_all": rh_all,
        "h_prev_all": h_prev_all,
        "dtype": dtype,
        "dims": (batch, time, hidden),
    }
    return outputs, saved


def gru_seq_backward(
    g_out: np.ndarray,
    saved: Dict,
    x: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    batch, time, hidden = saved["dims"]
    dtype = saved["dtype"]
    r_all, z_all, n_all = saved["r_all"], saved["z_all"], saved["n_all"]
    rh_all, h_prev_all = saved["rh_all"], saved["h_prev_all"]
    dh_carry = np.zeros((batch, hidden), dtype=dtype)
    d_gates = arena.empty((batch, time, 2 * hidden), dtype=dtype)
    dn_pre = arena.empty((batch, time, hidden), dtype=dtype)
    w_hh_t = weight_hh.T
    w_hn_t = weight_hn.T
    for t in range(time - 1, -1, -1):
        dh = g_out[:, t] + dh_carry
        r, z, n = r_all[:, t], z_all[:, t], n_all[:, t]
        h_prev = h_prev_all[:, t]
        dz = dh * (h_prev - n)
        dnp = (dh * (1.0 - z)) * (1.0 - n * n)
        dn_pre[:, t] = dnp
        drh = dnp @ w_hn_t
        d_gates[:, t, :hidden] = (drh * h_prev) * r * (1.0 - r)
        d_gates[:, t, hidden:] = dz * z * (1.0 - z)
        dh_carry = dh * z + drh * r + d_gates[:, t] @ w_hh_t
    grads: Dict[str, np.ndarray] = {}
    if needs["h0"]:
        grads["h0"] = dh_carry
    if needs["x"]:
        grads["x"] = d_gates @ weight_ih.T + dn_pre @ weight_in.T
    flat_g = d_gates.reshape(batch * time, 2 * hidden)
    flat_n = dn_pre.reshape(batch * time, hidden)
    flat_x = x.reshape(batch * time, -1)
    if needs["weight_ih"]:
        grads["weight_ih"] = flat_x.T @ flat_g
    if needs["weight_hh"]:
        grads["weight_hh"] = h_prev_all.reshape(batch * time, hidden).T @ flat_g
    if needs["bias"]:
        grads["bias"] = flat_g.sum(axis=0)
    if needs["weight_in"]:
        grads["weight_in"] = flat_x.T @ flat_n
    if needs["weight_hn"]:
        grads["weight_hn"] = rh_all.reshape(batch * time, hidden).T @ flat_n
    if needs["bias_n"]:
        grads["bias_n"] = flat_n.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# fused autoregressive LSTM decoder rollout
# ----------------------------------------------------------------------
def lstm_decoder_forward(
    y0: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    weight_out: np.ndarray,
    bias_out: np.ndarray,
    horizon: int,
    out_chunks: int,
    requires: bool,
) -> Tuple[np.ndarray, Dict]:
    batch = h0.shape[0]
    hidden = weight_hh.shape[0]
    out_features = weight_out.shape[1]
    chunk_rows = batch // out_chunks
    dtype = np.result_type(y0.dtype, h0.dtype, bias.dtype)

    def _project(h_rows: np.ndarray, out: np.ndarray) -> np.ndarray:
        if out_chunks == 1:
            np.matmul(h_rows, weight_out, out=out)
            np.add(out, bias_out, out=out)
            return out
        # BLAS dispatches narrow matmuls to a GEMV path whose rounding
        # depends on the row count; chunked projection keeps each group
        # at the oracle's row count so the fold stays bit-identical
        for j in range(out_chunks):
            rows = slice(j * chunk_rows, (j + 1) * chunk_rows)
            out[rows] = h_rows[rows] @ weight_out + bias_out
        return out

    outputs = np.empty((batch, horizon, out_features), dtype=dtype)  # escapes
    # Time-major scratch + in-place elementwise ops, mirroring
    # lstm_seq_forward: same FP operation order as the op-by-op cell, so
    # forward values stay bit-identical while the step loop allocates
    # nothing.  Input and hidden histories are rebuilt in the backward
    # from ``y0``/``outputs`` and ``h0``/``h_tm``.
    gates = arena.empty((batch, 4 * hidden), dtype=dtype)
    hh = arena.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows = arena.empty((batch, 4 * hidden), dtype=dtype)
    bias_rows[:] = bias
    ig = arena.empty((batch, hidden), dtype=dtype)
    c_pair = arena.empty((2, batch, hidden), dtype=dtype)
    y_step = arena.empty((batch, out_features), dtype=dtype)
    if requires:
        # gate-major (step, [i,f,g,o,tanh_c], B, H): contiguous views,
        # see lstm_seq_forward
        act = arena.empty((horizon, 5, batch, hidden), dtype=dtype)
        c_hist = arena.empty((horizon, batch, hidden), dtype=dtype)  # c entering step t
        h_tm = arena.empty((horizon, batch, hidden), dtype=dtype)  # h leaving step t
    else:
        act = c_hist = None
        step_act = arena.empty((5, batch, hidden), dtype=dtype)
        h_tm = arena.empty((2, batch, hidden), dtype=dtype)
    h = h0
    c = c0
    y = y0
    for t in range(horizon):
        np.matmul(y, weight_ih, out=gates)
        np.matmul(h, weight_hh, out=hh)
        np.add(gates, hh, out=gates)
        np.add(gates, bias_rows, out=gates)
        i, f, g_in, o, tanh_c = act[t] if requires else step_act
        sigmoid_into(gates[:, 0 * hidden : 1 * hidden], i)
        sigmoid_into(gates[:, 1 * hidden : 2 * hidden], f)
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=g_in)
        sigmoid_into(gates[:, 3 * hidden : 4 * hidden], o)
        if requires:
            c_hist[t] = c
        c_new = c_pair[t & 1]
        np.multiply(f, c, out=c_new)
        np.multiply(i, g_in, out=ig)
        np.add(c_new, ig, out=c_new)  # f*c + i*g, same order as the cell
        np.tanh(c_new, out=tanh_c)
        h = h_tm[t] if requires else h_tm[t & 1]
        np.multiply(o, tanh_c, out=h)
        c = c_new
        y = _project(h, y_step)
        outputs[:, t] = y
    saved = {
        "act": act,
        "c_hist": c_hist,
        "h_tm": h_tm,
        "outputs": outputs,
        "dtype": dtype,
        "dims": (batch, horizon, hidden, out_features),
    }
    return outputs, saved


def lstm_decoder_backward(
    g_out: np.ndarray,
    saved: Dict,
    y0: np.ndarray,
    h0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    weight_out: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    batch, horizon, hidden, out_features = saved["dims"]
    dtype = saved["dtype"]
    act, c_hist, h_tm = saved["act"], saved["c_hist"], saved["h_tm"]
    outputs = saved["outputs"]
    dy_feedback = arena.zeros((batch, out_features), dtype=dtype)
    dh_carry = arena.zeros((batch, hidden), dtype=dtype)
    dc = arena.zeros((batch, hidden), dtype=dtype)
    dg_tm = arena.empty((horizon, batch, 4 * hidden), dtype=dtype)
    dy_tm = arena.empty((horizon, batch, out_features), dtype=dtype)
    dh = arena.empty((batch, hidden), dtype=dtype)
    t1 = arena.empty((batch, hidden), dtype=dtype)
    t2 = arena.empty((batch, hidden), dtype=dtype)
    w_out_t = weight_out.T
    w_ih_t = weight_ih.T
    w_hh_t = weight_hh.T
    for t in range(horizon - 1, -1, -1):
        i, f, g_in, o, tanh_c = act[t]
        dg_step = dg_tm[t]
        dy = dy_tm[t]
        np.add(g_out[:, t], dy_feedback, out=dy)  # loss + next input grad
        np.matmul(dy, w_out_t, out=dh)
        np.add(dh, dh_carry, out=dh)
        # dc += dh * (o * (1 - tanh_c^2)), same association as the cell
        np.multiply(tanh_c, tanh_c, out=t1)
        np.subtract(1.0, t1, out=t1)
        np.multiply(o, t1, out=t1)
        np.multiply(dh, t1, out=t1)
        np.add(dc, t1, out=dc)
        np.multiply(dc, g_in, out=t1)
        np.multiply(t1, i, out=t1)
        np.subtract(1.0, i, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 0 * hidden : 1 * hidden])
        np.multiply(dc, c_hist[t], out=t1)
        np.multiply(t1, f, out=t1)
        np.subtract(1.0, f, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 1 * hidden : 2 * hidden])
        np.multiply(dc, i, out=t1)
        np.multiply(g_in, g_in, out=t2)
        np.subtract(1.0, t2, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 2 * hidden : 3 * hidden])
        np.multiply(dh, tanh_c, out=t1)
        np.multiply(t1, o, out=t1)
        np.subtract(1.0, o, out=t2)
        np.multiply(t1, t2, out=dg_step[:, 3 * hidden : 4 * hidden])
        np.matmul(dg_step, w_ih_t, out=dy_feedback)
        np.matmul(dg_step, w_hh_t, out=dh_carry)
        np.multiply(dc, f, out=dc)
    grads: Dict[str, np.ndarray] = {}
    if needs["y0"]:
        grads["y0"] = dy_feedback.copy()
    if needs["h0"]:
        grads["h0"] = dh_carry.copy()
    if needs["c0"]:
        grads["c0"] = dc.copy()
    # the collapsed grad matmuls stay time-major (h_tm already is):
    # weight grads sum the same (t, b) rows either way, reassociated
    # at ulp level within the documented gradient tolerance, and the
    # batch-major restore would cost a multi-MB transpose copy
    flat_g = dg_tm.reshape(horizon * batch, 4 * hidden)
    flat_dy = dy_tm.reshape(horizon * batch, out_features)
    if needs["weight_ih"]:
        # input entering step t: y0 at t=0, the step-(t-1) prediction after
        inp_tm = arena.empty((horizon, batch, out_features), dtype=dtype)
        inp_tm[0] = y0
        inp_tm[1:] = outputs.transpose(1, 0, 2)[:-1]
        grads["weight_ih"] = inp_tm.reshape(horizon * batch, out_features).T @ flat_g
    if needs["weight_hh"]:
        h_prev = arena.empty((horizon, batch, hidden), dtype=dtype)
        h_prev[0] = h0
        h_prev[1:] = h_tm[:-1]
        grads["weight_hh"] = h_prev.reshape(horizon * batch, hidden).T @ flat_g
    if needs["bias"]:
        grads["bias"] = flat_g.sum(axis=0)
    if needs["weight_out"]:
        grads["weight_out"] = h_tm.reshape(horizon * batch, hidden).T @ flat_dy
    if needs["bias_out"]:
        grads["bias_out"] = flat_dy.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# simulator radio step
# ----------------------------------------------------------------------
_pathloss_array = None


def radio_step(
    position: np.ndarray,
    indoor: bool,
    force_los: Optional[bool],
    shadows: np.ndarray,
    fadings: np.ndarray,
    cand_pos: np.ndarray,
    cand_freq: np.ndarray,
    cand_per_re_tx: np.ndarray,
    cand_noise_mw: np.ndarray,
    cand_nrb: np.ndarray,
    cand_nrb_db: np.ndarray,
    cand_indoor_pen: np.ndarray,
    interf_mask: np.ndarray,
    los_blend_m: float,
    co_channel_activity: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One vectorized radio update over all candidate cells.

    Extracted verbatim from the simulator's ``_radio_update_vec``:
    pathloss, RSRP/RSRQ/SINR, and the O(C^2) co-channel interference as
    a handful of numpy expressions over the cached candidate arrays.
    Returns ``(rsrp, sinr, rsrq)`` per candidate, in dB(m).
    """
    global _pathloss_array
    if _pathloss_array is None:  # lazy: keeps repro.backends import-cycle-free
        from ..ran.propagation import urban_macro_pathloss_db_array

        _pathloss_array = urban_macro_pathloss_db_array
    delta = cand_pos - position
    distance = np.hypot(delta[:, 0], delta[:, 1])
    pl_los = _pathloss_array(distance, cand_freq, los=True)
    pl_nlos = _pathloss_array(distance, cand_freq, los=False)
    if indoor:
        los_weight = np.zeros_like(distance)
    elif force_los is True:
        los_weight = np.ones_like(distance)
    elif force_los is False:
        los_weight = np.zeros_like(distance)
    else:
        los_weight = np.exp(-distance / los_blend_m)
    pl = los_weight * pl_los + (1.0 - los_weight) * pl_nlos
    # interfering links keep the distance-based LOS probability
    # (force_los applies to serving links only)
    if indoor:
        interf_weight = np.zeros_like(distance)
    else:
        interf_weight = np.exp(-distance / los_blend_m)
    pl_interf = interf_weight * pl_los + (1.0 - interf_weight) * pl_nlos
    if indoor:
        pl = pl + cand_indoor_pen
        pl_interf = pl_interf + cand_indoor_pen

    rsrp = cand_per_re_tx - pl - shadows + fadings
    received_mw = co_channel_activity * 10.0 ** ((cand_per_re_tx - pl_interf) / 10.0)
    interf_mw = interf_mask @ received_mw
    signal_mw = 10.0 ** (rsrp / 10.0)
    sinr = 10.0 * np.log10(signal_mw / (cand_noise_mw + interf_mw))
    rssi_mw = (signal_mw + cand_noise_mw + interf_mw) * 12.0 * cand_nrb
    rsrq = cand_nrb_db + rsrp - 10.0 * np.log10(rssi_mw)
    return rsrp, sinr, rsrq


def radio_step_multi(
    positions: np.ndarray,
    indoor: np.ndarray,
    force_los: Optional[bool],
    shadows: np.ndarray,
    fadings: np.ndarray,
    cand_pos: np.ndarray,
    cand_freq: np.ndarray,
    cand_per_re_tx: np.ndarray,
    cand_noise_mw: np.ndarray,
    cand_nrb: np.ndarray,
    cand_nrb_db: np.ndarray,
    cand_indoor_pen: np.ndarray,
    interf_mask: np.ndarray,
    los_blend_m: float,
    co_channel_activity: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`radio_step` batched over a cohort of UEs (lane axis first).

    Inputs are carrier-major structure-of-arrays tensors padded to the
    cohort's widest candidate set: ``positions`` is ``(U, 2)``,
    ``indoor`` is ``(U,)`` bool, the per-candidate arrays are
    ``(U, C)`` (``cand_pos`` is ``(U, C, 2)``), and ``interf_mask`` is
    ``(U, C, C)``.  ``force_los`` is shared across the cohort (the
    multi-UE driver falls back to per-lane dispatch when lanes
    disagree).  Padding lanes must be numerically inert — the caller
    pads with unit distances / zero interference rows and slices each
    lane's first ``C_i`` outputs; this kernel never sees a mask.
    Returns ``(rsrp, sinr, rsrq)``, each ``(U, C)``.
    """
    global _pathloss_array
    if _pathloss_array is None:  # lazy: keeps repro.backends import-cycle-free
        from ..ran.propagation import urban_macro_pathloss_db_array

        _pathloss_array = urban_macro_pathloss_db_array
    delta = cand_pos - positions[:, None, :]
    distance = np.hypot(delta[..., 0], delta[..., 1])
    pl_los = _pathloss_array(distance, cand_freq, los=True)
    pl_nlos = _pathloss_array(distance, cand_freq, los=False)
    indoor_col = np.asarray(indoor, dtype=bool)[:, None]
    blend = np.exp(-distance / los_blend_m)
    if force_los is True:
        serving_weight = np.ones_like(distance)
    elif force_los is False:
        serving_weight = np.zeros_like(distance)
    else:
        serving_weight = blend
    los_weight = np.where(indoor_col, 0.0, serving_weight)
    pl = los_weight * pl_los + (1.0 - los_weight) * pl_nlos
    # interfering links keep the distance-based LOS probability
    # (force_los applies to serving links only)
    interf_weight = np.where(indoor_col, 0.0, blend)
    pl_interf = interf_weight * pl_los + (1.0 - interf_weight) * pl_nlos
    pen = np.where(indoor_col, cand_indoor_pen, 0.0)
    pl = pl + pen
    pl_interf = pl_interf + pen

    rsrp = cand_per_re_tx - pl - shadows + fadings
    received_mw = co_channel_activity * 10.0 ** ((cand_per_re_tx - pl_interf) / 10.0)
    interf_mw = (interf_mask @ received_mw[..., None])[..., 0]
    signal_mw = 10.0 ** (rsrp / 10.0)
    sinr = 10.0 * np.log10(signal_mw / (cand_noise_mw + interf_mw))
    rssi_mw = (signal_mw + cand_noise_mw + interf_mw) * 12.0 * cand_nrb
    rsrq = cand_nrb_db + rsrp - 10.0 * np.log10(rssi_mw)
    return rsrp, sinr, rsrq
