"""Optional numba-JIT backend: compiled gate loops and radio step.

Compiles the three hot recurrent loops — the LSTM sequence kernel, the
GRU sequence kernel, and the simulator's per-step radio update — with
``numba.njit`` (``fastmath`` off: IEEE semantics, no reassociation).
Everything else (the wide GEMMs, the decoder rollout, the cells, the
affine projection) inherits the numpy reference implementations through
the per-primitive fallback in :class:`repro.backends.Backend`.

Compiled transcendentals round differently from numpy's SIMD ufuncs in
the last ulp, so this backend is *not* bit-identical to the oracles;
its contract is the tolerance-based equivalence suite
(``tests/test_backends.py``).  For the same reason the ``backend`` flag
is part of :func:`repro.runtime.synthesis_fingerprint` — traces
synthesized under numba get their own cache entries.

When numba is not installed this module still imports (``AVAILABLE``
is ``False``) and the registry resolves the ``numba`` name back to
numpy, publishing the ``backend.fallback`` obs counter.  Inputs that
are not float64 (the float32 inference path) are delegated to numpy —
the JIT kernels are specialized for float64.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from . import arena, numpy_backend

name = "numba"

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit

    AVAILABLE = True
except ImportError:  # numba absent: registry falls back to numpy
    AVAILABLE = False

    def njit(*args, **kwargs):  # keeps the decorated defs importable
        def wrap(fn):
            return fn

        if args and callable(args[0]):
            return args[0]
        return wrap


_F64 = np.float64


def _all_f64(*arrays: np.ndarray) -> bool:
    return all(a.dtype == _F64 for a in arrays)


# ----------------------------------------------------------------------
# LSTM sequence kernel
# ----------------------------------------------------------------------
@njit(cache=False)
def _lstm_seq_fwd_jit(gx, h0, c0, w_hh, bias, out_tm, act, c_hist):
    time, batch, four_h = gx.shape
    hidden = four_h // 4
    h = h0.copy()
    c = c0.copy()
    for t in range(time):
        gates = np.dot(h, w_hh)
        for b in range(batch):
            for k in range(four_h):
                gates[b, k] += gx[t, b, k] + bias[k]
        for b in range(batch):
            for j in range(hidden):
                zi = gates[b, j]
                zf = gates[b, hidden + j]
                zg = gates[b, 2 * hidden + j]
                zo = gates[b, 3 * hidden + j]
                i_v = 1.0 / (1.0 + math.exp(-min(max(zi, -60.0), 60.0)))
                f_v = 1.0 / (1.0 + math.exp(-min(max(zf, -60.0), 60.0)))
                g_v = math.tanh(zg)
                o_v = 1.0 / (1.0 + math.exp(-min(max(zo, -60.0), 60.0)))
                c_hist[t, b, j] = c[b, j]
                c_new = f_v * c[b, j] + i_v * g_v
                tc = math.tanh(c_new)
                act[t, 0, b, j] = i_v
                act[t, 1, b, j] = f_v
                act[t, 2, b, j] = g_v
                act[t, 3, b, j] = o_v
                act[t, 4, b, j] = tc
                c[b, j] = c_new
                h[b, j] = o_v * tc
                out_tm[t, b, j] = h[b, j]
    return c


@njit(cache=False)
def _lstm_seq_bwd_jit(g_out, act, c_hist, w_hh_t, dc, dg_tm):
    time, batch, hidden = g_out.shape
    dh_carry = np.zeros((batch, hidden), dtype=np.float64)
    for t in range(time - 1, -1, -1):
        for b in range(batch):
            for j in range(hidden):
                i_v = act[t, 0, b, j]
                f_v = act[t, 1, b, j]
                g_v = act[t, 2, b, j]
                o_v = act[t, 3, b, j]
                tc = act[t, 4, b, j]
                dh = g_out[t, b, j] + dh_carry[b, j]
                dc_v = dc[b, j] + dh * (o_v * (1.0 - tc * tc))
                dg_tm[t, b, j] = (dc_v * g_v) * i_v * (1.0 - i_v)
                dg_tm[t, b, hidden + j] = (dc_v * c_hist[t, b, j]) * f_v * (1.0 - f_v)
                dg_tm[t, b, 2 * hidden + j] = (dc_v * i_v) * (1.0 - g_v * g_v)
                dg_tm[t, b, 3 * hidden + j] = (dh * tc) * o_v * (1.0 - o_v)
                dc[b, j] = dc_v * f_v
        dh_carry = np.dot(dg_tm[t], w_hh_t)
    return dh_carry


def lstm_seq_forward(
    x: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    requires: bool,
) -> Tuple[np.ndarray, np.ndarray, Dict]:
    if not _all_f64(x, h0, c0, weight_ih, weight_hh, bias):
        return numpy_backend.lstm_seq_forward(x, h0, c0, weight_ih, weight_hh, bias, requires)
    batch, time, features = x.shape
    hidden = weight_hh.shape[0]
    x_tm = arena.empty((time, batch, features))
    np.copyto(x_tm, x.transpose(1, 0, 2))
    gx = arena.empty((time * batch, 4 * hidden))
    np.matmul(x_tm.reshape(time * batch, -1), weight_ih, out=gx)
    gx = gx.reshape(time, batch, 4 * hidden)
    out_tm = arena.empty((time, batch, hidden))
    act = arena.empty((time, 5, batch, hidden))
    c_hist = arena.empty((time, batch, hidden))
    c = _lstm_seq_fwd_jit(
        gx,
        np.ascontiguousarray(h0),
        np.ascontiguousarray(c0),
        np.ascontiguousarray(weight_hh),
        np.ascontiguousarray(bias),
        out_tm,
        act,
        c_hist,
    )
    outputs = np.ascontiguousarray(out_tm.transpose(1, 0, 2))  # escapes
    saved = {
        "x_tm": x_tm,
        "out_tm": out_tm,
        "act": act,
        "c_hist": c_hist,
        "dtype": np.dtype(_F64),
        "dims": (batch, time, hidden),
        "numba": True,
    }
    return outputs, np.ascontiguousarray(c), saved


def lstm_seq_backward(
    g_out_bm: np.ndarray,
    dc_T: Optional[np.ndarray],
    saved: Dict,
    x: np.ndarray,
    h0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    if not saved.get("numba"):  # forward delegated to numpy (dtype path)
        return numpy_backend.lstm_seq_backward(
            g_out_bm, dc_T, saved, x, h0, weight_ih, weight_hh, needs
        )
    batch, time, hidden = saved["dims"]
    act, c_hist = saved["act"], saved["c_hist"]
    x_tm, out_tm = saved["x_tm"], saved["out_tm"]
    g_out = arena.empty((time, batch, hidden))
    np.copyto(g_out, np.asarray(g_out_bm, dtype=_F64).transpose(1, 0, 2))
    dc = np.zeros((batch, hidden)) if dc_T is None else np.ascontiguousarray(dc_T)
    dg_tm = arena.empty((time, batch, 4 * hidden))
    dh_carry = _lstm_seq_bwd_jit(
        g_out, act, c_hist, np.ascontiguousarray(weight_hh.T), dc, dg_tm
    )
    grads: Dict[str, np.ndarray] = {}
    if needs["h0"]:
        grads["h0"] = dh_carry.copy()
    if needs["c0"]:
        grads["c0"] = dc
    flat_g = dg_tm.reshape(time * batch, 4 * hidden)
    if needs["x"]:
        dx_flat = arena.empty((time * batch, x.shape[-1]))
        np.matmul(flat_g, weight_ih.T, out=dx_flat)
        grads["x"] = dx_flat.reshape(time, batch, -1).transpose(1, 0, 2)
    if needs["weight_ih"]:
        grads["weight_ih"] = x_tm.reshape(time * batch, -1).T @ flat_g
    if needs["weight_hh"]:
        h_prev = arena.empty((time, batch, hidden))
        h_prev[0] = h0
        h_prev[1:] = out_tm[:-1]
        grads["weight_hh"] = h_prev.reshape(time * batch, hidden).T @ flat_g
    if needs["bias"]:
        grads["bias"] = flat_g.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# GRU sequence kernel
# ----------------------------------------------------------------------
@njit(cache=False)
def _gru_seq_fwd_jit(gx, nx, h0, w_hh, bias, w_hn, bias_n, out_tm, r_all, z_all, n_all, rh_all, h_prev_all):
    time, batch, two_h = gx.shape
    hidden = two_h // 2
    h = h0.copy()
    for t in range(time):
        gates = np.dot(h, w_hh)
        for b in range(batch):
            for k in range(two_h):
                gates[b, k] += gx[t, b, k] + bias[k]
        rh = np.empty((batch, hidden), dtype=np.float64)
        for b in range(batch):
            for j in range(hidden):
                r_v = 1.0 / (1.0 + math.exp(-min(max(gates[b, j], -60.0), 60.0)))
                r_all[t, b, j] = r_v
                rh[b, j] = r_v * h[b, j]
                rh_all[t, b, j] = rh[b, j]
        npre = np.dot(rh, w_hn)
        for b in range(batch):
            for j in range(hidden):
                z_v = 1.0 / (1.0 + math.exp(-min(max(gates[b, hidden + j], -60.0), 60.0)))
                n_v = math.tanh(nx[t, b, j] + npre[b, j] + bias_n[j])
                z_all[t, b, j] = z_v
                n_all[t, b, j] = n_v
                h_prev_all[t, b, j] = h[b, j]
                h[b, j] = (1.0 - z_v) * n_v + z_v * h[b, j]
                out_tm[t, b, j] = h[b, j]


@njit(cache=False)
def _gru_seq_bwd_jit(g_out, r_all, z_all, n_all, h_prev_all, w_hh_t, w_hn_t, dg_tm, dn_tm):
    time, batch, hidden = g_out.shape
    dh_carry = np.zeros((batch, hidden), dtype=np.float64)
    for t in range(time - 1, -1, -1):
        dh = g_out[t] + dh_carry
        for b in range(batch):
            for j in range(hidden):
                r_v = r_all[t, b, j]
                z_v = z_all[t, b, j]
                n_v = n_all[t, b, j]
                h_prev = h_prev_all[t, b, j]
                dz = dh[b, j] * (h_prev - n_v)
                dnp = (dh[b, j] * (1.0 - z_v)) * (1.0 - n_v * n_v)
                dn_tm[t, b, j] = dnp
                dg_tm[t, b, hidden + j] = dz * z_v * (1.0 - z_v)
        drh = np.dot(dn_tm[t], w_hn_t)
        for b in range(batch):
            for j in range(hidden):
                r_v = r_all[t, b, j]
                dg_tm[t, b, j] = (drh[b, j] * h_prev_all[t, b, j]) * r_v * (1.0 - r_v)
        carry = np.dot(dg_tm[t], w_hh_t)
        for b in range(batch):
            for j in range(hidden):
                dh_carry[b, j] = dh[b, j] * z_all[t, b, j] + drh[b, j] * r_all[t, b, j] + carry[b, j]
    return dh_carry


def gru_seq_forward(
    x: np.ndarray,
    h0: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    bias: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    bias_n: np.ndarray,
    requires: bool,
) -> Tuple[np.ndarray, Dict]:
    if not _all_f64(x, h0, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n):
        return numpy_backend.gru_seq_forward(
            x, h0, weight_ih, weight_hh, bias, weight_in, weight_hn, bias_n, requires
        )
    batch, time, features = x.shape
    hidden = weight_hh.shape[0]
    x_tm = arena.empty((time, batch, features))
    np.copyto(x_tm, x.transpose(1, 0, 2))
    flat_x = x_tm.reshape(time * batch, features)
    gx = arena.empty((time * batch, 2 * hidden))
    np.matmul(flat_x, weight_ih, out=gx)
    nx = arena.empty((time * batch, hidden))
    np.matmul(flat_x, weight_in, out=nx)
    out_tm = arena.empty((time, batch, hidden))
    r_all = arena.empty((time, batch, hidden))
    z_all = arena.empty((time, batch, hidden))
    n_all = arena.empty((time, batch, hidden))
    rh_all = arena.empty((time, batch, hidden))
    h_prev_all = arena.empty((time, batch, hidden))
    _gru_seq_fwd_jit(
        gx.reshape(time, batch, 2 * hidden),
        nx.reshape(time, batch, hidden),
        np.ascontiguousarray(h0),
        np.ascontiguousarray(weight_hh),
        np.ascontiguousarray(bias),
        np.ascontiguousarray(weight_hn),
        np.ascontiguousarray(bias_n),
        out_tm,
        r_all,
        z_all,
        n_all,
        rh_all,
        h_prev_all,
    )
    outputs = np.ascontiguousarray(out_tm.transpose(1, 0, 2))  # escapes
    saved = {
        "x_tm": x_tm,
        "r_all": r_all,
        "z_all": z_all,
        "n_all": n_all,
        "rh_all": rh_all,
        "h_prev_all": h_prev_all,
        "dims": (batch, time, hidden),
        "numba": True,
    }
    return outputs, saved


def gru_seq_backward(
    g_out: np.ndarray,
    saved: Dict,
    x: np.ndarray,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    weight_in: np.ndarray,
    weight_hn: np.ndarray,
    needs: Dict[str, bool],
) -> Dict[str, np.ndarray]:
    if not saved.get("numba"):
        return numpy_backend.gru_seq_backward(
            g_out, saved, x, weight_ih, weight_hh, weight_in, weight_hn, needs
        )
    batch, time, hidden = saved["dims"]
    r_all, z_all, n_all = saved["r_all"], saved["z_all"], saved["n_all"]
    rh_all, h_prev_all = saved["rh_all"], saved["h_prev_all"]
    x_tm = saved["x_tm"]
    g_tm = arena.empty((time, batch, hidden))
    np.copyto(g_tm, np.asarray(g_out, dtype=_F64).transpose(1, 0, 2))
    dg_tm = arena.empty((time, batch, 2 * hidden))
    dn_tm = arena.empty((time, batch, hidden))
    dh_carry = _gru_seq_bwd_jit(
        g_tm,
        r_all,
        z_all,
        n_all,
        h_prev_all,
        np.ascontiguousarray(weight_hh.T),
        np.ascontiguousarray(weight_hn.T),
        dg_tm,
        dn_tm,
    )
    grads: Dict[str, np.ndarray] = {}
    if needs["h0"]:
        grads["h0"] = dh_carry
    flat_g = dg_tm.reshape(time * batch, 2 * hidden)
    flat_n = dn_tm.reshape(time * batch, hidden)
    flat_x = x_tm.reshape(time * batch, -1)
    if needs["x"]:
        dx_flat = arena.empty((time * batch, x.shape[-1]))
        np.matmul(flat_g, weight_ih.T, out=dx_flat)
        dx2 = arena.empty((time * batch, x.shape[-1]))
        np.matmul(flat_n, weight_in.T, out=dx2)
        np.add(dx_flat, dx2, out=dx_flat)
        grads["x"] = dx_flat.reshape(time, batch, -1).transpose(1, 0, 2)
    if needs["weight_ih"]:
        grads["weight_ih"] = flat_x.T @ flat_g
    if needs["weight_hh"]:
        grads["weight_hh"] = h_prev_all.reshape(time * batch, hidden).T @ flat_g
    if needs["bias"]:
        grads["bias"] = flat_g.sum(axis=0)
    if needs["weight_in"]:
        grads["weight_in"] = flat_x.T @ flat_n
    if needs["weight_hn"]:
        grads["weight_hn"] = rh_all.reshape(time * batch, hidden).T @ flat_n
    if needs["bias_n"]:
        grads["bias_n"] = flat_n.sum(axis=0)
    return grads


# ----------------------------------------------------------------------
# simulator radio step
# ----------------------------------------------------------------------
@njit(cache=False)
def _radio_step_jit(
    pos_x,
    pos_y,
    indoor,
    los_mode,
    cand_pos,
    cand_freq,
    per_re_tx,
    noise_mw,
    nrb,
    nrb_db,
    indoor_pen,
    interf_mask,
    shadows,
    fadings,
    los_blend_m,
    co_activity,
):
    n = cand_pos.shape[0]
    rsrp = np.empty(n, dtype=np.float64)
    sinr = np.empty(n, dtype=np.float64)
    rsrq = np.empty(n, dtype=np.float64)
    received_mw = np.empty(n, dtype=np.float64)
    for i in range(n):
        dx = cand_pos[i, 0] - pos_x
        dy = cand_pos[i, 1] - pos_y
        d = math.sqrt(dx * dx + dy * dy)
        d_eff = d if d > 10.0 else 10.0
        lg_d = math.log10(d_eff)
        lg_f = math.log10(cand_freq[i] / 1e3)
        # TR 38.901 UMa, same simplified expressions as repro.ran.propagation
        pl_los = 28.0 + 22.0 * lg_d + 20.0 * lg_f
        pl_nlos = 13.54 + 39.08 * lg_d + 20.0 * lg_f
        if indoor:
            w = 0.0
        elif los_mode == 1:
            w = 1.0
        elif los_mode == 0:
            w = 0.0
        else:
            w = math.exp(-d / los_blend_m)
        pl = w * pl_los + (1.0 - w) * pl_nlos
        w_i = 0.0 if indoor else math.exp(-d / los_blend_m)
        pl_i = w_i * pl_los + (1.0 - w_i) * pl_nlos
        if indoor:
            pl += indoor_pen[i]
            pl_i += indoor_pen[i]
        rsrp[i] = per_re_tx[i] - pl - shadows[i] + fadings[i]
        received_mw[i] = co_activity * 10.0 ** ((per_re_tx[i] - pl_i) / 10.0)
    for i in range(n):
        acc = 0.0
        for j in range(n):
            acc += interf_mask[i, j] * received_mw[j]
        signal_mw = 10.0 ** (rsrp[i] / 10.0)
        sinr[i] = 10.0 * math.log10(signal_mw / (noise_mw[i] + acc))
        rssi_mw = (signal_mw + noise_mw[i] + acc) * 12.0 * nrb[i]
        rsrq[i] = nrb_db[i] + rsrp[i] - 10.0 * math.log10(rssi_mw)
    return rsrp, sinr, rsrq


def radio_step(
    position: np.ndarray,
    indoor: bool,
    force_los: Optional[bool],
    shadows: np.ndarray,
    fadings: np.ndarray,
    cand_pos: np.ndarray,
    cand_freq: np.ndarray,
    cand_per_re_tx: np.ndarray,
    cand_noise_mw: np.ndarray,
    cand_nrb: np.ndarray,
    cand_nrb_db: np.ndarray,
    cand_indoor_pen: np.ndarray,
    interf_mask: np.ndarray,
    los_blend_m: float,
    co_channel_activity: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    los_mode = -1 if force_los is None else (1 if force_los else 0)
    position = np.asarray(position, dtype=_F64)
    return _radio_step_jit(
        float(position[0]),
        float(position[1]),
        bool(indoor),
        los_mode,
        np.ascontiguousarray(cand_pos),
        np.ascontiguousarray(cand_freq),
        np.ascontiguousarray(cand_per_re_tx),
        np.ascontiguousarray(cand_noise_mw),
        np.ascontiguousarray(cand_nrb),
        np.ascontiguousarray(cand_nrb_db),
        np.ascontiguousarray(cand_indoor_pen),
        np.ascontiguousarray(interf_mask),
        np.ascontiguousarray(shadows),
        np.ascontiguousarray(fadings),
        float(los_blend_m),
        float(co_channel_activity),
    )
