"""Workspace arena: step-scoped reuse of kernel scratch buffers.

A training step allocates the same gate/activation/grad scratch arrays
every batch — for the fused LSTM kernel alone that is a dozen
multi-megabyte ``np.empty`` calls per step, all with identical shapes
step after step.  The arena keeps one pool of buffers per
``(shape, dtype)`` key and hands them out sequentially within a *step
window*; :func:`begin_step` rewinds every pool cursor so the next step
recycles the same memory.

Lifetime rules (see DESIGN.md §6e):

* A buffer is valid from the :func:`empty`/:func:`zeros` call until the
  next :func:`begin_step`.  Kernels may only pool *internal scratch*
  whose lifetime ends with the step — forward activations consumed by
  the same step's backward qualify; anything that escapes as
  ``Tensor.data`` (layer outputs, final states) must stay freshly
  allocated, because downstream code may hold those arrays across
  steps (``Trainer.predict`` collects them without copying).
* Outside a step window the arena is inactive and every call is a plain
  ``np.empty`` — library code can call into the kernels at any time
  without coordinating with a trainer.
* :class:`~repro.nn.training.Trainer` owns the step windows: it calls
  :func:`begin_step` before each batch and :func:`end_run` when a fit
  or predict pass finishes.

Memory reuse never changes floating-point math — the same expressions
write into recycled storage — so the numpy backend stays bit-identical
with the arena on or off.  The ``arena`` runtime flag
(:mod:`repro.runtime`) disables pooling globally for A/B timing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from .. import runtime

ShapeLike = Union[int, Tuple[int, ...]]


def _set_arena_mirror(enabled: object) -> None:
    global _ARENA_ENABLED
    _ARENA_ENABLED = bool(enabled)


#: hot-loop mirror of ``runtime.flag("arena")`` — whether step windows
#: activate pooling at all.  The canonical value lives in
#: :mod:`repro.runtime`.
_ARENA_ENABLED = runtime.register_mirror("arena", _set_arena_mirror)


def arena_enabled() -> bool:
    """Whether the ``arena`` runtime flag is on (pooling may activate)."""
    return bool(_ARENA_ENABLED)


class Workspace:
    """One pool of reusable scratch buffers, keyed by ``(shape, dtype)``.

    Within a step window, repeated requests for the same key return
    *distinct* buffers (a per-key cursor advances), so a kernel may ask
    for several same-shaped temporaries.  ``begin_step`` rewinds all
    cursors; buffers are never freed until :meth:`clear`.
    """

    __slots__ = ("_pools", "_cursors", "active", "steps", "hits", "misses")

    def __init__(self) -> None:
        self._pools: Dict[Tuple, List[np.ndarray]] = {}
        self._cursors: Dict[Tuple, int] = {}
        self.active = False
        self.steps = 0
        self.hits = 0
        self.misses = 0

    def begin_step(self) -> None:
        """Open a step window (no-op pooling if the flag is off)."""
        if not _ARENA_ENABLED:
            self.active = False
            return
        self.active = True
        self.steps += 1
        for key in self._cursors:
            self._cursors[key] = 0

    def end_run(self) -> None:
        """Close the current window; subsequent calls allocate fresh."""
        self.active = False

    def clear(self) -> None:
        """Drop every pooled buffer (and deactivate)."""
        self._pools.clear()
        self._cursors.clear()
        self.active = False
        self.hits = 0
        self.misses = 0
        self.steps = 0

    def empty(self, shape: ShapeLike, dtype=np.float64) -> np.ndarray:
        """An uninitialized buffer, pooled when a step window is open."""
        if not self.active:
            return np.empty(shape, dtype=dtype)
        if isinstance(shape, int):
            shape = (shape,)
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = []
            self._cursors[key] = 0
        cursor = self._cursors[key]
        self._cursors[key] = cursor + 1
        if cursor < len(pool):
            self.hits += 1
            return pool[cursor]
        self.misses += 1
        buf = np.empty(key[0], dtype=dtype)
        pool.append(buf)
        return buf

    def zeros(self, shape: ShapeLike, dtype=np.float64) -> np.ndarray:
        """A zero-filled buffer, pooled when a step window is open."""
        buf = self.empty(shape, dtype=dtype)
        buf.fill(0.0)
        return buf

    def stats(self) -> Dict[str, int]:
        """Pool counters (for tests and the perf bench)."""
        return {
            "pools": len(self._pools),
            "buffers": sum(len(p) for p in self._pools.values()),
            "bytes": sum(b.nbytes for p in self._pools.values() for b in p),
            "steps": self.steps,
            "hits": self.hits,
            "misses": self.misses,
        }


#: the process-wide workspace used by the compute backends.
_WORKSPACE = Workspace()


def workspace() -> Workspace:
    """The process-wide :class:`Workspace`."""
    return _WORKSPACE


def begin_step() -> None:
    """Open a step window on the process-wide workspace."""
    _WORKSPACE.begin_step()


def end_run() -> None:
    """Close the process-wide step window."""
    _WORKSPACE.end_run()


def clear() -> None:
    """Drop all pooled buffers from the process-wide workspace."""
    _WORKSPACE.clear()


def empty(shape: ShapeLike, dtype=np.float64) -> np.ndarray:
    """Step-scoped scratch buffer (module-level convenience)."""
    return _WORKSPACE.empty(shape, dtype)


def zeros(shape: ShapeLike, dtype=np.float64) -> np.ndarray:
    """Step-scoped zeroed scratch buffer (module-level convenience)."""
    return _WORKSPACE.zeros(shape, dtype)
