"""repro.runtime — single source of truth for kernel-path dispatch.

The repo has four boolean hot-path dispatch switches that grew up in
different modules:

* ``fused_kernels`` — fused LSTM/GRU/affine autograd kernels vs the
  op-by-op oracle (:mod:`repro.nn.modules`);
* ``batched_cc`` — Prism5G's carrier-folded forward vs the per-CC
  Python loop (:mod:`repro.core.prism5g`);
* ``vectorized_radio`` — the simulator's array-based candidate radio
  update vs the scalar per-cell loop (:mod:`repro.ran.simulator`);
* ``arena`` — workspace-arena scratch reuse inside training steps
  (:mod:`repro.backends.arena`): preallocated gate/activation/grad
  buffers are recycled across steps instead of allocated fresh.

Each switch used to be an independent module global, which meant a
cached trace set, a training run, and the manifest describing them
could silently disagree about which code path produced what.  This
module centralizes the state: the canonical flag values live here,
every subsystem registers a *mirror* (a plain module global it reads
in its hot loop, kept in sync by :func:`set_flag`), and the legacy
setters (``set_fused_kernels`` & co.) survive as deprecated shims that
delegate here.

On top of the booleans there is one *value* flag, ``backend``: the
name of the compute backend the fused primitives dispatch through
(see :mod:`repro.backends`).  It defaults to ``"numpy"`` — the
bit-identical reference backend — and can be preset with the
``REPRO_BACKEND`` environment variable or flipped at runtime exactly
like the boolean flags (``runtime.configure(backend="numba")``).
Unknown names degrade gracefully: the backend registry resolves them
back to numpy and publishes an obs counter rather than failing a run.
A second value flag, ``obs_sample_hz``, sets the continuous-telemetry
sample rate (``"0"`` = off, the default; ``REPRO_OBS_SAMPLE_HZ`` env
preset) consumed by :mod:`repro.obs.timeseries` — it lives here so the
rate is stamped into manifests alongside the dispatch flags.  A third,
``sanitize`` (``"0"``/``"1"``; ``REPRO_SANITIZE`` env preset /
``repro5g --sanitize``), arms the numeric sanitizer: every backend
primitive is wrapped with NaN/Inf guards and forward/backward integrity
checks (see :mod:`repro.sanitize`).  It is stored as a string flag —
not a boolean — because, like ``backend``, it selects *which* backend
object :mod:`repro.backends` resolves, and the canonical ``"0"``/``"1"``
spelling keeps manifests and hashes stable.

The same module owns the repo's one canonical content-hash helper,
:func:`canonical_hash` (sorted-key compact JSON → SHA-256), used by the
trace cache, the obs manifests, and the experiment pipeline — so one
hash identifies a run everywhere.  Because ``vectorized_radio`` and
``backend`` change synthesized trace values (at the last-ulp level),
the trace cache folds :func:`synthesis_fingerprint` into its keys; see
:func:`repro.data.cache.cache_key`.

Typical use::

    from repro import runtime

    runtime.configure(fused_kernels=False)       # flip one flag
    with runtime.use(vectorized_radio=False):    # pin for a block
        ...
    runtime.configure(backend="numba")           # select a backend
    runtime.flags()                              # {'arena': ..., 'backend': ...}
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Dict, List, Mapping, Optional

#: every *boolean* dispatch flag, in stable (sorted) order.
FLAG_NAMES = ("arena", "batched_cc", "fused_kernels", "vectorized_radio")

#: string-valued flags: the compute-backend selector and the continuous
#: telemetry sample rate (``"0"`` = sampling off; see
#: :mod:`repro.obs.timeseries`).  Both are stored as canonical strings
#: so the flag machinery (mirrors, manifests, hashing) stays uniform;
#: :func:`obs_sample_hz` exposes the parsed float.
VALUE_FLAG_NAMES = ("backend", "obs_sample_hz", "sanitize")

#: every flag — boolean and value — in stable (sorted) order.
ALL_FLAG_NAMES = tuple(sorted(FLAG_NAMES + VALUE_FLAG_NAMES))

#: flags that change *synthesized trace values* (and therefore must be
#: folded into the trace-cache key); the others only affect training
#: and inference numerics of the nn stack.  ``backend`` is here because
#: a compiled backend's transcendentals may round differently from
#: numpy's in the last ulp.
SYNTHESIS_FLAG_NAMES = ("backend", "vectorized_radio")

#: the reference backend: plain numpy, bit-identical to the oracles.
DEFAULT_BACKEND = "numpy"

#: telemetry sampling is off by default: no sampler thread is started
#: and :func:`repro.obs.sample_window` hands back a shared null object.
DEFAULT_OBS_SAMPLE_HZ = "0"

#: the numeric sanitizer is off by default: production hot paths pay
#: zero per-primitive overhead unless ``REPRO_SANITIZE=1`` /
#: ``--sanitize`` arms the guards.
DEFAULT_SANITIZE = "0"

#: defaults for the string-valued flags (booleans default to ``True``).
_VALUE_FLAG_DEFAULTS: Dict[str, str] = {
    "backend": DEFAULT_BACKEND,
    "obs_sample_hz": DEFAULT_OBS_SAMPLE_HZ,
    "sanitize": DEFAULT_SANITIZE,
}


def _env_backend() -> str:
    return os.environ.get("REPRO_BACKEND", "").strip().lower() or DEFAULT_BACKEND


def _env_obs_sample_hz() -> str:
    return os.environ.get("REPRO_OBS_SAMPLE_HZ", "").strip() or DEFAULT_OBS_SAMPLE_HZ


def _env_sanitize() -> str:
    return os.environ.get("REPRO_SANITIZE", "").strip() or DEFAULT_SANITIZE


def _canonical_hz(raw: object) -> str:
    """Validate and canonicalize a sample-rate flag value (``"2.5"``)."""
    try:
        hz = float(str(raw).strip())
    except ValueError:
        raise ValueError(f"obs_sample_hz must parse as a float, got {raw!r}") from None
    if not (0.0 <= hz < float("inf")):
        raise ValueError(f"obs_sample_hz must be a finite rate >= 0, got {raw!r}")
    return format(hz, "g")


#: accepted spellings for the ``sanitize`` flag, canonicalized to "0"/"1".
_SANITIZE_SPELLINGS = {
    "0": "0",
    "false": "0",
    "off": "0",
    "no": "0",
    "1": "1",
    "true": "1",
    "on": "1",
    "yes": "1",
}


def _canonical_sanitize(raw: object) -> str:
    """Validate and canonicalize a sanitize flag value to ``"0"``/``"1"``."""
    if raw is True or raw is False:
        return "1" if raw else "0"
    text = str(raw).strip().lower()
    try:
        return _SANITIZE_SPELLINGS[text]
    except KeyError:
        raise ValueError(f"sanitize must be one of 0/1/on/off/true/false, got {raw!r}") from None


def default_flags() -> Dict[str, object]:
    """The production flag snapshot: every fast path on, numpy backend."""
    values: Dict[str, object] = {}
    for name in ALL_FLAG_NAMES:
        values[name] = _VALUE_FLAG_DEFAULTS[name] if name in VALUE_FLAG_NAMES else True
    return values


def _initial_flags() -> Dict[str, object]:
    values = default_flags()
    values["backend"] = _env_backend()
    values["obs_sample_hz"] = _canonical_hz(_env_obs_sample_hz())
    values["sanitize"] = _canonical_sanitize(_env_sanitize())
    return values


_FLAGS: Dict[str, object] = _initial_flags()
_MIRRORS: Dict[str, List[Callable[[object], None]]] = {name: [] for name in ALL_FLAG_NAMES}


def _check_name(name: str) -> None:
    if name not in _FLAGS:
        raise ValueError(f"unknown runtime flag {name!r}; known flags: {list(ALL_FLAG_NAMES)}")


def _coerce(name: str, value: object) -> object:
    if name == "obs_sample_hz":
        return _canonical_hz(value)
    if name == "sanitize":
        return _canonical_sanitize(value)
    if name in VALUE_FLAG_NAMES:
        text = str(value).strip().lower()
        if not text:
            raise ValueError(f"runtime flag {name!r} needs a non-empty string value")
        return text
    return bool(value)


def flag(name: str) -> object:
    """Current value of one dispatch flag (bool, or str for value flags)."""
    _check_name(name)
    return _FLAGS[name]


def flags() -> Dict[str, object]:
    """Snapshot of every dispatch flag (insertion order = sorted names)."""
    return dict(_FLAGS)


def backend_name() -> str:
    """The *requested* backend name (resolution lives in :mod:`repro.backends`)."""
    return str(_FLAGS["backend"])


def obs_sample_hz() -> float:
    """The telemetry sample rate in Hz (``0.0`` = sampling disabled).

    The canonical value lives in the ``obs_sample_hz`` value flag
    (preset by ``REPRO_OBS_SAMPLE_HZ``, overridable like any flag via
    :func:`configure` / ``repro5g --obs-sample-hz``); this accessor
    parses it.  Hot callers should read the write-through mirror in
    :mod:`repro.obs` instead of calling this per sample.
    """
    return float(str(_FLAGS["obs_sample_hz"]))


def sanitize_enabled() -> bool:
    """Whether the numeric sanitizer is armed (``sanitize`` flag == "1").

    Hot callers never query this per primitive call: when the flag
    flips, :mod:`repro.backends` swaps the *resolved backend object*
    for a sanitizer-wrapped twin (see :mod:`repro.sanitize`), so the
    dispatch layer pays nothing while the flag is off.
    """
    return str(_FLAGS["sanitize"]) == "1"


def synthesis_fingerprint() -> Dict[str, object]:
    """The subset of flags that affect synthesized trace values."""
    return {name: _FLAGS[name] for name in SYNTHESIS_FLAG_NAMES}


def register_mirror(name: str, setter: Callable[[object], None]) -> object:
    """Register a write-through mirror for ``name``; returns the current value.

    Subsystem modules call this at import time with a setter that
    updates their module-level global — hot loops keep reading a plain
    global (no function call, no dict lookup) while this module stays
    authoritative.  The returned value lets the caller initialize its
    global in sync.
    """
    _check_name(name)
    _MIRRORS[name].append(setter)
    setter(_FLAGS[name])
    return _FLAGS[name]


def set_flag(name: str, enabled: object) -> object:
    """Set one flag (and push it to every mirror); returns the previous value."""
    _check_name(name)
    previous = _FLAGS[name]
    value = _coerce(name, enabled)
    _FLAGS[name] = value
    for setter in _MIRRORS[name]:
        setter(value)
    return previous


def configure(**flag_values: object) -> Dict[str, object]:
    """Set any subset of flags by keyword; returns the *previous* snapshot.

    ``None`` values are ignored so callers can pass optional CLI args
    straight through::

        previous = runtime.configure(fused_kernels=False)
        ...
        runtime.configure(**previous)   # restore
    """
    for name in flag_values:
        _check_name(name)
    previous = flags()
    for name, value in flag_values.items():
        if value is not None:
            set_flag(name, value)
    return previous


class use:
    """Context manager pinning any subset of flags, restoring on exit.

    ::

        with runtime.use(fused_kernels=False, backend="numpy"):
            ...  # oracle nn path, reference backend
    """

    def __init__(self, **flag_values: object) -> None:
        for name in flag_values:
            _check_name(name)
        self.flag_values = flag_values
        self._previous: Optional[Dict[str, object]] = None

    def __enter__(self) -> "use":
        self._previous = configure(**self.flag_values)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._previous is not None:
            configure(**self._previous)


# ---------------------------------------------------------------------------
# canonical content hashing


def canonical_hash(payload: Mapping, schema: Optional[str] = None, length: int = 16) -> str:
    """Stable content hash of a JSON-serializable configuration.

    The payload is canonicalized (sorted keys, compact separators,
    ``default=str`` for exotic values) and hashed with SHA-256; an
    optional ``schema`` string is folded in so semantic changes to the
    producing code can invalidate old hashes.  This is the *only*
    hashing recipe in the repo — the trace cache, the obs manifests and
    the experiment pipeline all delegate here, so equal configurations
    hash equally everywhere.
    """
    data = dict(payload)
    if schema is not None:
        data = {"__schema__": schema, **data}
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


def runtime_hash() -> str:
    """Canonical hash of the full flag snapshot (for manifests/debugging)."""
    return canonical_hash(flags(), schema="repro-runtime-v1")
