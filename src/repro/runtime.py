"""repro.runtime — single source of truth for kernel-path dispatch.

The repo has three hot-path dispatch switches that grew up in three
different modules:

* ``fused_kernels`` — fused LSTM/GRU/affine autograd kernels vs the
  op-by-op oracle (:mod:`repro.nn.modules`);
* ``batched_cc`` — Prism5G's carrier-folded forward vs the per-CC
  Python loop (:mod:`repro.core.prism5g`);
* ``vectorized_radio`` — the simulator's array-based candidate radio
  update vs the scalar per-cell loop (:mod:`repro.ran.simulator`).

Each switch used to be an independent module global, which meant a
cached trace set, a training run, and the manifest describing them
could silently disagree about which code path produced what.  This
module centralizes the state: the canonical flag values live here,
every subsystem registers a *mirror* (a plain module global it reads
in its hot loop, kept in sync by :func:`set_flag`), and the legacy
setters (``set_fused_kernels`` & co.) survive as deprecated shims that
delegate here.

The same module owns the repo's one canonical content-hash helper,
:func:`canonical_hash` (sorted-key compact JSON → SHA-256), used by the
trace cache, the obs manifests, and the experiment pipeline — so one
hash identifies a run everywhere.  Because ``vectorized_radio`` changes
synthesized trace values (at the last-ulp level), the trace cache folds
:func:`synthesis_fingerprint` into its keys; see
:func:`repro.data.cache.cache_key`.

Typical use::

    from repro import runtime

    runtime.configure(fused_kernels=False)       # flip one flag
    with runtime.use(vectorized_radio=False):    # pin for a block
        ...
    runtime.flags()                              # {'fused_kernels': ..., ...}
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List, Mapping, Optional

#: every dispatch flag, in stable (sorted) order.
FLAG_NAMES = ("batched_cc", "fused_kernels", "vectorized_radio")

#: flags that change *synthesized trace values* (and therefore must be
#: folded into the trace-cache key); the others only affect training
#: and inference numerics of the nn stack.
SYNTHESIS_FLAG_NAMES = ("vectorized_radio",)

_FLAGS: Dict[str, bool] = {name: True for name in FLAG_NAMES}
_MIRRORS: Dict[str, List[Callable[[bool], None]]] = {name: [] for name in FLAG_NAMES}


def _check_name(name: str) -> None:
    if name not in _FLAGS:
        raise ValueError(f"unknown runtime flag {name!r}; known flags: {list(FLAG_NAMES)}")


def flag(name: str) -> bool:
    """Current value of one dispatch flag."""
    _check_name(name)
    return _FLAGS[name]


def flags() -> Dict[str, bool]:
    """Snapshot of every dispatch flag (insertion order = sorted names)."""
    return dict(_FLAGS)


def synthesis_fingerprint() -> Dict[str, bool]:
    """The subset of flags that affect synthesized trace values."""
    return {name: _FLAGS[name] for name in SYNTHESIS_FLAG_NAMES}


def register_mirror(name: str, setter: Callable[[bool], None]) -> bool:
    """Register a write-through mirror for ``name``; returns the current value.

    Subsystem modules call this at import time with a setter that
    updates their module-level global — hot loops keep reading a plain
    global (no function call, no dict lookup) while this module stays
    authoritative.  The returned value lets the caller initialize its
    global in sync.
    """
    _check_name(name)
    _MIRRORS[name].append(setter)
    setter(_FLAGS[name])
    return _FLAGS[name]


def set_flag(name: str, enabled: bool) -> bool:
    """Set one flag (and push it to every mirror); returns the previous value."""
    _check_name(name)
    previous = _FLAGS[name]
    value = bool(enabled)
    _FLAGS[name] = value
    for setter in _MIRRORS[name]:
        setter(value)
    return previous


def configure(**flag_values: Optional[bool]) -> Dict[str, bool]:
    """Set any subset of flags by keyword; returns the *previous* snapshot.

    ``None`` values are ignored so callers can pass optional CLI args
    straight through::

        previous = runtime.configure(fused_kernels=False)
        ...
        runtime.configure(**previous)   # restore
    """
    for name in flag_values:
        _check_name(name)
    previous = flags()
    for name, value in flag_values.items():
        if value is not None:
            set_flag(name, value)
    return previous


class use:
    """Context manager pinning any subset of flags, restoring on exit.

    ::

        with runtime.use(fused_kernels=False, batched_cc=False):
            ...  # oracle paths active
    """

    def __init__(self, **flag_values: Optional[bool]) -> None:
        for name in flag_values:
            _check_name(name)
        self.flag_values = flag_values
        self._previous: Optional[Dict[str, bool]] = None

    def __enter__(self) -> "use":
        self._previous = configure(**self.flag_values)
        return self

    def __exit__(self, *exc: object) -> None:
        if self._previous is not None:
            configure(**self._previous)


# ---------------------------------------------------------------------------
# canonical content hashing


def canonical_hash(payload: Mapping, schema: Optional[str] = None, length: int = 16) -> str:
    """Stable content hash of a JSON-serializable configuration.

    The payload is canonicalized (sorted keys, compact separators,
    ``default=str`` for exotic values) and hashed with SHA-256; an
    optional ``schema`` string is folded in so semantic changes to the
    producing code can invalidate old hashes.  This is the *only*
    hashing recipe in the repo — the trace cache, the obs manifests and
    the experiment pipeline all delegate here, so equal configurations
    hash equally everywhere.
    """
    data = dict(payload)
    if schema is not None:
        data = {"__schema__": schema, **data}
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


def runtime_hash() -> str:
    """Canonical hash of the full flag snapshot (for manifests/debugging)."""
    return canonical_hash(flags(), schema="repro-runtime-v1")
