"""The six ML sub-datasets of the paper's Table 11.

Operators {OpX, OpY, OpZ} x mobility {walking, driving}, each at two
granularities (10 ms with a 100 ms horizon; 1 s with a 10 s horizon),
10 traces of 300-600 samples per scenario.  Traces come from the RAN
simulator instead of the authors' XCAL captures (see DESIGN.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.preprocessing import MinMaxScaler
from ..parallel import parallel_map
from ..ran.simulator import TraceSimulator
from ..ran.traces import Trace, TraceSet
from .cache import CacheLike, resolve_cache
from .windowing import WindowedDataset, window_traces


@dataclass(frozen=True)
class SubDatasetSpec:
    """One row of the paper's Table 11 at one time scale."""

    operator: str
    mobility: str  #: "walking" or "driving"
    timescale: str  #: "short" (10 ms) or "long" (1 s)

    @property
    def dt_s(self) -> float:
        return 0.01 if self.timescale == "short" else 1.0

    @property
    def name(self) -> str:
        return f"{self.operator} ({self.mobility.capitalize()}) [{self.timescale}]"


ALL_SUBDATASETS: Tuple[SubDatasetSpec, ...] = tuple(
    SubDatasetSpec(operator, mobility, timescale)
    for timescale in ("short", "long")
    for operator in ("OpX", "OpY", "OpZ")
    for mobility in ("walking", "driving")
)


#: phones rotated through the campaign, as in the paper's Table 5
#: (9 phones across 4 modem generations with different CA capability).
CAMPAIGN_MODEMS: Tuple[str, ...] = ("X70", "X65", "X60", "X70")

#: measurement hours rotated per run (the paper collects mostly at
#: midnight but includes day-time runs, Appendix B.2).
CAMPAIGN_HOURS: Tuple[float, ...] = (0.5, 12.5, 18.5, 3.0)


def _synthesize_trace(job: Dict) -> Trace:
    """Top-level worker so :func:`~repro.parallel.parallel_map` can pickle it."""
    sim = TraceSimulator(**job["sim"])
    return sim.run(job["duration_s"], route_id=job["route_id"])


def subdataset_cache_config(
    spec: SubDatasetSpec,
    n_traces: int = 10,
    samples_per_trace: int = 400,
    seed: int = 0,
    modem: Optional[str] = None,
) -> Dict:
    """The trace-cache configuration for one sub-dataset synthesis.

    Shared by :func:`generate_traces` and the experiment pipeline's
    synthesize stage, so both derive the same cache key for the same
    work (skip-on-hit checks stay in sync with what gets stored).
    """
    return {
        "kind": "subdataset",
        "operator": spec.operator,
        "mobility": spec.mobility,
        "timescale": spec.timescale,
        "dt_s": spec.dt_s,
        "n_traces": n_traces,
        "samples_per_trace": samples_per_trace,
        "seed": seed,
        "modem": modem,
        "modem_rotation": list(CAMPAIGN_MODEMS),
        "hour_rotation": list(CAMPAIGN_HOURS),
    }


def generate_traces(
    spec: SubDatasetSpec,
    n_traces: int = 10,
    samples_per_trace: int = 400,
    seed: int = 0,
    modem: Optional[str] = None,
    cache: CacheLike = "auto",
    processes: Optional[int] = None,
) -> TraceSet:
    """Generate the raw traces for one sub-dataset.

    Traces rotate scenario, UE modem, and time of day, matching the
    heterogeneity of the paper's campaign (different routes, phones and
    collection times per sub-dataset).  Pass ``modem`` to pin one phone.

    Synthesis is cached on disk keyed by a content hash of the full
    configuration (``cache="auto"``; pass ``None`` to disable, or a
    :class:`~repro.data.cache.TraceCache` / directory to redirect) and
    parallelized across traces with ``processes`` workers (default:
    one per CPU, capped at the trace count; ``REPRO_PROCS`` overrides).
    """
    if n_traces < 1:
        raise ValueError("n_traces must be >= 1")
    # Table 11: walking covers outdoor-urban + indoor; driving covers
    # urban + suburban + beltway (highway).
    if spec.mobility == "driving":
        scenarios = ("urban", "suburban", "highway")
    else:
        scenarios = ("urban", "urban", "indoor")
    jobs: List[Dict] = []
    for run in range(n_traces):
        scenario = scenarios[run % len(scenarios)]
        mobility = "indoor" if scenario == "indoor" else spec.mobility
        jobs.append(
            {
                "sim": dict(
                    operator=spec.operator,
                    scenario=scenario,
                    mobility=mobility,
                    modem=modem or CAMPAIGN_MODEMS[run % len(CAMPAIGN_MODEMS)],
                    rat="5G",
                    dt_s=spec.dt_s,
                    hour=CAMPAIGN_HOURS[run % len(CAMPAIGN_HOURS)],
                    seed=seed * 1000 + run,
                ),
                "duration_s": samples_per_trace * spec.dt_s,
                "route_id": run,
            }
        )

    def synthesize() -> TraceSet:
        return TraceSet(parallel_map(_synthesize_trace, jobs, processes=processes))

    trace_cache = resolve_cache(cache)
    if trace_cache is None:
        return synthesize()
    config = subdataset_cache_config(spec, n_traces, samples_per_trace, seed, modem)
    return trace_cache.get_or_create(config, synthesize)


@dataclass
class MLDataset:
    """A windowed, min-max-normalized dataset plus its scalers."""

    windows: WindowedDataset
    feature_scaler: MinMaxScaler
    target_scaler: MinMaxScaler
    spec: Optional[SubDatasetSpec] = None

    def denormalize_tput(self, y: np.ndarray) -> np.ndarray:
        """Map normalized throughput back to Mbps."""
        return self.target_scaler.inverse_transform(np.asarray(y).reshape(-1, 1)).reshape(np.asarray(y).shape)


def normalize_windows(windows: WindowedDataset) -> MLDataset:
    """Fit min-max scalers (paper Appendix C.1) and normalize in place.

    Per-CC features are scaled columnwise over all (pair, time, cc)
    samples; throughput (history and target) shares one scaler so the
    two stay commensurate.
    """
    n, t, c, f = windows.x.shape
    feature_scaler = MinMaxScaler().fit(windows.x.reshape(-1, f))
    x_norm = feature_scaler.transform(windows.x.reshape(-1, f)).reshape(n, t, c, f)
    tput = np.concatenate([windows.y.reshape(-1), windows.y_hist.reshape(-1)])
    target_scaler = MinMaxScaler().fit(tput.reshape(-1, 1))
    y_norm = target_scaler.transform(windows.y.reshape(-1, 1)).reshape(windows.y.shape)
    y_hist_norm = target_scaler.transform(windows.y_hist.reshape(-1, 1)).reshape(windows.y_hist.shape)
    y_cc_norm = None
    if windows.y_cc is not None:
        # per-CC targets share the aggregate scaler so their sum stays
        # commensurate with the total (up to the shared offset).
        span = target_scaler._range[0]
        y_cc_norm = windows.y_cc / span
    normalized = WindowedDataset(
        x=x_norm,
        mask=windows.mask,
        y=y_norm,
        y_hist=y_hist_norm,
        trace_ids=windows.trace_ids,
        y_cc=y_cc_norm,
    )
    return MLDataset(windows=normalized, feature_scaler=feature_scaler, target_scaler=target_scaler)


def build_subdataset(
    spec: SubDatasetSpec,
    n_traces: int = 10,
    samples_per_trace: int = 400,
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
    stride: int = 1,
    seed: int = 0,
    cache: CacheLike = "auto",
    processes: Optional[int] = None,
) -> MLDataset:
    """Generate, window and normalize one of the Table 11 sub-datasets.

    Trace synthesis is cached/parallelized — see :func:`generate_traces`.
    """
    traces = generate_traces(
        spec, n_traces, samples_per_trace, seed, cache=cache, processes=processes
    )
    windows = window_traces(traces.traces, history, horizon, max_ccs, stride)
    dataset = normalize_windows(windows)
    return MLDataset(
        windows=dataset.windows,
        feature_scaler=dataset.feature_scaler,
        target_scaler=dataset.target_scaler,
        spec=spec,
    )


# ---------------------------------------------------------------------------
# Dataset artifacts (the experiment pipeline's build-dataset stage)

#: bump when the on-disk dataset layout changes incompatibly.
DATASET_SCHEMA = "repro-dataset-v1"


def save_dataset(dataset: MLDataset, path) -> None:
    """Persist a windowed, normalized dataset (arrays + scalers) as ``.npz``.

    Float64 arrays round-trip bit-exactly through ``np.savez``, so a
    reloaded dataset produces byte-identical splits and training
    batches — which is what lets the pipeline's later stages resume
    from this artifact instead of re-synthesizing traces.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    windows = dataset.windows
    meta = {
        "schema": DATASET_SCHEMA,
        "spec": None
        if dataset.spec is None
        else {
            "operator": dataset.spec.operator,
            "mobility": dataset.spec.mobility,
            "timescale": dataset.spec.timescale,
        },
        "has_y_cc": windows.y_cc is not None,
    }
    arrays = {
        "x": windows.x,
        "mask": windows.mask,
        "y": windows.y,
        "y_hist": windows.y_hist,
        "trace_ids": windows.trace_ids,
        "feature_min": dataset.feature_scaler.data_min,
        "feature_max": dataset.feature_scaler.data_max,
        "target_min": dataset.target_scaler.data_min,
        "target_max": dataset.target_scaler.data_max,
        "__meta__": np.array(json.dumps(meta, sort_keys=True)),
    }
    if windows.y_cc is not None:
        arrays["y_cc"] = windows.y_cc
    np.savez_compressed(path, **arrays)


def load_dataset(path) -> MLDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(str(archive["__meta__"][()]))
        if meta.get("schema") != DATASET_SCHEMA:
            raise ValueError(
                f"{path}: unsupported dataset schema {meta.get('schema')!r} "
                f"(expected {DATASET_SCHEMA!r})"
            )
        windows = WindowedDataset(
            x=archive["x"],
            mask=archive["mask"],
            y=archive["y"],
            y_hist=archive["y_hist"],
            trace_ids=archive["trace_ids"],
            y_cc=archive["y_cc"] if meta["has_y_cc"] else None,
        )
        feature_scaler = MinMaxScaler()
        feature_scaler.data_min = archive["feature_min"]
        feature_scaler.data_max = archive["feature_max"]
        target_scaler = MinMaxScaler()
        target_scaler.data_min = archive["target_min"]
        target_scaler.data_max = archive["target_max"]
    spec = None if meta["spec"] is None else SubDatasetSpec(**meta["spec"])
    return MLDataset(
        windows=windows,
        feature_scaler=feature_scaler,
        target_scaler=target_scaler,
        spec=spec,
    )
