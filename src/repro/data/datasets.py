"""The six ML sub-datasets of the paper's Table 11.

Operators {OpX, OpY, OpZ} x mobility {walking, driving}, each at two
granularities (10 ms with a 100 ms horizon; 1 s with a 10 s horizon),
10 traces of 300-600 samples per scenario.  Traces come from the RAN
simulator instead of the authors' XCAL captures (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.preprocessing import MinMaxScaler
from ..parallel import parallel_map
from ..ran.simulator import TraceSimulator
from ..ran.traces import Trace, TraceSet
from .cache import CacheLike, resolve_cache
from .windowing import WindowedDataset, window_traces


@dataclass(frozen=True)
class SubDatasetSpec:
    """One row of the paper's Table 11 at one time scale."""

    operator: str
    mobility: str  #: "walking" or "driving"
    timescale: str  #: "short" (10 ms) or "long" (1 s)

    @property
    def dt_s(self) -> float:
        return 0.01 if self.timescale == "short" else 1.0

    @property
    def name(self) -> str:
        return f"{self.operator} ({self.mobility.capitalize()}) [{self.timescale}]"


ALL_SUBDATASETS: Tuple[SubDatasetSpec, ...] = tuple(
    SubDatasetSpec(operator, mobility, timescale)
    for timescale in ("short", "long")
    for operator in ("OpX", "OpY", "OpZ")
    for mobility in ("walking", "driving")
)


#: phones rotated through the campaign, as in the paper's Table 5
#: (9 phones across 4 modem generations with different CA capability).
CAMPAIGN_MODEMS: Tuple[str, ...] = ("X70", "X65", "X60", "X70")

#: measurement hours rotated per run (the paper collects mostly at
#: midnight but includes day-time runs, Appendix B.2).
CAMPAIGN_HOURS: Tuple[float, ...] = (0.5, 12.5, 18.5, 3.0)


def _synthesize_trace(job: Dict) -> Trace:
    """Top-level worker so :func:`~repro.parallel.parallel_map` can pickle it."""
    sim = TraceSimulator(**job["sim"])
    return sim.run(job["duration_s"], route_id=job["route_id"])


def generate_traces(
    spec: SubDatasetSpec,
    n_traces: int = 10,
    samples_per_trace: int = 400,
    seed: int = 0,
    modem: Optional[str] = None,
    cache: CacheLike = "auto",
    processes: Optional[int] = None,
) -> TraceSet:
    """Generate the raw traces for one sub-dataset.

    Traces rotate scenario, UE modem, and time of day, matching the
    heterogeneity of the paper's campaign (different routes, phones and
    collection times per sub-dataset).  Pass ``modem`` to pin one phone.

    Synthesis is cached on disk keyed by a content hash of the full
    configuration (``cache="auto"``; pass ``None`` to disable, or a
    :class:`~repro.data.cache.TraceCache` / directory to redirect) and
    parallelized across traces with ``processes`` workers (default:
    one per CPU, capped at the trace count; ``REPRO_PROCS`` overrides).
    """
    if n_traces < 1:
        raise ValueError("n_traces must be >= 1")
    # Table 11: walking covers outdoor-urban + indoor; driving covers
    # urban + suburban + beltway (highway).
    if spec.mobility == "driving":
        scenarios = ("urban", "suburban", "highway")
    else:
        scenarios = ("urban", "urban", "indoor")
    jobs: List[Dict] = []
    for run in range(n_traces):
        scenario = scenarios[run % len(scenarios)]
        mobility = "indoor" if scenario == "indoor" else spec.mobility
        jobs.append(
            {
                "sim": dict(
                    operator=spec.operator,
                    scenario=scenario,
                    mobility=mobility,
                    modem=modem or CAMPAIGN_MODEMS[run % len(CAMPAIGN_MODEMS)],
                    rat="5G",
                    dt_s=spec.dt_s,
                    hour=CAMPAIGN_HOURS[run % len(CAMPAIGN_HOURS)],
                    seed=seed * 1000 + run,
                ),
                "duration_s": samples_per_trace * spec.dt_s,
                "route_id": run,
            }
        )

    def synthesize() -> TraceSet:
        return TraceSet(parallel_map(_synthesize_trace, jobs, processes=processes))

    trace_cache = resolve_cache(cache)
    if trace_cache is None:
        return synthesize()
    config = {
        "kind": "subdataset",
        "operator": spec.operator,
        "mobility": spec.mobility,
        "timescale": spec.timescale,
        "dt_s": spec.dt_s,
        "n_traces": n_traces,
        "samples_per_trace": samples_per_trace,
        "seed": seed,
        "modem": modem,
        "modem_rotation": list(CAMPAIGN_MODEMS),
        "hour_rotation": list(CAMPAIGN_HOURS),
    }
    return trace_cache.get_or_create(config, synthesize)


@dataclass
class MLDataset:
    """A windowed, min-max-normalized dataset plus its scalers."""

    windows: WindowedDataset
    feature_scaler: MinMaxScaler
    target_scaler: MinMaxScaler
    spec: Optional[SubDatasetSpec] = None

    def denormalize_tput(self, y: np.ndarray) -> np.ndarray:
        """Map normalized throughput back to Mbps."""
        return self.target_scaler.inverse_transform(np.asarray(y).reshape(-1, 1)).reshape(np.asarray(y).shape)


def normalize_windows(windows: WindowedDataset) -> MLDataset:
    """Fit min-max scalers (paper Appendix C.1) and normalize in place.

    Per-CC features are scaled columnwise over all (pair, time, cc)
    samples; throughput (history and target) shares one scaler so the
    two stay commensurate.
    """
    n, t, c, f = windows.x.shape
    feature_scaler = MinMaxScaler().fit(windows.x.reshape(-1, f))
    x_norm = feature_scaler.transform(windows.x.reshape(-1, f)).reshape(n, t, c, f)
    tput = np.concatenate([windows.y.reshape(-1), windows.y_hist.reshape(-1)])
    target_scaler = MinMaxScaler().fit(tput.reshape(-1, 1))
    y_norm = target_scaler.transform(windows.y.reshape(-1, 1)).reshape(windows.y.shape)
    y_hist_norm = target_scaler.transform(windows.y_hist.reshape(-1, 1)).reshape(windows.y_hist.shape)
    y_cc_norm = None
    if windows.y_cc is not None:
        # per-CC targets share the aggregate scaler so their sum stays
        # commensurate with the total (up to the shared offset).
        span = target_scaler._range[0]
        y_cc_norm = windows.y_cc / span
    normalized = WindowedDataset(
        x=x_norm,
        mask=windows.mask,
        y=y_norm,
        y_hist=y_hist_norm,
        trace_ids=windows.trace_ids,
        y_cc=y_cc_norm,
    )
    return MLDataset(windows=normalized, feature_scaler=feature_scaler, target_scaler=target_scaler)


def build_subdataset(
    spec: SubDatasetSpec,
    n_traces: int = 10,
    samples_per_trace: int = 400,
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
    stride: int = 1,
    seed: int = 0,
    cache: CacheLike = "auto",
    processes: Optional[int] = None,
) -> MLDataset:
    """Generate, window and normalize one of the Table 11 sub-datasets.

    Trace synthesis is cached/parallelized — see :func:`generate_traces`.
    """
    traces = generate_traces(
        spec, n_traces, samples_per_trace, seed, cache=cache, processes=processes
    )
    windows = window_traces(traces.traces, history, horizon, max_ccs, stride)
    dataset = normalize_windows(windows)
    return MLDataset(
        windows=dataset.windows,
        feature_scaler=dataset.feature_scaler,
        target_scaler=dataset.target_scaler,
        spec=spec,
    )
