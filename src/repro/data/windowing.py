"""Sliding-window construction of (history, horizon) training pairs.

The paper (§6.1) turns each trace into data pairs with a moving window:
input and output sequence lengths are both 10, i.e. a 100 ms horizon on
the 10 ms datasets and a 10 s horizon on the 1 s datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..ran.traces import CC_FEATURES, Trace


@dataclass
class WindowedDataset:
    """Arrays ready for model training.

    Attributes
    ----------
    x:
        Per-CC feature history, shape ``(n, T, C, F)``.
    mask:
        CC activity mask over history, shape ``(n, T, C)`` — the binary
        state vector *I* built from RRC events (paper §5.2).
    y:
        Future aggregate throughput, shape ``(n, H)`` (normalized if a
        scaler was applied).
    y_hist:
        Historical aggregate throughput, shape ``(n, T)``.
    y_cc:
        Future per-CC throughput, shape ``(n, H, C)`` — the per-carrier
        targets that supervise Prism5G's per-CC heads (its aggregate
        prediction is their sum, paper §5.2).
    trace_ids:
        Originating trace index for each pair (enables trace-level
        splits for the generalizability study, Table 14).
    """

    x: np.ndarray
    mask: np.ndarray
    y: np.ndarray
    y_hist: np.ndarray
    trace_ids: np.ndarray
    y_cc: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.x)

    @property
    def n_ccs(self) -> int:
        return self.x.shape[2]

    @property
    def history_len(self) -> int:
        return self.x.shape[1]

    @property
    def horizon(self) -> int:
        return self.y.shape[1]

    def subset(self, indices: np.ndarray) -> "WindowedDataset":
        return WindowedDataset(
            x=self.x[indices],
            mask=self.mask[indices],
            y=self.y[indices],
            y_hist=self.y_hist[indices],
            trace_ids=self.trace_ids[indices],
            y_cc=None if self.y_cc is None else self.y_cc[indices],
        )


_TPUT_FEATURE_INDEX = CC_FEATURES.index("tput_mbps")


def window_trace(
    trace: Trace,
    history: int,
    horizon: int,
    max_ccs: int,
    stride: int = 1,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Window a single trace; returns (x, mask, y, y_hist, y_cc) or None."""
    if history < 1 or horizon < 1:
        raise ValueError("history and horizon must be >= 1")
    features, mask, total = trace.feature_tensor(max_ccs)
    per_cc_tput = features[:, :, _TPUT_FEATURE_INDEX]  # (T, C)
    n = len(total)
    n_pairs = (n - history - horizon) // stride + 1
    if n_pairs <= 0:
        return None
    xs, ms, ys, hs, cs = [], [], [], [], []
    for i in range(0, n - history - horizon + 1, stride):
        xs.append(features[i : i + history])
        ms.append(mask[i : i + history])
        hs.append(total[i : i + history])
        ys.append(total[i + history : i + history + horizon])
        cs.append(per_cc_tput[i + history : i + history + horizon])
    return np.stack(xs), np.stack(ms), np.stack(ys), np.stack(hs), np.stack(cs)


def window_traces(
    traces: Sequence[Trace],
    history: int = 10,
    horizon: int = 10,
    max_ccs: int = 4,
    stride: int = 1,
) -> WindowedDataset:
    """Window many traces into one dataset, tracking trace provenance."""
    xs, ms, ys, hs, ids, ccs = [], [], [], [], [], []
    for trace_id, trace in enumerate(traces):
        windows = window_trace(trace, history, horizon, max_ccs, stride)
        if windows is None:
            continue
        x, m, y, h, y_cc = windows
        xs.append(x)
        ms.append(m)
        ys.append(y)
        hs.append(h)
        ccs.append(y_cc)
        ids.append(np.full(len(x), trace_id))
    if not xs:
        raise ValueError("no trace long enough for the requested window sizes")
    return WindowedDataset(
        x=np.concatenate(xs),
        mask=np.concatenate(ms),
        y=np.concatenate(ys),
        y_hist=np.concatenate(hs),
        trace_ids=np.concatenate(ids),
        y_cc=np.concatenate(ccs),
    )


def flatten_for_trees(dataset: WindowedDataset) -> np.ndarray:
    """Stack each pair's full history into one flat feature vector.

    This is the paper's classical-ML strategy (Appendix C.1):
    ``R^(T,k) -> R^(T*k, 1)``; we flatten per-CC features, the mask and
    the historical throughput together.
    """
    n = len(dataset)
    per_cc = dataset.x.reshape(n, -1)
    mask = dataset.mask.reshape(n, -1)
    hist = dataset.y_hist.reshape(n, -1)
    return np.concatenate([per_cc, mask, hist], axis=1)
