"""Dataset construction: windowing, normalization, splits (Table 11)."""

from .artifacts import dataset_summary, load_trace_set, save_trace_set
from .cache import TraceCache, cache_key, default_cache_dir, resolve_cache
from .datasets import (
    ALL_SUBDATASETS,
    DATASET_SCHEMA,
    MLDataset,
    SubDatasetSpec,
    build_subdataset,
    generate_traces,
    load_dataset,
    normalize_windows,
    save_dataset,
    subdataset_cache_config,
)
from .splits import random_split, trace_level_split
from .windowing import WindowedDataset, flatten_for_trees, window_trace, window_traces

__all__ = [
    "ALL_SUBDATASETS",
    "DATASET_SCHEMA",
    "MLDataset",
    "SubDatasetSpec",
    "TraceCache",
    "WindowedDataset",
    "build_subdataset",
    "cache_key",
    "dataset_summary",
    "default_cache_dir",
    "resolve_cache",
    "flatten_for_trees",
    "load_dataset",
    "load_trace_set",
    "save_dataset",
    "save_trace_set",
    "generate_traces",
    "normalize_windows",
    "random_split",
    "subdataset_cache_config",
    "trace_level_split",
    "window_trace",
    "window_traces",
]
