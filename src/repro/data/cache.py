"""Content-addressed on-disk cache for synthesized trace sets.

Every headline bench re-synthesizes its traces from the RAN simulator,
which is the slowest part of the repo's hot path.  Simulation is fully
deterministic given its configuration (operator, scenario, modem, dt,
seed, ...), so a content hash of that configuration identifies the
output exactly.  This module caches :class:`~repro.ran.traces.TraceSet`
objects on disk under that hash, using the JSONL artifact format from
:mod:`repro.data.artifacts` — JSON float round-tripping is exact, so a
cache hit reproduces byte-identical traces and therefore byte-identical
windowed arrays.

Layout::

    <cache_dir>/<key>/manifest.json     # artifact manifest
    <cache_dir>/<key>/config.json       # the hashed configuration
    <cache_dir>/<key>/*.jsonl           # one file per trace

The default directory is ``~/.cache/repro5g`` (override with the
``REPRO_CACHE_DIR`` environment variable); ``REPRO_NO_CACHE=1``
disables caching globally.  Clear with :meth:`TraceCache.clear` or
simply ``rm -rf`` the directory.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Callable, List, Mapping, Optional, Union

from .. import obs, runtime
from ..ran.traces import TraceSet
from .artifacts import MANIFEST_NAME, load_trace_set, save_trace_set

#: bump when simulator/windowing semantics change so stale entries miss.
#: v3: the runtime synthesis fingerprint (vectorized_radio) is folded
#: into every key, so a cache entry can never silently disagree with
#: the dispatch path of the run that reads it.
CACHE_SCHEMA_VERSION = "repro-traces-v3"

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_DISABLE_ENV = "REPRO_NO_CACHE"

CONFIG_NAME = "config.json"


def cache_key(config: Mapping) -> str:
    """Stable content hash of a simulation configuration.

    Delegates to :func:`repro.runtime.canonical_hash` (the repo's one
    hashing recipe, shared with obs manifests and the experiment
    pipeline).  The schema version is folded in so semantic changes to
    the simulator invalidate old entries, and so is the runtime
    *synthesis fingerprint* — the dispatch flags that change trace
    values (``vectorized_radio``) — so toggling a kernel path can never
    serve traces produced by the other path.
    """
    payload = {"__runtime__": runtime.synthesis_fingerprint(), **dict(config)}
    return runtime.canonical_hash(payload, schema=CACHE_SCHEMA_VERSION, length=24)


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro5g"


def caching_disabled() -> bool:
    return bool(os.environ.get(CACHE_DISABLE_ENV))


class TraceCache:
    """Directory of trace sets keyed by configuration hash."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()

    # ------------------------------------------------------------------
    def path_for(self, config: Mapping) -> Path:
        return self.directory / cache_key(config)

    def contains(self, config: Mapping) -> bool:
        return (self.path_for(config) / MANIFEST_NAME).exists()

    def _entry_bytes(self, entry: Path) -> int:
        try:
            return sum(p.stat().st_size for p in entry.iterdir() if p.is_file())
        except OSError:
            return 0

    def get(self, config: Mapping) -> Optional[TraceSet]:
        """Load the trace set for ``config`` or return None on a miss.

        A corrupt or truncated entry (e.g. a run killed mid-write, disk
        trouble) is treated as a miss: it is reported as a structured
        ``cache.corrupt`` warning and deleted so the next run
        regenerates it instead of failing forever.
        """
        entry = self.path_for(config)
        if not (entry / MANIFEST_NAME).exists():
            if obs.metrics_enabled():
                obs.counter("cache.miss")
            return None
        try:
            with obs.span("cache.get", key=entry.name):
                traces = load_trace_set(entry)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            obs.log_warning(
                "cache.corrupt",
                key=entry.name,
                directory=str(self.directory),
                error=f"{type(exc).__name__}: {exc}",
            )
            shutil.rmtree(entry, ignore_errors=True)
            return None
        if obs.metrics_enabled():
            obs.counter("cache.hit")
            obs.counter("cache.bytes_read", self._entry_bytes(entry))
        return traces

    def put(self, config: Mapping, traces: TraceSet) -> Path:
        """Store ``traces`` under the config hash (atomic via rename)."""
        entry = self.path_for(config)
        if (entry / MANIFEST_NAME).exists():
            return entry
        staging = entry.with_name(f"{entry.name}.tmp-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        with obs.span("cache.put", key=entry.name):
            save_trace_set(traces, staging, name=entry.name)
            (staging / CONFIG_NAME).write_text(json.dumps(dict(config), indent=2, default=str))
            try:
                staging.replace(entry)
            except OSError:
                # lost a race with a concurrent writer; their entry is
                # identical by construction
                shutil.rmtree(staging, ignore_errors=True)
        if obs.metrics_enabled():
            obs.counter("cache.store")
            obs.counter("cache.bytes_written", self._entry_bytes(entry))
        return entry

    def get_or_create(self, config: Mapping, factory: Callable[[], TraceSet]) -> TraceSet:
        """Return the cached trace set, synthesizing + storing on a miss."""
        cached = self.get(config)
        if cached is not None:
            return cached
        traces = factory()
        self.put(config, traces)
        return traces

    # ------------------------------------------------------------------
    def entries(self) -> List[str]:
        """Hashes currently present in the cache directory."""
        if not self.directory.exists():
            return []
        return sorted(
            p.name for p in self.directory.iterdir()
            if p.is_dir() and (p / MANIFEST_NAME).exists()
        )

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for child in self.directory.iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed


CacheLike = Union[TraceCache, str, Path, None]


def resolve_cache(cache: Union[CacheLike, str] = "auto") -> Optional[TraceCache]:
    """Normalize a cache argument.

    ``"auto"`` — the default cache unless ``REPRO_NO_CACHE`` is set;
    ``None`` — caching off; a :class:`TraceCache`/path — as given.
    """
    if cache is None:
        return None
    if isinstance(cache, TraceCache):
        return cache
    if cache == "auto":
        return None if caching_disabled() else TraceCache()
    return TraceCache(cache)
