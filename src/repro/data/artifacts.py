"""Dataset artifacts: persist and reload whole trace sets.

The paper releases its measurement datasets publicly; this module gives
the synthetic equivalents the same shape — a directory of JSONL traces
plus a manifest — so downstream users can regenerate, share, and reload
identical datasets without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..ran.traces import Trace, TraceSet

MANIFEST_NAME = "manifest.json"


def save_trace_set(traces: TraceSet, directory: Union[str, Path], name: str = "dataset") -> Path:
    """Write every trace as JSONL plus a manifest; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries: List[Dict] = []
    for index, trace in enumerate(traces):
        filename = (
            f"{name}_{trace.operator}_{trace.rat}_{trace.scenario}_"
            f"{trace.mobility}_{index:04d}.jsonl"
        )
        trace.to_jsonl(directory / filename)
        entries.append(
            {
                "file": filename,
                "operator": trace.operator,
                "rat": trace.rat,
                "scenario": trace.scenario,
                "mobility": trace.mobility,
                "modem": trace.modem,
                "dt_s": trace.dt_s,
                "samples": len(trace),
                "seed": trace.seed,
                "route_id": trace.route_id,
            }
        )
    manifest = {"name": name, "n_traces": len(entries), "traces": entries}
    (directory / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return directory


def load_trace_set(
    directory: Union[str, Path],
    operator: Optional[str] = None,
    rat: Optional[str] = None,
    scenario: Optional[str] = None,
) -> TraceSet:
    """Reload a trace set saved by :func:`save_trace_set`, with filters."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    traces = []
    for entry in manifest["traces"]:
        if operator is not None and entry["operator"] != operator:
            continue
        if rat is not None and entry["rat"] != rat:
            continue
        if scenario is not None and entry["scenario"] != scenario:
            continue
        traces.append(Trace.from_jsonl(directory / entry["file"]))
    return TraceSet(traces)


def dataset_summary(directory: Union[str, Path]) -> Dict:
    """Manifest-level summary without loading any trace bodies."""
    manifest = json.loads((Path(directory) / MANIFEST_NAME).read_text())
    total_samples = sum(e["samples"] for e in manifest["traces"])
    total_minutes = sum(e["samples"] * e["dt_s"] for e in manifest["traces"]) / 60.0
    operators = sorted({e["operator"] for e in manifest["traces"]})
    return {
        "name": manifest["name"],
        "n_traces": manifest["n_traces"],
        "total_samples": total_samples,
        "total_minutes": total_minutes,
        "operators": operators,
    }
