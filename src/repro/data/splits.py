"""Train/validation/test splitting strategies.

Two protocols from the paper:

* **random split** (0.5 / 0.2 / 0.3, Appendix C.1) across all windowed
  pairs — the main Table 4 protocol;
* **trace-level split** — whole traces held out, used for the
  generalizability study (Table 14: same route different runs, and new
  routes entirely).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .windowing import WindowedDataset


def _check_ratios(train: float, val: float, test: float) -> None:
    if min(train, val, test) < 0 or abs(train + val + test - 1.0) > 1e-9:
        raise ValueError("ratios must be non-negative and sum to 1")


def random_split(
    dataset: WindowedDataset,
    train: float = 0.5,
    val: float = 0.2,
    test: float = 0.3,
    seed: int = 0,
) -> Tuple[WindowedDataset, WindowedDataset, WindowedDataset]:
    """Randomly split windowed pairs (the paper's main protocol)."""
    _check_ratios(train, val, test)
    n = len(dataset)
    order = np.random.default_rng(seed).permutation(n)
    n_train = int(train * n)
    n_val = int(val * n)
    return (
        dataset.subset(order[:n_train]),
        dataset.subset(order[n_train : n_train + n_val]),
        dataset.subset(order[n_train + n_val :]),
    )


def trace_level_split(
    dataset: WindowedDataset,
    train: float = 0.5,
    val: float = 0.2,
    test: float = 0.3,
    seed: int = 0,
) -> Tuple[WindowedDataset, WindowedDataset, WindowedDataset]:
    """Split by whole traces so test windows come from unseen runs."""
    _check_ratios(train, val, test)
    trace_ids = np.unique(dataset.trace_ids)
    order = np.random.default_rng(seed).permutation(trace_ids)
    n = len(order)
    n_train = max(1, int(round(train * n)))
    n_val = max(1, int(round(val * n))) if n - n_train > 1 else 0
    train_ids = set(order[:n_train].tolist())
    val_ids = set(order[n_train : n_train + n_val].tolist())
    test_ids = set(order[n_train + n_val :].tolist())
    if not test_ids:
        raise ValueError("not enough traces for a trace-level split")
    idx = np.arange(len(dataset))
    in_train = np.array([tid in train_ids for tid in dataset.trace_ids])
    in_val = np.array([tid in val_ids for tid in dataset.trace_ids])
    in_test = np.array([tid in test_ids for tid in dataset.trace_ids])
    return (
        dataset.subset(idx[in_train]),
        dataset.subset(idx[in_val]),
        dataset.subset(idx[in_test]),
    )
