"""repro.runtime: canonical dispatch flags, shims, and the hash recipe."""

import pytest

from repro import runtime
from repro.core import prism5g
from repro.nn import modules
from repro.ran import simulator


@pytest.fixture(autouse=True)
def restore_flags():
    before = runtime.flags()
    yield
    runtime.configure(**before)


SHIMS = {
    "fused_kernels": (modules.set_fused_kernels, modules.fused_kernels_enabled),
    "batched_cc": (prism5g.set_batched_cc, prism5g.batched_cc_enabled),
    "vectorized_radio": (simulator.set_vectorized_radio, simulator.vectorized_radio_enabled),
}


class TestFlags:
    def test_defaults_all_on(self):
        snapshot = runtime.flags()
        assert {name: snapshot[name] for name in runtime.FLAG_NAMES} == {
            name: True for name in runtime.FLAG_NAMES
        }
        assert set(snapshot) == set(runtime.ALL_FLAG_NAMES)

    def test_backend_defaults_to_numpy(self):
        assert runtime.flag("backend") == runtime.DEFAULT_BACKEND == "numpy"
        assert runtime.backend_name() == "numpy"

    def test_backend_value_flag_coerced_and_restored(self):
        previous = runtime.set_flag("backend", "  NumPy  ")
        assert previous == "numpy"
        assert runtime.flag("backend") == "numpy"
        with runtime.use(backend="nonexistent"):
            assert runtime.backend_name() == "nonexistent"
        assert runtime.backend_name() == "numpy"
        with pytest.raises(ValueError, match="non-empty string"):
            runtime.set_flag("backend", "   ")

    def test_set_flag_returns_previous(self):
        assert runtime.set_flag("fused_kernels", False) is True
        assert runtime.set_flag("fused_kernels", True) is False

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime flag"):
            runtime.flag("turbo_mode")
        with pytest.raises(ValueError, match="unknown runtime flag"):
            runtime.set_flag("turbo_mode", True)
        with pytest.raises(ValueError, match="unknown runtime flag"):
            runtime.configure(turbo_mode=True)

    def test_configure_ignores_none(self):
        runtime.configure(fused_kernels=None)
        assert runtime.flag("fused_kernels") is True

    def test_configure_returns_previous_snapshot(self):
        previous = runtime.configure(batched_cc=False)
        assert previous["batched_cc"] is True
        runtime.configure(**previous)
        assert runtime.flag("batched_cc") is True

    def test_use_restores_on_exit(self):
        with runtime.use(fused_kernels=False, vectorized_radio=False):
            assert runtime.flag("fused_kernels") is False
            assert runtime.flag("vectorized_radio") is False
        assert runtime.flag("fused_kernels") is True
        assert runtime.flag("vectorized_radio") is True

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with runtime.use(batched_cc=False):
                raise RuntimeError("boom")
        assert runtime.flag("batched_cc") is True

    def test_synthesis_fingerprint_subset(self):
        fp = runtime.synthesis_fingerprint()
        assert set(fp) == set(runtime.SYNTHESIS_FLAG_NAMES)
        runtime.set_flag("vectorized_radio", False)
        assert runtime.synthesis_fingerprint()["vectorized_radio"] is False
        # flags that don't change trace values stay out of the fingerprint
        runtime.set_flag("fused_kernels", False)
        assert "fused_kernels" not in runtime.synthesis_fingerprint()


class TestShimEquivalence:
    """The legacy per-module setters and runtime must stay one state."""

    @pytest.mark.parametrize("name", sorted(SHIMS))
    def test_shim_writes_visible_in_runtime(self, name):
        setter, getter = SHIMS[name]
        previous = setter(False)
        assert previous is True
        assert runtime.flag(name) is False
        assert getter() is False
        setter(True)
        assert runtime.flag(name) is True

    @pytest.mark.parametrize("name", sorted(SHIMS))
    def test_runtime_writes_visible_in_shim(self, name):
        _, getter = SHIMS[name]
        runtime.set_flag(name, False)
        assert getter() is False
        runtime.set_flag(name, True)
        assert getter() is True

    def test_legacy_context_managers_still_work(self):
        with modules.fused_kernels(False):
            assert runtime.flag("fused_kernels") is False
        assert runtime.flag("fused_kernels") is True
        with prism5g.batched_cc(False):
            assert runtime.flag("batched_cc") is False
        assert runtime.flag("batched_cc") is True
        with simulator.vectorized_radio(False):
            assert runtime.flag("vectorized_radio") is False
        assert runtime.flag("vectorized_radio") is True

    def test_mirror_globals_track_runtime(self):
        # hot loops read these module globals directly; they must follow
        runtime.set_flag("fused_kernels", False)
        assert modules._FUSED_KERNELS is False
        runtime.set_flag("batched_cc", False)
        assert prism5g._BATCHED_CC is False
        runtime.set_flag("vectorized_radio", False)
        assert simulator._VECTORIZED_RADIO is False


class TestCanonicalHash:
    def test_stable_across_key_order(self):
        a = runtime.canonical_hash({"x": 1, "y": 2})
        b = runtime.canonical_hash({"y": 2, "x": 1})
        assert a == b

    def test_schema_changes_hash(self):
        plain = runtime.canonical_hash({"x": 1})
        assert runtime.canonical_hash({"x": 1}, schema="v1") != plain
        assert runtime.canonical_hash({"x": 1}, schema="v2") != runtime.canonical_hash(
            {"x": 1}, schema="v1"
        )

    def test_value_changes_hash(self):
        assert runtime.canonical_hash({"x": 1}) != runtime.canonical_hash({"x": 2})

    def test_length_parameter(self):
        assert len(runtime.canonical_hash({"x": 1})) == 16
        assert len(runtime.canonical_hash({"x": 1}, length=24)) == 24

    def test_exotic_values_stringified(self):
        from pathlib import Path

        # default=str keeps e.g. Paths hashable rather than raising
        assert runtime.canonical_hash({"p": Path("/tmp/x")})

    def test_matches_obs_config_hash(self):
        from repro import obs

        config = {"operator": "OpZ", "dt_s": 1.0}
        assert obs.config_hash(config) == runtime.canonical_hash(config)

    def test_runtime_hash_tracks_flags(self):
        before = runtime.runtime_hash()
        runtime.set_flag("fused_kernels", False)
        assert runtime.runtime_hash() != before


class TestCacheKeyFingerprint:
    def test_vectorized_radio_changes_cache_key(self):
        from repro.data.cache import cache_key

        config = {"kind": "subdataset", "seed": 0}
        with runtime.use(vectorized_radio=True):
            on = cache_key(config)
        with runtime.use(vectorized_radio=False):
            off = cache_key(config)
        assert on != off

    def test_nn_only_flags_do_not_change_cache_key(self):
        from repro.data.cache import cache_key

        config = {"kind": "subdataset", "seed": 0}
        with runtime.use(fused_kernels=True, batched_cc=True):
            on = cache_key(config)
        with runtime.use(fused_kernels=False, batched_cc=False):
            off = cache_key(config)
        assert on == off
