"""Optimizer and loss tests: convergence and metric correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, SGD, Tensor, mae, mape, mse_loss, rmse, rmse_loss


def _quadratic_descent(optimizer_cls, **kwargs):
    """Minimize ||x - target||^2; returns final parameter."""
    target = np.array([3.0, -2.0])
    param = Tensor(np.zeros(2), requires_grad=True)
    opt = optimizer_cls([param], **kwargs)
    for _ in range(300):
        loss = ((param - Tensor(target)) ** 2).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return param.data


class TestOptimizers:
    def test_sgd_converges(self):
        final = _quadratic_descent(SGD, lr=0.1)
        np.testing.assert_allclose(final, [3.0, -2.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        final = _quadratic_descent(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(final, [3.0, -2.0], atol=1e-3)

    def test_adam_converges(self):
        final = _quadratic_descent(Adam, lr=0.1)
        np.testing.assert_allclose(final, [3.0, -2.0], atol=1e-3)

    def test_adam_grad_clip_limits_step(self):
        param = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([param], lr=1.0, grad_clip=0.001)
        loss = (param - 1e6) ** 2
        loss.sum().backward()
        opt.step()
        assert abs(param.data[0]) < 2.0  # clipped, not a huge jump

    def test_skips_params_without_grad(self):
        param = Tensor(np.ones(2), requires_grad=True)
        Adam([param], lr=0.1).step()  # no backward called
        np.testing.assert_allclose(param.data, 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1, momentum=1.0)


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 4.0]))
        assert mse_loss(pred, target).item() == pytest.approx((1 + 4) / 2)

    def test_rmse_loss_is_sqrt_mse(self):
        pred = Tensor(np.array([3.0]))
        target = Tensor(np.array([0.0]))
        assert rmse_loss(pred, target).item() == pytest.approx(3.0)

    def test_rmse_metric_shape_check(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_mae_metric(self):
        assert mae(np.array([1.0, -1.0]), np.zeros(2)) == pytest.approx(1.0)

    def test_mape_metric(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30))
    def test_rmse_nonnegative_and_zero_iff_equal(self, values):
        arr = np.array(values)
        assert rmse(arr, arr) == 0.0
        assert rmse(arr, arr + 1.0) == pytest.approx(1.0)
