"""repro.backends: registry resolution, fallback, arena, numba equivalence.

The numpy backend's bit-identity to the loop oracles is covered by
tests/test_nn_fused.py and tests/test_batched_equivalence.py (the
refactor kept the same expressions, so those suites are the contract).
This file covers the dispatch machinery itself: name resolution and
graceful fallback (with its obs counter), the workspace arena's
step-window semantics and gradient correctness across consecutive fits,
and — when numba is installed — the tolerance-based equivalence of the
JIT backend against the numpy reference.
"""

import importlib.util

import numpy as np
import pytest

from repro import backends, obs, runtime
from repro.backends import arena, numpy_backend
from repro.nn.kernels import gru_seq, lstm_decoder_seq, lstm_seq
from repro.nn.modules import LSTM, Linear, Module
from repro.nn.tensor import Tensor
from repro.nn.training import Trainer, stack_trace_windows


@pytest.fixture(autouse=True)
def restore_flags():
    before = runtime.flags()
    yield
    runtime.configure(**before)
    arena.clear()


# ---------------------------------------------------------------------------
# registry + resolution


class TestRegistry:
    def test_numpy_is_default_and_available(self):
        assert runtime.backend_name() == "numpy"
        assert backends.active_name() == "numpy"
        assert "numpy" in backends.available_backends()
        assert set(backends.registered_backends()) >= {"numpy", "numba"}

    def test_backend_object_carries_every_primitive(self):
        be = backends.active()
        for fname in backends.PRIMITIVES:
            assert callable(getattr(be, fname)), fname

    def test_flag_flip_swaps_active_backend(self):
        with runtime.use(backend="numpy"):
            assert backends.active_name() == "numpy"
        # unknown name resolves back to numpy but remembers the request
        with runtime.use(backend="no-such-backend"):
            assert backends.requested_name() == "no-such-backend"
            assert backends.active_name() == "numpy"
        assert backends.requested_name() == "numpy"

    def test_fallback_publishes_obs_counter(self):
        obs.configure(mode=obs.MODE_METRICS)
        try:
            obs.reset()
            with runtime.use(backend="no-such-backend"):
                pass
            counters = obs.snapshot()["counters"]
            assert counters.get("backend.fallback", 0) >= 1
        finally:
            obs.configure(mode=obs.MODE_OFF)

    def test_register_backend_partial_module_inherits_numpy(self):
        class _Stub:
            name = "stub"

            @staticmethod
            def affine_forward(x, weight, h, weight_h, bias):
                return numpy_backend.affine_forward(x, weight, h, weight_h, bias)

        backends.register_backend("stub", lambda: _Stub)
        try:
            with runtime.use(backend="stub"):
                be = backends.active()
                assert be.name == "stub"
                # unimplemented primitives fall through to numpy
                assert be.lstm_seq_forward is numpy_backend.lstm_seq_forward
        finally:
            backends._REGISTRY.pop("stub", None)

    def test_kernels_bit_identical_across_backend_roundtrip(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6, 5))
        h0 = np.zeros((4, 8))
        c0 = np.zeros((4, 8))
        w_ih = rng.normal(size=(5, 32))
        w_hh = rng.normal(size=(8, 32))
        b = rng.normal(size=32)
        out_a, _, _ = lstm_seq(Tensor(x), Tensor(h0), Tensor(c0),
                               Tensor(w_ih), Tensor(w_hh), Tensor(b))
        with runtime.use(backend="numpy"):
            out_b, _, _ = lstm_seq(Tensor(x), Tensor(h0), Tensor(c0),
                                   Tensor(w_ih), Tensor(w_hh), Tensor(b))
        assert np.array_equal(out_a.data, out_b.data)


# ---------------------------------------------------------------------------
# workspace arena


class _SeqModel(Module):
    def __init__(self, features: int = 4, hidden: int = 8):
        super().__init__()
        self.rnn = LSTM(features, hidden)
        self.head = Linear(hidden, 1)

    def forward(self, x):
        out, _ = self.rnn(x)
        return self.head(out[:, -1, :])


def _fit_losses(x, y, arena_on: bool, epochs: int = 3):
    with runtime.use(arena=arena_on):
        arena.clear()
        trainer = Trainer(_SeqModel(), max_epochs=epochs, batch_size=16, seed=0)
        history = trainer.fit(x, y)
        preds = trainer.predict(x)
    return history.train_loss, preds


class TestArena:
    def test_pools_are_reused_across_steps(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(48, 10, 4))
        y = rng.normal(size=(48, 1))
        arena.clear()
        Trainer(_SeqModel(), max_epochs=2, batch_size=16, seed=0).fit(x, y)
        stats = arena.workspace().stats()
        assert stats["steps"] > 1
        assert stats["hits"] > stats["misses"]
        # window closed after fit: library calls outside a step allocate fresh
        assert not arena.workspace().active

    def test_arena_is_numerically_invisible(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 10, 4))
        y = rng.normal(size=(64, 1))
        loss_on, preds_on = _fit_losses(x, y, arena_on=True)
        loss_off, preds_off = _fit_losses(x, y, arena_on=False)
        assert loss_on == loss_off  # lint: bit-identical
        assert np.array_equal(preds_on, preds_off)

    def test_two_consecutive_fits_keep_correct_grads(self):
        # buffer recycling across fit() calls must not leak stale state:
        # the same trainer fit twice equals two independent single fits
        rng = np.random.default_rng(2)
        x = rng.normal(size=(32, 8, 4))
        y = rng.normal(size=(32, 1))
        with runtime.use(arena=True):
            arena.clear()
            trainer = Trainer(_SeqModel(), max_epochs=2, batch_size=8, seed=0)
            trainer.fit(x, y)
            second = trainer.fit(x, y)

            reference = Trainer(_SeqModel(), max_epochs=2, batch_size=8, seed=0)
            reference.fit(x, y)
            reference_second = reference.fit(x, y)
        assert second.train_loss == reference_second.train_loss  # lint: bit-identical

    def test_buffers_escaping_as_tensor_data_are_distinct(self):
        # outputs/final states escape the step window as Tensor.data and
        # must never alias pooled scratch across two kernel calls
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 5, 4))
        args = (Tensor(np.zeros((3, 6))), Tensor(np.zeros((3, 6))),
                Tensor(rng.normal(size=(4, 24))), Tensor(rng.normal(size=(6, 24))),
                Tensor(rng.normal(size=24)))
        with runtime.use(arena=True):
            arena.clear()
            arena.begin_step()
            out1, _, c1 = lstm_seq(Tensor(x), *args)
            first = out1.data.copy()
            arena.begin_step()
            out2, _, _ = lstm_seq(Tensor(2.0 * x), *args)
            assert out1.data is not out2.data
            assert np.array_equal(out1.data, first)
            arena.end_run()

    def test_inactive_outside_step_window(self):
        arena.clear()
        buf_a = arena.empty((4, 4))
        buf_b = arena.empty((4, 4))
        assert buf_a is not buf_b
        assert arena.workspace().stats()["pools"] == 0

    def test_flag_off_disables_pooling(self):
        with runtime.use(arena=False):
            arena.clear()
            arena.begin_step()
            arena.empty((8,))
            arena.empty((8,))
            assert arena.workspace().stats()["buffers"] == 0
            arena.end_run()


# ---------------------------------------------------------------------------
# multi-trace stacking


class TestStackTraceWindows:
    def test_stacks_along_sample_axis(self):
        rng = np.random.default_rng(5)
        pairs = [(rng.normal(size=(n, 6, 3)), rng.normal(size=(n, 2))) for n in (4, 7, 5)]
        x, y = stack_trace_windows(pairs)
        assert x.shape == (16, 6, 3)
        assert y.shape == (16, 2)
        assert np.array_equal(x[4:11], pairs[1][0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            stack_trace_windows([
                (np.zeros((2, 5, 3)), np.zeros((2, 1))),
                (np.zeros((2, 4, 3)), np.zeros((2, 1))),
            ])
        with pytest.raises(ValueError, match="windows"):
            stack_trace_windows([(np.zeros((2, 5, 3)), np.zeros((3, 1)))])
        with pytest.raises(ValueError, match="at least one"):
            stack_trace_windows([])

    def test_fit_traces_equals_fit_on_stacked(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(40, 8, 4))
        y = rng.normal(size=(40, 1))
        pairs = [(x[:25], y[:25]), (x[25:], y[25:])]
        stacked = Trainer(_SeqModel(), max_epochs=2, batch_size=10, seed=0)
        hist_a = stacked.fit_traces(pairs)
        reference = Trainer(_SeqModel(), max_epochs=2, batch_size=10, seed=0)
        hist_b = reference.fit(x, y)
        assert hist_a.train_loss == hist_b.train_loss  # lint: bit-identical


# ---------------------------------------------------------------------------
# numba backend (tolerance contract; skipped when numba is absent)


_HAS_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.mark.skipif(not _HAS_NUMBA, reason="numba not installed")
class TestNumbaEquivalence:
    RTOL = 1e-9
    ATOL = 1e-11

    def _grads(self, out, wrt):
        out.sum().backward()
        return [t.grad.copy() for t in wrt]

    def test_lstm_seq_matches_numpy(self):
        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(5, 9, 4)), requires_grad=True)
        h0 = Tensor(np.zeros((5, 8)))
        c0 = Tensor(np.zeros((5, 8)))
        w_ih = Tensor(rng.normal(size=(4, 32)), requires_grad=True)
        w_hh = Tensor(rng.normal(size=(8, 32)), requires_grad=True)
        b = Tensor(rng.normal(size=32), requires_grad=True)
        wrt = [x, w_ih, w_hh, b]

        out_np, _, _ = lstm_seq(x, h0, c0, w_ih, w_hh, b)
        g_np = self._grads(out_np, wrt)
        for t in wrt:
            t.grad = None
        with runtime.use(backend="numba"):
            assert backends.active_name() == "numba"
            out_nb, _, _ = lstm_seq(x, h0, c0, w_ih, w_hh, b)
            g_nb = self._grads(out_nb, wrt)
        np.testing.assert_allclose(out_nb.data, out_np.data, rtol=self.RTOL, atol=self.ATOL)
        for a, b_ in zip(g_nb, g_np):
            np.testing.assert_allclose(a, b_, rtol=self.RTOL, atol=self.ATOL)

    def test_gru_seq_matches_numpy(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(4, 7, 3)), requires_grad=True)
        h0 = Tensor(np.zeros((4, 6)))
        w_ih = Tensor(rng.normal(size=(3, 12)), requires_grad=True)
        w_hh = Tensor(rng.normal(size=(6, 12)), requires_grad=True)
        b = Tensor(rng.normal(size=12), requires_grad=True)
        w_in = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        w_hn = Tensor(rng.normal(size=(6, 6)), requires_grad=True)
        b_n = Tensor(rng.normal(size=6), requires_grad=True)
        wrt = [x, w_ih, w_hh, b, w_in, w_hn, b_n]

        out_np, _ = gru_seq(x, h0, w_ih, w_hh, b, w_in, w_hn, b_n)
        g_np = self._grads(out_np, wrt)
        for t in wrt:
            t.grad = None
        with runtime.use(backend="numba"):
            out_nb, _ = gru_seq(x, h0, w_ih, w_hh, b, w_in, w_hn, b_n)
            g_nb = self._grads(out_nb, wrt)
        np.testing.assert_allclose(out_nb.data, out_np.data, rtol=self.RTOL, atol=self.ATOL)
        for a, b_ in zip(g_nb, g_np):
            np.testing.assert_allclose(a, b_, rtol=self.RTOL, atol=self.ATOL)

    def test_decoder_rollout_matches_numpy(self):
        rng = np.random.default_rng(9)
        y0 = Tensor(rng.normal(size=(4, 1)))
        h0 = Tensor(rng.normal(size=(4, 6)))
        c0 = Tensor(np.zeros((4, 6)))
        w_ih = Tensor(rng.normal(size=(1, 24)), requires_grad=True)
        w_hh = Tensor(rng.normal(size=(6, 24)), requires_grad=True)
        b = Tensor(rng.normal(size=24), requires_grad=True)
        w_out = Tensor(rng.normal(size=(6, 1)), requires_grad=True)
        b_out = Tensor(rng.normal(size=1), requires_grad=True)

        out_np = lstm_decoder_seq(y0, h0, c0, w_ih, w_hh, b, w_out, b_out, horizon=5)
        with runtime.use(backend="numba"):
            out_nb = lstm_decoder_seq(y0, h0, c0, w_ih, w_hh, b, w_out, b_out, horizon=5)
        np.testing.assert_allclose(out_nb.data, out_np.data, rtol=self.RTOL, atol=self.ATOL)

    def test_radio_step_matches_numpy(self):
        rng = np.random.default_rng(10)
        c = 6
        args = (
            rng.normal(size=2) * 100.0,
            False,
            None,
            rng.normal(size=c),
            rng.normal(size=c),
            rng.normal(size=(c, 2)) * 400.0,
            np.full(c, 3500.0),
            rng.normal(size=c) + 20.0,
            np.full(c, 1e-12),
            np.full(c, 52.0),
            np.full(c, 10.0 * np.log10(52.0)),
            np.full(c, 20.0),
            (rng.random((c, c)) > 0.5).astype(np.float64),
            150.0,
            0.3,
        )
        ref = numpy_backend.radio_step(*args)
        with runtime.use(backend="numba"):
            got = backends.active().radio_step(*args)
        for a, b_ in zip(got, ref):
            np.testing.assert_allclose(a, b_, rtol=1e-9, atol=1e-9)

    def test_non_float64_delegates_to_numpy(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(2, 4, 3)).astype(np.float32))
        h0 = Tensor(np.zeros((2, 5), dtype=np.float32))
        c0 = Tensor(np.zeros((2, 5), dtype=np.float32))
        w_ih = Tensor(rng.normal(size=(3, 20)).astype(np.float32))
        w_hh = Tensor(rng.normal(size=(5, 20)).astype(np.float32))
        b = Tensor(rng.normal(size=20).astype(np.float32))
        out_np, _, _ = lstm_seq(x, h0, c0, w_ih, w_hh, b)
        with runtime.use(backend="numba"):
            out_nb, _, _ = lstm_seq(x, h0, c0, w_ih, w_hh, b)
        assert np.array_equal(out_nb.data, out_np.data)
