"""Softmax op and transformer-encoder tests (the swappable Prism5G block)."""

import numpy as np
import pytest

from repro.core import Prism5G, pack_inputs
from repro.nn import CausalSelfAttention, Tensor, TransformerEncoder, numerical_gradient

RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = Tensor(RNG.normal(size=(4, 6))).softmax(axis=-1)
        np.testing.assert_allclose(out.numpy().sum(axis=-1), 1.0)

    def test_stable_for_large_logits(self):
        out = Tensor(np.array([[1e4, 0.0], [-1e4, 0.0]])).softmax()
        assert np.all(np.isfinite(out.numpy()))

    def test_gradcheck(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(4,))

        def fn(t):
            return (t.softmax(axis=-1) * Tensor(w)).sum()

        t = Tensor(x.copy(), requires_grad=True)
        fn(t).backward()
        numeric = numerical_gradient(lambda arr: fn(Tensor(arr)).item(), x.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)


class TestCausalSelfAttention:
    def test_output_shape(self):
        attention = CausalSelfAttention(8, rng=np.random.default_rng(0))
        out = attention(Tensor(RNG.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_causality(self):
        """Perturbing the future must not change past outputs."""
        attention = CausalSelfAttention(6, rng=np.random.default_rng(0))
        x = RNG.normal(size=(1, 7, 6))
        base = attention(Tensor(x)).numpy()
        x_mod = x.copy()
        x_mod[0, 5, :] += 10.0
        modified = attention(Tensor(x_mod)).numpy()
        np.testing.assert_allclose(base[0, :5], modified[0, :5], atol=1e-9)
        assert not np.allclose(base[0, 5:], modified[0, 5:])

    def test_gradients_flow(self):
        attention = CausalSelfAttention(4, rng=np.random.default_rng(1))
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        attention(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0


class TestTransformerEncoder:
    def test_sequence_interface_matches_rnn(self):
        encoder = TransformerEncoder(5, 8, num_layers=2, rng=np.random.default_rng(0))
        out, state = encoder(Tensor(RNG.normal(size=(3, 6, 5))))
        assert out.shape == (3, 6, 8)
        assert state is None

    def test_position_information_present(self):
        """The same token at different positions yields different outputs."""
        encoder = TransformerEncoder(2, 8, rng=np.random.default_rng(0))
        x = np.zeros((1, 4, 2))
        out = encoder(Tensor(x))[0].numpy()
        assert not np.allclose(out[0, 0], out[0, 3])


class TestPrismTransformerVariant:
    def test_forward_shape(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 5, 3, 6))
        mask = np.ones((4, 5, 3))
        y_hist = rng.random((4, 5))
        model = Prism5G(n_ccs=3, n_features=6, horizon=4, hidden=8, rnn="transformer")
        out = model(Tensor(pack_inputs(x, mask, y_hist)))
        assert out.shape == (4, 4 * (1 + 3))

    def test_trains_a_step(self):
        from repro.nn import Adam

        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 5, 2, 6))
        mask = np.ones((8, 5, 2))
        y_hist = rng.random((8, 5))
        target = rng.random((8, 3))
        model = Prism5G(n_ccs=2, n_features=6, horizon=3, hidden=8, rnn="transformer")
        opt = Adam(model.parameters(), lr=0.01)
        packed = pack_inputs(x, mask, y_hist)
        losses = []
        for _ in range(15):
            pred = model(Tensor(packed))
            loss = ((pred[:, :3] - Tensor(target)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
