"""Dataset artifact persistence tests."""

import numpy as np
import pytest

from repro.data import dataset_summary, load_trace_set, save_trace_set
from repro.ran import TraceSet, TraceSimulator


@pytest.fixture(scope="module")
def small_set():
    traces = [
        TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=s).run(20.0, route_id=s)
        for s in range(2)
    ] + [TraceSimulator("OpX", mobility="walking", dt_s=1.0, seed=9).run(20.0)]
    return TraceSet(traces)


class TestArtifacts:
    def test_save_creates_manifest_and_files(self, small_set, tmp_path):
        out = save_trace_set(small_set, tmp_path / "ds", name="unit")
        assert (out / "manifest.json").exists()
        assert len(list(out.glob("*.jsonl"))) == 3

    def test_roundtrip_preserves_throughput(self, small_set, tmp_path):
        out = save_trace_set(small_set, tmp_path / "ds")
        loaded = load_trace_set(out)
        assert len(loaded) == 3
        np.testing.assert_allclose(
            loaded[0].throughput_series(), small_set[0].throughput_series()
        )

    def test_filters(self, small_set, tmp_path):
        out = save_trace_set(small_set, tmp_path / "ds")
        assert len(load_trace_set(out, operator="OpZ")) == 2
        assert len(load_trace_set(out, operator="OpX")) == 1
        assert len(load_trace_set(out, operator="OpY")) == 0

    def test_summary(self, small_set, tmp_path):
        out = save_trace_set(small_set, tmp_path / "ds", name="summary-test")
        summary = dataset_summary(out)
        assert summary["name"] == "summary-test"
        assert summary["n_traces"] == 3
        assert summary["total_samples"] == 60
        assert summary["operators"] == ["OpX", "OpZ"]

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_set(tmp_path)
