"""Tests for :mod:`repro.lintkit` — the AST invariant checker.

Per rule RL001–RL007: one snippet that must pass and one that must
fail.  Plus the two repo-level gates: ``src/repro`` lints clean
(self-lint) and the checked-in obs catalog matches the harvest
(catalog drift).  The whole-program rules (RL008–RL012), incremental
cache, SARIF output and ``--changed-only`` are covered by
tests/test_lintkit_project.py.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintkit import (
    default_catalog_path,
    default_root,
    lint_paths,
    load_catalog,
    make_checkers,
    registered_checkers,
    valid_obs_name,
)
from repro.lintkit.catalog import aggregate, harvest_module, write_catalog
from repro.lintkit.runner import build_context, run_cli

# ---------------------------------------------------------------------------
# helpers


def lint_snippet(tmp_path, source, filename="snippet.py", rules=None, **kwargs):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    kwargs.setdefault("catalog_mode", "off")
    return lint_paths([path], rules=rules, **kwargs)


def codes(result):
    return sorted({d.code for d in result.diagnostics})


# ---------------------------------------------------------------------------
# RL001 determinism


def test_rl001_fails_on_legacy_global_rng(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "np.random.seed(7)\n"
        "x = np.random.rand(3)\n"
        "rng = np.random.default_rng()\n",
        rules=["RL001"],
    )
    assert len(result.diagnostics) == 3
    assert codes(result) == ["RL001"]
    assert [d.line for d in sorted(result.diagnostics)] == [2, 3, 4]


def test_rl001_passes_on_seeded_generator(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n"
        "child = np.random.default_rng(rng.integers(0, 2**31))\n"
        "x = rng.normal(size=3)\n",
        rules=["RL001"],
    )
    assert result.ok


def test_rl001_flags_legacy_from_import(tmp_path):
    result = lint_snippet(tmp_path, "from numpy.random import randint\n", rules=["RL001"])
    assert codes(result) == ["RL001"]


# ---------------------------------------------------------------------------
# RL002 flag discipline


def test_rl002_fails_on_flag_value_import(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from repro.runtime import fused_kernels\n"
        "from repro.core.prism5g import _BATCHED_CC\n",
        rules=["RL002"],
    )
    assert len(result.diagnostics) == 2
    assert codes(result) == ["RL002"]


def test_rl002_fails_on_relative_mirror_import(tmp_path):
    # a file living inside the repro package importing a sibling's mirror
    result = lint_snippet(
        tmp_path,
        "from .modules import _FUSED_KERNELS\n",
        filename="repro/nn/new_module.py",
        rules=["RL002"],
    )
    assert codes(result) == ["RL002"]


def test_rl002_passes_on_module_attribute_reads(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from repro import runtime\n"
        "from repro.nn.modules import fused_kernels, set_fused_kernels\n"
        "enabled = runtime.flag('fused_kernels')\n",
        rules=["RL002"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# RL003 single-hash contract


def test_rl003_fails_on_stray_hashlib(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import hashlib\nfrom hashlib import sha256\n",
        rules=["RL003"],
    )
    assert len(result.diagnostics) == 2
    assert codes(result) == ["RL003"]


def test_rl003_allows_hashlib_in_runtime(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import hashlib\n",
        filename="src/repro/runtime.py",
        rules=["RL003"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# RL004 exception hygiene


def test_rl004_fails_on_swallowed_broad_except(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n    x = 1\nexcept Exception:\n    pass\n"
        "try:\n    y = 2\nexcept:\n    y = 0\n",
        rules=["RL004"],
    )
    assert len(result.diagnostics) == 2
    assert codes(result) == ["RL004"]


def test_rl004_passes_when_reraised_or_published(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from repro import obs\n"
        "try:\n    x = 1\nexcept Exception:\n    raise\n"
        "try:\n    y = 2\nexcept Exception:\n    obs.log_warning('demo.swallowed')\n"
        "try:\n    z = 3\nexcept (OSError, ValueError):\n    z = 0\n",
        rules=["RL004"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# RL005 obs-name catalog


def test_rl005_fails_on_bad_name_and_missing_catalog_entry(tmp_path):
    catalog = tmp_path / "catalog.json"
    write_catalog(catalog, {}, manual={})
    result = lint_snippet(
        tmp_path,
        "from repro import obs\nobs.counter('BadName')\n",
        rules=["RL005"],
        catalog_mode="check",
        catalog_path=catalog,
    )
    messages = "\n".join(d.message for d in result.diagnostics)
    assert codes(result) == ["RL005"]
    assert "dotted-lowercase" in messages
    assert "not in the catalog" in messages


def test_rl005_passes_when_catalogued(tmp_path):
    catalog = tmp_path / "catalog.json"
    snippet = tmp_path / "mod.py"
    snippet.write_text("from repro import obs\nobs.counter('demo.hits')\n", encoding="utf-8")
    ctx = build_context(snippet)
    write_catalog(catalog, aggregate(harvest_module(ctx.tree, ctx.module, ctx.display_path)))
    result = lint_paths([snippet], rules=["RL005"], catalog_mode="check", catalog_path=catalog)
    assert result.ok


def test_rl005_wildcards_and_name_validation():
    assert valid_obs_name("cache.bytes_read")
    assert valid_obs_name("evaluate.rmse.*")
    assert not valid_obs_name("nodots")
    assert not valid_obs_name("Bad.Name")
    assert not valid_obs_name("trailing.")
    assert not valid_obs_name("*.leading")


def test_rl005_harvests_fstrings_and_conditionals(tmp_path):
    snippet = tmp_path / "mod.py"
    snippet.write_text(
        "from repro import obs\n"
        "obs.gauge(f'demo.rmse.{name}', 1.0)\n"
        "obs.counter('demo.a' if cond else 'demo.b')\n"
        "obs.counter(variable_name)\n",
        encoding="utf-8",
    )
    ctx = build_context(snippet)
    names = sorted(s.name for s in harvest_module(ctx.tree, ctx.module, ctx.display_path))
    assert names == ["demo.a", "demo.b", "demo.rmse.*"]


# ---------------------------------------------------------------------------
# RL006 float equality


def test_rl006_fails_on_float_equality(tmp_path):
    result = lint_snippet(
        tmp_path,
        "flag = x == 0.0\nother = y.std() != z\n",
        rules=["RL006"],
    )
    assert len(result.diagnostics) == 2
    assert codes(result) == ["RL006"]


def test_rl006_passes_on_order_and_allclose(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "a = x <= 0.0\n"
        "b = np.allclose(x, y)\n"
        "c = n == 0\n"  # int equality is fine
        "d = x == 0.0  # lint: bit-identical\n"
        "e = y != 1.5  # lint: disable=RL006\n",
        rules=["RL006"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# RL007 backend discipline


def test_rl007_fails_on_np_compute_in_kernel_dispatch(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "def lstm_seq(x):\n"
        "    gates = np.matmul(x, x)\n"
        "    return np.exp(gates)\n",
        filename="repro/nn/kernels.py",
        rules=["RL007"],
    )
    assert codes(result) == ["RL007"]
    assert len(result.diagnostics) == 2


def test_rl007_allows_alloc_and_optout(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "def seed(out):\n"
        "    g = np.zeros_like(out)\n"
        "    a = np.asarray(out)\n"
        "    t = np.result_type(out, g)\n"
        "    return np.tanh(a)  # lint: backend-impl\n",
        filename="repro/nn/kernels.py",
        rules=["RL007"],
    )
    assert result.ok


def test_rl007_ignores_modules_outside_dispatch_layer(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "y = np.exp(np.zeros(3))\n",
        filename="repro/backends/numpy_backend.py",
        rules=["RL007"],
    )
    assert result.ok


# ---------------------------------------------------------------------------
# repo-level gates


def test_self_lint_src_repro_is_clean():
    result = lint_paths()  # defaults to the installed repro package
    assert result.files_checked > 50
    assert result.ok, result.to_text()


def test_catalog_matches_harvest():
    """Catalog-drift gate: obs_catalog.json is exactly the current harvest."""
    checkers = make_checkers(["RL005"])
    result = lint_paths([default_root()], checkers=checkers, catalog_mode="off")
    assert result.ok, result.to_text()
    harvested = aggregate(checkers[0].sites)
    catalog = load_catalog(default_catalog_path())
    assert harvested == catalog["harvested"]
    # manual entries cover dynamically-published names only; they must
    # not shadow anything the harvester already sees
    assert not set(catalog["manual"]) & set(harvested)


def test_catalog_drift_detected_and_fixed(tmp_path):
    catalog = tmp_path / "catalog.json"
    snippet = tmp_path / "mod.py"
    snippet.write_text("from repro import obs\nobs.counter('demo.hits')\n", encoding="utf-8")
    drift = lint_paths([snippet], rules=["RL005"], catalog_mode="check", catalog_path=catalog)
    assert not drift.ok and "not in the catalog" in drift.diagnostics[0].message
    fixed = lint_paths([snippet], rules=["RL005"], catalog_mode="fix", catalog_path=catalog)
    assert fixed.catalog_written == catalog
    clean = lint_paths([snippet], rules=["RL005"], catalog_mode="check", catalog_path=catalog)
    assert clean.ok
    # a typo'd rename is a new name -> fails again
    snippet.write_text("from repro import obs\nobs.counter('demo.hitz')\n", encoding="utf-8")
    typo = lint_paths([snippet], rules=["RL005"], catalog_mode="check", catalog_path=catalog)
    assert not typo.ok


def test_fix_catalog_preserves_manual_section(tmp_path):
    catalog = tmp_path / "catalog.json"
    write_catalog(catalog, {}, manual={"dyn.name": {"kinds": ["counter"], "modules": ["m"]}})
    snippet = tmp_path / "mod.py"
    snippet.write_text("from repro import obs\nobs.counter('demo.hits')\n", encoding="utf-8")
    lint_paths([snippet], rules=["RL005"], catalog_mode="fix", catalog_path=catalog)
    data = load_catalog(catalog)
    assert "demo.hits" in data["harvested"]
    assert "dyn.name" in data["manual"]


# ---------------------------------------------------------------------------
# registry, runner and CLI plumbing


def test_registry_has_all_twelve_rules():
    assert list(registered_checkers()) == [f"RL{i:03d}" for i in range(1, 13)]


def test_unknown_rule_code_raises():
    with pytest.raises(ValueError, match="unknown rule codes"):
        make_checkers(["RL999"])


def test_syntax_error_reported_not_raised(tmp_path):
    result = lint_snippet(tmp_path, "def broken(:\n")
    assert codes(result) == ["RL000"]


def test_json_report_shape(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("import hashlib\n", encoding="utf-8")
    result = lint_paths([path], rules=["RL003"], catalog_mode="off")
    payload = json.loads(result.to_json())
    assert payload["schema"] == "repro-lint-report-v1"
    assert payload["ok"] is False
    assert payload["counts"] == {"RL003": 1}
    diag = payload["diagnostics"][0]
    assert diag["code"] == "RL003" and diag["line"] == 1


def test_run_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("x = y == 0.5\n", encoding="utf-8")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert run_cli([str(good)]) == 0
    assert run_cli([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RL006" in out
    assert run_cli(["--rules", "NOPE"]) == 2


def test_cli_lint_subcommand_self_lints_clean():
    from repro.cli import main

    assert main(["lint"]) == 0


@pytest.mark.slow
def test_module_entry_point(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import hashlib\n", encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lintkit", str(bad), "--format", "json"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(Path(default_root()).parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert json.loads(proc.stdout)["counts"] == {"RL003": 1}
