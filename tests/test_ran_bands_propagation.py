"""Band registry and propagation model tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ran import (
    BAND_REGISTRY,
    FastFadingProcess,
    ShadowingProcess,
    bands_for_rat,
    freespace_pathloss_db,
    get_band,
    indoor_penetration_loss_db,
    noise_power_dbm,
    rsrp_dbm,
    rsrq_db,
    sinr_db,
    urban_macro_pathloss_db,
)


class TestBandRegistry:
    def test_paper_table6_bands_present(self):
        for name in ("b2", "b41", "b66", "b71", "n5", "n25", "n41", "n71", "n77", "n260", "n261"):
            assert name in BAND_REGISTRY

    def test_band_classes(self):
        assert get_band("n71").band_class == "low"
        assert get_band("n41").band_class == "mid"
        assert get_band("n260").band_class == "high"

    def test_frequency_ranges(self):
        assert get_band("n77").frequency_range == "FR1"
        assert get_band("n261").frequency_range == "FR2"

    def test_duplex_modes_match_paper(self):
        assert get_band("n41").duplex == "TDD"
        assert get_band("n71").duplex == "FDD"
        assert get_band("b2").duplex == "FDD"

    def test_n41_bandwidths(self):
        assert set(get_band("n41").bandwidths_mhz) == {20, 40, 60, 100}

    def test_default_scs_choices(self):
        assert get_band("n260").default_scs_khz == 120
        assert get_band("n41").default_scs_khz == 30
        assert get_band("n25").default_scs_khz == 15
        assert get_band("b2").default_scs_khz == 15

    def test_unknown_band_raises_with_guidance(self):
        with pytest.raises(KeyError, match="known bands"):
            get_band("n999")

    def test_bands_for_rat(self):
        assert all(b.rat == "4G" for b in bands_for_rat("4G"))
        assert all(b.rat == "5G" for b in bands_for_rat("5G"))
        with pytest.raises(ValueError):
            bands_for_rat("3G")


class TestPathloss:
    def test_monotone_in_distance(self):
        pls = [urban_macro_pathloss_db(d, 2_500) for d in (50, 100, 400, 1_000)]
        assert pls == sorted(pls)

    def test_monotone_in_frequency(self):
        assert urban_macro_pathloss_db(300, 600) < urban_macro_pathloss_db(300, 3_700)
        assert urban_macro_pathloss_db(300, 3_700) < urban_macro_pathloss_db(300, 28_000)

    def test_los_less_than_nlos(self):
        assert urban_macro_pathloss_db(300, 2_500, los=True) < urban_macro_pathloss_db(300, 2_500, los=False)

    def test_freespace_reference(self):
        # classic check: 1 km @ 1 GHz ~ 92.4 dB
        assert freespace_pathloss_db(1_000, 1_000) == pytest.approx(92.4, abs=0.2)

    def test_indoor_loss_grows_with_frequency(self):
        low = indoor_penetration_loss_db(600)
        mid = indoor_penetration_loss_db(3_700)
        mmwave = indoor_penetration_loss_db(28_000)
        assert low < mid < mmwave
        assert mmwave - low > 15.0  # mmWave effectively blocked


class TestShadowing:
    def test_stationary_is_frozen(self):
        rng = np.random.default_rng(0)
        process = ShadowingProcess(sigma_db=6.0)
        first = process.sample(0.0, rng)
        second = process.sample(0.0, rng)
        assert first == pytest.approx(second, abs=1e-9)

    def test_long_moves_decorrelate(self):
        rng = np.random.default_rng(1)
        process = ShadowingProcess(sigma_db=6.0, decorr_m=10.0)
        process.sample(0.0, rng)
        samples = [process.sample(1_000.0, rng) for _ in range(500)]
        assert np.std(samples) > 3.0  # close to the full sigma

    def test_variance_calibrated(self):
        rng = np.random.default_rng(2)
        values = []
        for i in range(400):
            process = ShadowingProcess(sigma_db=8.0)
            values.append(process.sample(0.0, np.random.default_rng(i)))
        assert np.std(values) == pytest.approx(8.0, rel=0.2)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShadowingProcess(sigma_db=-1.0)
        with pytest.raises(ValueError):
            ShadowingProcess(decorr_m=0.0)
        with pytest.raises(ValueError):
            ShadowingProcess(band_mix=1.5)


class TestFastFading:
    def test_coherence_time_shrinks_with_speed(self):
        slow = FastFadingProcess.coherence_time_s(1.0, 2_500)
        fast = FastFadingProcess.coherence_time_s(20.0, 2_500)
        assert fast < slow

    def test_correlation_structure(self):
        """Consecutive samples at walking speed are highly correlated."""
        rng = np.random.default_rng(3)
        process = FastFadingProcess(sigma_db=2.0)
        samples = [process.sample(0.01, 1.4, 2_500, rng) for _ in range(2_000)]
        arr = np.asarray(samples)
        lag1 = np.corrcoef(arr[:-1], arr[1:])[0, 1]
        # coherence time at 1.4 m/s, 2.5 GHz is ~36 ms -> lag-1 rho ~ 0.76
        assert lag1 > 0.6


class TestLinkBudget:
    def test_noise_floor_reference(self):
        # 20 MHz, NF 7 dB -> about -94 dBm
        assert noise_power_dbm(20.0) == pytest.approx(-94.0, abs=0.5)

    def test_noise_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            noise_power_dbm(0.0)

    def test_rsrp_decreases_with_more_rbs(self):
        wide = rsrp_dbm(46.0, 100.0, n_rb=273)
        narrow = rsrp_dbm(46.0, 100.0, n_rb=51)
        assert wide < narrow  # same total power spread across more REs

    def test_sinr_interference_free(self):
        assert sinr_db(-80.0, -100.0) == pytest.approx(20.0)

    def test_sinr_with_interference(self):
        # equal-power interference at the noise level halves the denominator
        value = sinr_db(-80.0, -100.0, interference_dbm_per_re=-100.0)
        assert value == pytest.approx(20.0 - 3.01, abs=0.1)

    def test_rsrq_bounds(self):
        with pytest.raises(ValueError):
            rsrq_db(-80.0, -50.0, 0)
