"""PCell-change analysis tests."""

import numpy as np
import pytest

from repro.analysis import pcell_band_share, pcell_changes, pcell_statistics
from repro.ran import TraceSimulator
from tests.test_ran_traces_scheduler import _cc, _record

from repro.ran import Trace


def _trace_with_switch():
    a = _cc("n41@2500", "n41", pcell=True)
    b = _cc("n71@600", "n71", pcell=True)
    records = [
        _record(0.0, [a]),
        _record(1.0, [a]),
        _record(2.0, [b]),  # PCell switches mid -> low
        _record(3.0, [b]),
    ]
    return Trace(records=records, dt_s=1.0)


class TestPCellChanges:
    def test_detects_switch(self):
        changes = pcell_changes(_trace_with_switch())
        assert len(changes) == 1
        change = changes[0]
        assert change.from_channel == "n41@2500"
        assert change.to_channel == "n71@600"
        assert change.from_band_class == "mid"
        assert change.to_band_class == "low"

    def test_no_switch_no_changes(self):
        trace = Trace(records=[_record(float(i), [_cc()]) for i in range(5)], dt_s=1.0)
        assert pcell_changes(trace) == []

    def test_statistics_fields(self):
        stats = pcell_statistics(_trace_with_switch())
        assert stats.n_changes == 1
        assert stats.band_transition_counts[("mid", "low")] == 1

    def test_band_share(self):
        share = pcell_band_share([_trace_with_switch()])
        assert share["mid"] == pytest.approx(0.5)
        assert share["low"] == pytest.approx(0.5)

    def test_on_simulated_drive(self):
        trace = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=33).run(120.0)
        stats = pcell_statistics(trace)
        assert stats.n_changes >= 0
        share = pcell_band_share([trace])
        assert abs(sum(share.values()) - 1.0) < 1e-9
