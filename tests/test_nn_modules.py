"""Neural module tests: shapes, gradients reaching parameters, state dicts."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    TCN,
    CausalConv1d,
    Dropout,
    Embedding,
    GRU,
    Linear,
    LSTM,
    LSTMCell,
    Module,
    Sequential,
    Tensor,
    load_state,
    numerical_gradient,
    save_state,
)

RNG = np.random.default_rng(7)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(RNG.normal(size=(5, 4)))).shape == (5, 3)

    def test_gradients_reach_parameters(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        layer(Tensor(RNG.normal(size=(5, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_weight_gradient_correct(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        x = RNG.normal(size=(4, 3))
        layer(Tensor(x)).sum().backward()
        expected = numerical_gradient(
            lambda w: float((x @ w + layer.bias.data).sum()), layer.weight.data.copy()
        )
        np.testing.assert_allclose(layer.weight.grad, expected, atol=1e-5)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6)
        assert emb(np.array([[1, 2, 3]])).shape == (1, 3, 6)

    def test_out_of_range_raises(self):
        emb = Embedding(4, 2)
        with pytest.raises(IndexError):
            emb(np.array([4]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_is_row_sparse(self):
        emb = Embedding(5, 3, rng=np.random.default_rng(0))
        emb(np.array([1, 1, 3])).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[0], 0.0)
        np.testing.assert_allclose(grad[1], 2.0)  # index 1 used twice
        np.testing.assert_allclose(grad[3], 1.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = RNG.normal(size=(10, 10))
        np.testing.assert_allclose(drop(Tensor(x)).numpy(), x)

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 100)))).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 2.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestRecurrent:
    def test_lstm_output_shape(self):
        lstm = LSTM(3, 8, num_layers=2, rng=np.random.default_rng(0))
        out, state = lstm(Tensor(RNG.normal(size=(4, 6, 3))))
        assert out.shape == (4, 6, 8)
        assert len(state) == 2
        assert state[0][0].shape == (4, 8)

    def test_lstm_cell_state_evolves(self):
        cell = LSTMCell(2, 4, rng=np.random.default_rng(0))
        h = Tensor(np.zeros((1, 4)))
        c = Tensor(np.zeros((1, 4)))
        h2, c2 = cell(Tensor(RNG.normal(size=(1, 2))), (h, c))
        assert not np.allclose(h2.numpy(), 0.0)

    def test_lstm_forget_bias_initialized_to_one(self):
        cell = LSTMCell(2, 4)
        np.testing.assert_allclose(cell.bias.data[4:8], 1.0)

    def test_gru_output_shape(self):
        gru = GRU(3, 5, rng=np.random.default_rng(0))
        out, state = gru(Tensor(RNG.normal(size=(2, 7, 3))))
        assert out.shape == (2, 7, 5)
        assert state[0].shape == (2, 5)

    def test_lstm_gradients_flow_through_time(self):
        lstm = LSTM(2, 4, rng=np.random.default_rng(0))
        x = Tensor(RNG.normal(size=(1, 5, 2)), requires_grad=True)
        out, _ = lstm(x)
        out[:, -1, :].sum().backward()
        # the first timestep must receive gradient through recurrence
        assert np.abs(x.grad[0, 0]).sum() > 0


class TestConvolutional:
    def test_causal_conv_shape(self):
        conv = CausalConv1d(3, 5, kernel_size=3, rng=np.random.default_rng(0))
        assert conv(Tensor(RNG.normal(size=(2, 7, 3)))).shape == (2, 7, 5)

    def test_causality(self):
        """Output at t must not depend on inputs after t."""
        conv = CausalConv1d(1, 1, kernel_size=3, dilation=2, rng=np.random.default_rng(0))
        x = RNG.normal(size=(1, 10, 1))
        base = conv(Tensor(x)).numpy()
        x_mod = x.copy()
        x_mod[0, 7, 0] += 100.0  # perturb the future
        modified = conv(Tensor(x_mod)).numpy()
        np.testing.assert_allclose(base[0, :7], modified[0, :7])
        assert not np.allclose(base[0, 7:], modified[0, 7:])

    def test_tcn_shape_and_receptive_field(self):
        tcn = TCN(2, [4, 4, 4], kernel_size=2, rng=np.random.default_rng(0))
        assert tcn(Tensor(RNG.normal(size=(3, 12, 2)))).shape == (3, 12, 4)


class TestModuleInfrastructure:
    def _small_model(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))

    def test_named_parameters_unique(self):
        model = self._small_model()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_state_dict_roundtrip(self):
        model_a = self._small_model(seed=0)
        model_b = self._small_model(seed=99)
        model_b.load_state_dict(model_a.state_dict())
        x = RNG.normal(size=(2, 3))
        np.testing.assert_allclose(model_a(Tensor(x)).numpy(), model_b(Tensor(x)).numpy())

    def test_state_dict_rejects_mismatch(self):
        model = self._small_model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_save_load_npz(self, tmp_path):
        model_a = self._small_model(seed=0)
        model_b = self._small_model(seed=1)
        path = tmp_path / "model.npz"
        save_state(model_a, path)
        load_state(model_b, path)
        x = RNG.normal(size=(2, 3))
        np.testing.assert_allclose(model_a(Tensor(x)).numpy(), model_b(Tensor(x)).numpy())

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.layers[0].training

    def test_mlp_architecture(self):
        mlp = MLP(4, [8, 8], 2, rng=np.random.default_rng(0))
        assert mlp(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 2)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2
