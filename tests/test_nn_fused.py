"""Property tests for the fused sequence kernels and inference mode.

The fused ops (``affine``, ``lstm_cell``/``gru_cell``,
``lstm_seq``/``gru_seq``) must match the op-by-op reference composition
bit-for-bit on the forward pass and to <= 1e-6 relative error on
gradients (they are the same math, reassociated); ``no_grad`` must
change nothing about the numbers while skipping graph construction.
"""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    GRUCell,
    Linear,
    LSTMCell,
    Tensor,
    affine,
    fused_kernels,
    is_grad_enabled,
    mse_loss,
    no_grad,
    numerical_gradient,
)

RNG = np.random.default_rng(7)


def _max_rel_err(a: np.ndarray, b: np.ndarray, floor: float = 1e-8) -> float:
    return float(np.max(np.abs(a - b) / np.maximum(np.abs(b), floor)))


def _grad_pairs(module_a, module_b):
    for (name, pa), (_, pb) in zip(
        module_a.named_parameters(), module_b.named_parameters()
    ):
        yield name, pa.grad, pb.grad


# ---------------------------------------------------------------------------
# affine


def test_affine_matches_op_by_op():
    x = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
    w = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=3), requires_grad=True)
    fused = affine(x, w, b)
    x2 = Tensor(x.data.copy(), requires_grad=True)
    w2 = Tensor(w.data.copy(), requires_grad=True)
    b2 = Tensor(b.data.copy(), requires_grad=True)
    reference = x2 @ w2 + b2
    assert np.array_equal(fused.data, reference.data)
    (fused * fused).sum().backward()
    (reference * reference).sum().backward()
    for fused_t, ref_t in ((x, x2), (w, w2), (b, b2)):
        assert _max_rel_err(fused_t.grad, ref_t.grad) <= 1e-6


def test_affine_two_input_form_matches_sum():
    x = Tensor(RNG.normal(size=(5, 4)), requires_grad=True)
    h = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
    w_x = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
    w_h = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
    b = Tensor(RNG.normal(size=2), requires_grad=True)
    fused = affine(x, w_x, b, h=h, weight_h=w_h)
    expected = (x.data @ w_x.data + h.data @ w_h.data) + b.data
    assert np.array_equal(fused.data, expected)
    fused.sum().backward()
    assert np.allclose(w_x.grad, x.data.T @ np.ones((5, 2)))
    assert np.allclose(h.grad, np.ones((5, 2)) @ w_h.data.T)


# ---------------------------------------------------------------------------
# fused cells vs reference composition


def _cell_pair(cell_cls, in_size=5, hidden=6):
    a = cell_cls(in_size, hidden, rng=np.random.default_rng(3))
    b = cell_cls(in_size, hidden, rng=np.random.default_rng(3))
    return a, b


def test_lstm_cell_forward_bit_identical():
    cell, ref = _cell_pair(LSTMCell)
    x = RNG.normal(size=(4, 5))
    h0 = RNG.normal(size=(4, 6))
    c0 = RNG.normal(size=(4, 6))
    with fused_kernels(True):
        h, c = cell(Tensor(x), (Tensor(h0), Tensor(c0)))
    h_ref, c_ref = ref.forward_reference(Tensor(x), (Tensor(h0), Tensor(c0)))
    assert np.array_equal(h.data, h_ref.data)
    assert np.array_equal(c.data, c_ref.data)


def test_lstm_cell_gradients_match_reference():
    cell, ref = _cell_pair(LSTMCell)
    x = RNG.normal(size=(4, 5))
    h0 = RNG.normal(size=(4, 6))
    c0 = RNG.normal(size=(4, 6))
    target_h = RNG.normal(size=(4, 6))
    with fused_kernels(True):
        xa, ha, ca = Tensor(x, requires_grad=True), Tensor(h0, requires_grad=True), Tensor(c0, requires_grad=True)
        h, c = cell(xa, (ha, ca))
        (mse_loss(h, Tensor(target_h)) + (c * c).sum()).backward()
    xb, hb, cb = Tensor(x, requires_grad=True), Tensor(h0, requires_grad=True), Tensor(c0, requires_grad=True)
    h_ref, c_ref = ref.forward_reference(xb, (hb, cb))
    (mse_loss(h_ref, Tensor(target_h)) + (c_ref * c_ref).sum()).backward()
    for name, ga, gb in _grad_pairs(cell, ref):
        assert _max_rel_err(ga, gb) <= 1e-6, name
    for ga, gb in ((xa.grad, xb.grad), (ha.grad, hb.grad), (ca.grad, cb.grad)):
        assert _max_rel_err(ga, gb) <= 1e-6


def test_lstm_cell_c_only_loss():
    """The h->c gradient hand-off treats an unused h as zero gradient."""
    cell, ref = _cell_pair(LSTMCell)
    x = RNG.normal(size=(3, 5))
    state = (Tensor(RNG.normal(size=(3, 6))), Tensor(RNG.normal(size=(3, 6))))
    with fused_kernels(True):
        _, c = cell(Tensor(x), state)
        (c * c).sum().backward()
    _, c_ref = ref.forward_reference(Tensor(x), state)
    (c_ref * c_ref).sum().backward()
    for name, ga, gb in _grad_pairs(cell, ref):
        assert _max_rel_err(ga, gb) <= 1e-6, name


def test_gru_cell_matches_reference():
    cell, ref = _cell_pair(GRUCell)
    x = RNG.normal(size=(4, 5))
    h0 = RNG.normal(size=(4, 6))
    with fused_kernels(True):
        xa, ha = Tensor(x, requires_grad=True), Tensor(h0, requires_grad=True)
        h = cell(xa, ha)
        (h * h).sum().backward()
    xb, hb = Tensor(x, requires_grad=True), Tensor(h0, requires_grad=True)
    h_ref = ref.forward_reference(xb, hb)
    assert np.array_equal(h.data, h_ref.data)
    (h_ref * h_ref).sum().backward()
    for name, ga, gb in _grad_pairs(cell, ref):
        assert _max_rel_err(ga, gb) <= 1e-6, name
    assert _max_rel_err(xa.grad, xb.grad) <= 1e-6
    assert _max_rel_err(ha.grad, hb.grad) <= 1e-6


# ---------------------------------------------------------------------------
# fused sequence kernels vs the per-step loop


@pytest.mark.parametrize("net_cls", [LSTM, GRU])
@pytest.mark.parametrize("num_layers", [1, 2])
def test_seq_kernels_match_reference_loop(net_cls, num_layers):
    fused_net = net_cls(5, 6, num_layers=num_layers, rng=np.random.default_rng(1))
    ref_net = net_cls(5, 6, num_layers=num_layers, rng=np.random.default_rng(1))
    x = RNG.normal(size=(4, 7, 5))
    target = RNG.normal(size=(4, 7, 6))
    with fused_kernels(True):
        out, state = fused_net(Tensor(x))
        mse_loss(out, Tensor(target)).backward()
    with fused_kernels(False):
        out_ref, state_ref = ref_net(Tensor(x))
        mse_loss(out_ref, Tensor(target)).backward()
    assert np.array_equal(out.data, out_ref.data)
    if net_cls is LSTM:
        assert np.array_equal(state[0][0].data, state_ref[0][0].data)
        assert np.array_equal(state[0][1].data, state_ref[0][1].data)
    else:
        assert np.array_equal(state[0].data, state_ref[0].data)
    for name, ga, gb in _grad_pairs(fused_net, ref_net):
        assert _max_rel_err(ga, gb) <= 1e-6, name


def test_lstm_seq_state_only_loss_matches_reference():
    """Seq2Seq-style usage: only the final (h, c) feeds the loss."""
    fused_net = LSTM(4, 5, rng=np.random.default_rng(2))
    ref_net = LSTM(4, 5, rng=np.random.default_rng(2))
    x = RNG.normal(size=(3, 6, 4))
    with fused_kernels(True):
        _, state = fused_net(Tensor(x))
        (state[0][0].sum() + (state[0][1] * state[0][1]).sum()).backward()
    with fused_kernels(False):
        _, state_ref = ref_net(Tensor(x))
        (state_ref[0][0].sum() + (state_ref[0][1] * state_ref[0][1]).sum()).backward()
    for name, ga, gb in _grad_pairs(fused_net, ref_net):
        assert _max_rel_err(ga, gb) <= 1e-6, name


def test_rnn_does_not_mutate_caller_state():
    net = LSTM(4, 5, rng=np.random.default_rng(0))
    x = Tensor(RNG.normal(size=(2, 3, 4)))
    h0 = Tensor(np.zeros((2, 5)))
    c0 = Tensor(np.zeros((2, 5)))
    caller_state = [(h0, c0)]
    for enabled in (True, False):
        with fused_kernels(enabled):
            _, new_state = net(x, state=caller_state)
        assert caller_state == [(h0, c0)]
        assert new_state is not caller_state
        assert new_state[0][0] is not h0

    gru = GRU(4, 5, rng=np.random.default_rng(0))
    gru_state = [h0]
    for enabled in (True, False):
        with fused_kernels(enabled):
            _, new_state = gru(x, state=gru_state)
        assert gru_state == [h0]
        assert new_state is not gru_state


# ---------------------------------------------------------------------------
# numerical gradients through the fused kernels


def _check_numerical(net_cls):
    net = net_cls(3, 4, rng=np.random.default_rng(5))
    x = RNG.normal(size=(2, 4, 3))
    param = net.cell0.weight_ih

    def objective(w: np.ndarray) -> float:
        saved = param.data
        param.data = w
        try:
            with fused_kernels(True):
                out, _ = net(Tensor(x))
                return float((out * out).sum().data)
        finally:
            param.data = saved

    numeric = numerical_gradient(objective, param.data.copy(), eps=1e-6)
    with fused_kernels(True):
        out, _ = net(Tensor(x))
        (out * out).sum().backward()
    denom = np.maximum(np.abs(numeric), 1e-4)
    assert float(np.max(np.abs(numeric - param.grad) / denom)) <= 1e-5


def test_lstm_seq_numerical_gradient():
    _check_numerical(LSTM)


def test_gru_seq_numerical_gradient():
    _check_numerical(GRU)


# ---------------------------------------------------------------------------
# no_grad semantics


def test_no_grad_outputs_bit_identical_and_graphless():
    net = LSTM(4, 5, rng=np.random.default_rng(8))
    x = Tensor(RNG.normal(size=(3, 6, 4)))
    out_grad, _ = net(x)
    with no_grad():
        assert not is_grad_enabled()
        out_nograd, state = net(x)
    assert is_grad_enabled()
    assert np.array_equal(out_grad.data, out_nograd.data)
    assert out_nograd._parents == ()
    assert out_nograd._backward is None
    assert not out_nograd.requires_grad
    assert state[0][0]._parents == ()


def test_no_grad_nests_and_restores():
    with no_grad():
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_as_decorator():
    @no_grad()
    def forward(layer, x):
        return layer(x)

    layer = Linear(3, 2, rng=np.random.default_rng(0))
    out = forward(layer, Tensor(RNG.normal(size=(4, 3))))
    assert out._parents == ()
    assert not out.requires_grad


# ---------------------------------------------------------------------------
# heavier randomized sweep (excluded from tier-1 by the slow marker)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
def test_seq_kernel_randomized_sweep(seed):
    rng = np.random.default_rng(100 + seed)
    batch, time, feat, hidden = (
        int(rng.integers(1, 6)),
        int(rng.integers(1, 9)),
        int(rng.integers(1, 7)),
        int(rng.integers(1, 9)),
    )
    for net_cls in (LSTM, GRU):
        fused_net = net_cls(feat, hidden, num_layers=2, rng=np.random.default_rng(seed))
        ref_net = net_cls(feat, hidden, num_layers=2, rng=np.random.default_rng(seed))
        x = rng.normal(size=(batch, time, feat))
        target = rng.normal(size=(batch, time, hidden))
        with fused_kernels(True):
            out, _ = fused_net(Tensor(x))
            mse_loss(out, Tensor(target)).backward()
        with fused_kernels(False):
            out_ref, _ = ref_net(Tensor(x))
            mse_loss(out_ref, Tensor(target)).backward()
        assert np.array_equal(out.data, out_ref.data)
        for name, ga, gb in _grad_pairs(fused_net, ref_net):
            assert _max_rel_err(ga, gb) <= 1e-6, (net_cls.__name__, name)
