"""Cross-module integration tests: full pipelines at small scale."""

import numpy as np
import pytest

from repro.apps import MPCPlayer, ABRConfig, ViVoConfig, ViVoSimulator, harmonic_forecaster
from repro.core import DeepConfig, LSTMPredictor, Prism5GPredictor, ProphetPredictor
from repro.data import SubDatasetSpec, build_subdataset, random_split, window_traces, normalize_windows
from repro.ran import TraceSimulator


class TestTraceToPredictionPipeline:
    def test_simulate_window_train_predict(self):
        """The full §6 pipeline at toy scale."""
        spec = SubDatasetSpec("OpZ", "driving", "long")
        ds = build_subdataset(spec, n_traces=3, samples_per_trace=100, seed=7)
        train, val, test = random_split(ds.windows, 0.5, 0.2, 0.3, seed=0)
        predictor = Prism5GPredictor(DeepConfig(hidden=16, max_epochs=30, patience=30))
        predictor.fit(train, val)
        rmse = predictor.evaluate(test)
        prophet_rmse = ProphetPredictor().fit(train).evaluate(test)
        assert np.isfinite(rmse)
        # even a barely-trained CA-aware model beats the blind extrapolator
        assert rmse < prophet_rmse

    def test_denormalized_predictions_in_mbps(self):
        spec = SubDatasetSpec("OpZ", "driving", "long")
        ds = build_subdataset(spec, n_traces=2, samples_per_trace=80, seed=3)
        train, val, test = random_split(ds.windows, 0.5, 0.2, 0.3, seed=0)
        predictor = LSTMPredictor(DeepConfig(hidden=8, max_epochs=4, patience=4))
        predictor.fit(train, val)
        mbps = ds.denormalize_tput(predictor.predict(test))
        truth = ds.denormalize_tput(test.y)
        assert mbps.shape == test.y.shape
        # denormalized error should be within the plausible Mbps range
        assert 0.0 < np.sqrt(np.mean((mbps - truth) ** 2)) < 2_000.0


class TestTraceToQoEPipeline:
    def test_vivo_over_simulated_ca_trace(self):
        sim = TraceSimulator("OpZ", mobility="walking", dt_s=0.01, seed=17)
        trace = sim.run(8.0)
        tput = trace.throughput_series()
        vivo = ViVoSimulator(ViVoConfig(max_bitrate_mbps=float(np.mean(tput) * 1.05)))
        ideal = vivo.run_ideal(tput, trace.dt_s)
        stock = vivo.run_stock(tput, trace.dt_s)
        assert ideal.n_units == stock.n_units
        assert ideal.stall_time_s <= stock.stall_time_s + 0.5

    def test_abr_over_simulated_ca_trace(self):
        sim = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=19)
        trace = sim.run(150.0)
        player = MPCPlayer(ABRConfig(lookahead=2))
        result = player.run(trace.throughput_series(), 1.0, harmonic_forecaster)
        assert result.n_units > 10
        assert result.avg_quality > 0


class TestMLDatasetFromArbitraryTraces:
    def test_mixed_operator_windows(self):
        traces = [
            TraceSimulator(op, mobility="driving", dt_s=1.0, seed=s).run(60.0)
            for s, op in enumerate(("OpZ", "OpX"))
        ]
        windows = window_traces(traces, history=10, horizon=10, max_ccs=4)
        ds = normalize_windows(windows)
        assert len(ds.windows) == 2 * (60 - 19)
        assert set(np.unique(ds.windows.trace_ids)) == {0, 1}
