"""Trace data model, JSONL I/O, feature tensors; scheduler behaviour."""

import numpy as np
import pytest

from repro.ran import (
    CCSample,
    CellLoadProcess,
    Scheduler,
    Trace,
    TraceRecord,
    TraceSet,
    TraceSimulator,
    time_of_day_load,
)
from repro.ran.traces import CC_FEATURES


def _cc(key="n41@2500", band="n41", pcell=True, tput=100.0, active=True):
    return CCSample(
        channel_key=key,
        band_name=band,
        pci=101,
        is_pcell=pcell,
        active=active,
        rsrp_dbm=-85.0,
        rsrq_db=-11.0,
        sinr_db=18.0,
        cqi=11,
        bler=0.05,
        n_rb=150.0,
        n_layers=2,
        mcs=20,
        tput_mbps=tput,
    )


def _record(t, ccs, events=()):
    total = sum(c.tput_mbps for c in ccs if c.active)
    return TraceRecord(t=t, position=(0.0, 0.0), ccs=list(ccs), total_tput_mbps=total, events=list(events))


class TestTraceModel:
    def test_combo_key_pcell_first(self):
        rec = _record(0.0, [_cc("n25@1900", "n25", pcell=False), _cc("n41@2500", "n41", pcell=True)])
        assert rec.combo_key == "n41+n25"

    def test_n_active_ccs(self):
        rec = _record(0.0, [_cc(), _cc("n25@1900", "n25", pcell=False, active=False)])
        assert rec.n_active_ccs == 1

    def test_event_steps(self):
        trace = Trace(
            records=[
                _record(0.0, [_cc()]),
                _record(1.0, [_cc()], events=["scell_add:n25@1900"]),
                _record(2.0, [_cc()]),
            ],
            dt_s=1.0,
        )
        assert trace.event_steps() == [1]

    def test_jsonl_roundtrip(self, tmp_path):
        trace = Trace(
            records=[_record(float(i), [_cc(tput=50.0 + i)]) for i in range(5)],
            dt_s=1.0,
            operator="OpZ",
            scenario="urban",
            mobility="driving",
            modem="X70",
            route_id=3,
            seed=9,
        )
        path = tmp_path / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        assert loaded.operator == "OpZ"
        assert loaded.route_id == 3
        assert len(loaded) == 5
        np.testing.assert_allclose(loaded.throughput_series(), trace.throughput_series())
        assert loaded.records[0].ccs[0].channel_key == "n41@2500"


class TestFeatureTensor:
    def test_shapes(self):
        trace = Trace(records=[_record(float(i), [_cc()]) for i in range(4)], dt_s=1.0)
        features, mask, total = trace.feature_tensor(max_ccs=3)
        assert features.shape == (4, 3, len(CC_FEATURES))
        assert mask.shape == (4, 3)
        np.testing.assert_allclose(total, 100.0)

    def test_slot_stability_across_reordering(self):
        """A channel keeps its slot even when another CC joins/leaves."""
        pc = _cc("n41@2500", "n41", pcell=True, tput=500.0)
        sc = _cc("n25@1900", "n25", pcell=False, tput=100.0)
        records = [
            _record(0.0, [pc]),
            _record(1.0, [pc, sc]),
            _record(2.0, [sc]),  # PCell dropped; n25 must keep slot 1
            _record(3.0, [pc, sc]),
        ]
        trace = Trace(records=records, dt_s=1.0)
        features, mask, _ = trace.feature_tensor(max_ccs=2)
        tput_idx = CC_FEATURES.index("tput_mbps")
        assert features[0, 0, tput_idx] == 500.0
        assert features[1, 1, tput_idx] == 100.0
        assert features[2, 1, tput_idx] == 100.0  # stayed in slot 1
        assert mask[2, 0] == 0.0
        assert features[3, 0, tput_idx] == 500.0

    def test_slot_eviction_when_full(self):
        """A long-gone channel's slot is reused by a new channel."""
        a = _cc("n41@2500", "n41", True)
        b = _cc("n25@1900", "n25", False)
        c = _cc("n71@600", "n71", False)
        records = [_record(0.0, [a, b]), _record(1.0, [a]), _record(2.0, [a, c])]
        trace = Trace(records=records, dt_s=1.0)
        _, mask, _ = trace.feature_tensor(max_ccs=2)
        assert mask[2].sum() == 2.0  # n71 took n25's slot

    def test_mask_matches_activity(self):
        sim = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=3)
        trace = sim.run(30.0)
        _, mask, _ = trace.feature_tensor(max_ccs=4)
        counts = np.array([min(r.n_active_ccs, 4) for r in trace.records])
        np.testing.assert_allclose(mask.sum(axis=1), counts)


class TestTraceSet:
    def _set(self):
        t1 = Trace(records=[_record(0.0, [_cc()])], dt_s=1.0, operator="OpZ", mobility="driving")
        t2 = Trace(records=[_record(0.0, [_cc()])], dt_s=1.0, operator="OpX", mobility="driving")
        return TraceSet([t1, t2])

    def test_filter(self):
        assert len(self._set().filter(operator="OpZ")) == 1

    def test_pooled_samples(self):
        assert self._set().throughput_samples().shape == (2,)

    def test_total_duration(self):
        assert self._set().total_duration_s() == 2.0


class TestScheduler:
    def test_load_profile_peaks_midday(self):
        assert time_of_day_load(12.5) > time_of_day_load(3.0)

    def test_load_profile_bounds(self):
        for hour in np.linspace(0, 23.9, 40):
            assert 0.0 < time_of_day_load(float(hour)) < 1.0
        with pytest.raises(ValueError):
            time_of_day_load(24.0)

    def test_rush_hour_cuts_rb_share(self):
        """Tables 9-10: #RB drops at rush hour; channel quality unchanged."""
        shares = {}
        for label, hour in (("night", 0.5), ("rush", 12.5)):
            scheduler = Scheduler(hour=hour, scenario="urban", seed=0)
            values = [scheduler.rb_fraction(1, 1.0) for _ in range(300)]
            shares[label] = np.mean(values)
        assert shares["rush"] < shares["night"]

    def test_throttling_kicks_in_beyond_threshold(self):
        """Fig 15: marginal SCells get fewer RBs once aggregate BW is wide."""
        base_vals, throttled_vals = [], []
        for seed in range(5):
            s1 = Scheduler(hour=0.5, seed=seed)
            base_vals += [s1.rb_fraction(1, 1.0, aggregate_bw_before_mhz=0.0) for _ in range(50)]
            s2 = Scheduler(hour=0.5, seed=seed)
            throttled_vals += [s2.rb_fraction(1, 1.0, aggregate_bw_before_mhz=240.0) for _ in range(50)]
        assert np.mean(throttled_vals) < np.mean(base_vals)

    def test_share_bounds(self):
        scheduler = Scheduler(hour=18.5, scenario="urban", seed=1)
        for _ in range(200):
            share = scheduler.rb_fraction(2, 1.0, aggregate_bw_before_mhz=500.0)
            assert 0.0 < share <= 1.0

    def test_load_process_mean_reverts(self):
        process = CellLoadProcess(mean_load=0.5, volatility=0.05)
        rng = np.random.default_rng(0)
        values = [process.step(1.0, rng) for _ in range(2_000)]
        assert abs(np.mean(values[100:]) - 0.5) < 0.1

    def test_load_process_validation(self):
        with pytest.raises(ValueError):
            CellLoadProcess(mean_load=1.5)
