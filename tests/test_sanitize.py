"""repro.sanitize: the runtime numeric sanitizer for backend primitives.

Covers the resolution seam (flag flip wraps and unwraps the active
backend without changing its ``name``), the three guard families
(non-finite forward output, non-finite incoming grad, backward
shape/dtype mismatch against the bound forward input) each naming the
offending primitive, the obs counters a sanitized run publishes, and a
clean end-to-end training run under ``sanitize=1``.
"""

import numpy as np
import pytest

from repro import backends, obs, runtime, sanitize
from repro.backends import numpy_backend
from repro.nn.modules import LSTM, Linear, Module
from repro.nn.training import Trainer
from repro.sanitize import SanitizedBackend, SanitizerError, wrap_backend


@pytest.fixture(autouse=True)
def restore_flags():
    before = runtime.flags()
    yield
    runtime.configure(**before)


# ---------------------------------------------------------------------------
# the resolution seam


class TestSeam:
    def test_flag_flip_wraps_and_unwraps(self):
        assert not backends.sanitize_active()
        assert not isinstance(backends.active(), SanitizedBackend)
        with runtime.use(sanitize="1"):
            assert backends.sanitize_active()
            be = backends.active()
            assert isinstance(be, SanitizedBackend)
            # manifests must stamp the real compute backend
            assert be.name == "numpy"
        assert not isinstance(backends.active(), SanitizedBackend)

    def test_env_spellings_canonicalized(self):
        with runtime.use(sanitize="on"):
            assert runtime.sanitize_enabled()
        with runtime.use(sanitize="off"):
            assert not runtime.sanitize_enabled()
        with pytest.raises(ValueError):
            runtime.configure(sanitize="maybe")

    def test_wrap_is_idempotent(self):
        wrapped = wrap_backend(backends.active(), backends.PRIMITIVES)
        assert wrap_backend(wrapped, backends.PRIMITIVES) is wrapped

    def test_missing_primitives_are_skipped(self):
        class _Partial:
            name = "partial"

        wrapped = wrap_backend(_Partial(), backends.PRIMITIVES)
        assert not hasattr(wrapped, "affine_forward")


# ---------------------------------------------------------------------------
# guards


class TestGuards:
    def test_clean_forward_passes_through(self):
        with runtime.use(sanitize="1"):
            be = backends.active()
            x = np.ones((3, 4))
            w = np.ones((4, 2))
            out = be.affine_forward(x, w, None, None, None)
        assert np.array_equal(out, numpy_backend.affine_forward(x, w, None, None, None))

    def test_nan_output_trips_naming_the_primitive(self):
        with runtime.use(sanitize="1"):
            be = backends.active()
            x = np.ones((3, 4))
            x[1, 2] = np.nan
            w = np.ones((4, 2))
            with pytest.raises(SanitizerError) as excinfo:
                be.affine_forward(x, w, None, None, None)
        assert excinfo.value.primitive == "affine_forward"
        assert excinfo.value.backend == "numpy"
        assert "sanitize[numpy.affine_forward]" in str(excinfo.value)

    def test_nan_grad_seed_trips_on_backward_entry(self):
        with runtime.use(sanitize="1"):
            be = backends.active()
            g = np.ones((3, 2))
            g[0, 0] = np.inf
            x = np.ones((3, 4))
            w = np.ones((4, 2))
            with pytest.raises(SanitizerError) as excinfo:
                be.affine_backward(g, x, w, None, None, {"x": True})
        assert excinfo.value.primitive == "affine_backward"
        assert "incoming grad 'g'" in str(excinfo.value)

    def test_backward_dtype_mismatch_trips(self):
        class _Broken:
            name = "broken"

            @staticmethod
            def affine_backward(g, x, weight, h, weight_h, needs):
                # silently downcast the gradient: shape right, dtype wrong
                return {"x": np.zeros(x.shape, dtype=np.float32)}

        be = wrap_backend(_Broken(), ("affine_backward",))
        g = np.ones((3, 2))
        x = np.ones((3, 4))
        w = np.ones((4, 2))
        with pytest.raises(SanitizerError) as excinfo:
            be.affine_backward(g, x, w, None, None, {"x": True})
        assert excinfo.value.primitive == "affine_backward"
        assert "float32" in str(excinfo.value) and "float64" in str(excinfo.value)

    def test_backward_shape_mismatch_trips(self):
        class _Broken:
            name = "broken"

            @staticmethod
            def affine_backward(g, x, weight, h, weight_h, needs):
                return {"x": np.zeros((1, 1))}

        be = wrap_backend(_Broken(), ("affine_backward",))
        with pytest.raises(SanitizerError, match="backward"):
            be.affine_backward(np.ones((3, 2)), np.ones((3, 4)), np.ones((4, 2)), None, None, {})

    def test_nan_in_backward_result_names_the_grad(self):
        class _Broken:
            name = "broken"

            @staticmethod
            def affine_backward(g, x, weight, h, weight_h, needs):
                bad = np.zeros(x.shape)
                bad[0, 0] = np.nan
                return {"x": bad}

        be = wrap_backend(_Broken(), ("affine_backward",))
        with pytest.raises(SanitizerError, match="grad 'x'"):
            be.affine_backward(np.ones((3, 2)), np.ones((3, 4)), np.ones((4, 2)), None, None, {})

    def test_integer_arrays_are_exempt(self):
        # non-floating dtypes (e.g. argmax index outputs) never trip
        class _IndexOut:
            name = "idx"

            @staticmethod
            def affine_forward(x, weight, h, weight_h, bias):
                return np.array([1, 2, 3], dtype=np.int64)

        be = wrap_backend(_IndexOut(), ("affine_forward",))
        assert be.affine_forward(None, None, None, None, None).dtype == np.int64


# ---------------------------------------------------------------------------
# obs counters + end-to-end


class _TinyModel(Module):
    def __init__(self):
        super().__init__()
        self.rnn = LSTM(4, 6)
        self.head = Linear(6, 1)

    def forward(self, x):
        out, _ = self.rnn(x)
        return self.head(out[:, -1, :])


class TestEndToEnd:
    def test_sanitized_training_runs_clean_and_counts_checks(self):
        obs.configure(mode=obs.MODE_METRICS)
        try:
            obs.reset()
            rng = np.random.default_rng(0)
            x = rng.normal(size=(32, 8, 4))
            y = rng.normal(size=(32, 1))
            with runtime.use(sanitize="1"):
                Trainer(_TinyModel(), max_epochs=2, batch_size=16, seed=0).fit(x, y)
            counters = obs.snapshot()["counters"]
            assert counters.get("sanitize.checks", 0) > 0
            assert not any(k.startswith("sanitize.violation") for k in counters)
        finally:
            obs.configure(mode=obs.MODE_OFF)

    def test_violation_publishes_counter_before_raising(self):
        obs.configure(mode=obs.MODE_METRICS)
        try:
            obs.reset()
            with runtime.use(sanitize="1"):
                be = backends.active()
                x = np.full((2, 3), np.nan)
                with pytest.raises(SanitizerError):
                    be.affine_forward(x, np.ones((3, 2)), None, None, None)
            counters = obs.snapshot()["counters"]
            assert counters.get("sanitize.violation.nonfinite", 0) >= 1
        finally:
            obs.configure(mode=obs.MODE_OFF)

    def test_bit_identical_results_with_and_without_sanitizer(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(24, 8, 4))
        y = rng.normal(size=(24, 1))
        plain = Trainer(_TinyModel(), max_epochs=2, batch_size=8, seed=0).fit(x, y)
        with runtime.use(sanitize="1"):
            guarded = Trainer(_TinyModel(), max_epochs=2, batch_size=8, seed=0).fit(x, y)
        assert plain.train_loss == guarded.train_loss

    def test_sanitizer_error_is_importable_from_sanitize(self):
        assert sanitize.SanitizerError is SanitizerError
