"""End-to-end simulator invariants and paper-phenomenon checks."""

import numpy as np
import pytest

from repro.ran import TraceSimulator, simulate_stationary_ideal


@pytest.fixture(scope="module")
def drive_trace():
    sim = TraceSimulator("OpZ", scenario="urban", mobility="driving", dt_s=1.0, seed=11)
    return sim.run(90.0)


@pytest.fixture(scope="module")
def ideal_trace():
    return simulate_stationary_ideal("OpZ", duration_s=30.0, seed=3)


class TestInvariants:
    def test_aggregate_is_sum_of_cc_throughputs(self, drive_trace):
        for rec in drive_trace.records:
            total = sum(cc.tput_mbps for cc in rec.ccs if cc.active)
            assert rec.total_tput_mbps == pytest.approx(total, rel=1e-9)

    def test_exactly_one_pcell_when_connected(self, drive_trace):
        for rec in drive_trace.records:
            if rec.n_active_ccs:
                assert sum(1 for cc in rec.ccs if cc.active and cc.is_pcell) == 1

    def test_cc_count_within_policy(self, drive_trace):
        assert drive_trace.cc_count_series().max() <= 4

    def test_feature_ranges_sane(self, drive_trace):
        for rec in drive_trace.records:
            for cc in rec.ccs:
                if not cc.active:
                    continue
                assert -150 < cc.rsrp_dbm < -20
                assert 0 <= cc.cqi <= 15
                assert 0 <= cc.mcs <= 27
                assert 1 <= cc.n_layers <= 4
                assert 0 <= cc.bler < 1
                assert cc.n_rb >= 1
                assert cc.tput_mbps >= 0

    def test_deterministic_given_seed(self):
        a = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=42).run(20.0)
        b = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=42).run(20.0)
        np.testing.assert_allclose(a.throughput_series(), b.throughput_series())

    def test_different_seeds_differ(self):
        a = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=1).run(20.0)
        b = TraceSimulator("OpZ", mobility="driving", dt_s=1.0, seed=2).run(20.0)
        assert not np.allclose(a.throughput_series(), b.throughput_series())

    def test_invalid_duration(self):
        sim = TraceSimulator("OpZ", dt_s=1.0, seed=0)
        with pytest.raises(ValueError):
            sim.run(0.0)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            TraceSimulator("OpZ", dt_s=0.0)


class TestPaperPhenomena:
    def test_ideal_opz_reaches_gbps(self, ideal_trace):
        """Fig 1: OpZ 4CC FR1 ideal ~ 1.5 Gbps average."""
        mean = ideal_trace.throughput_series().mean()
        assert mean > 900.0
        assert ideal_trace.cc_count_series().max() == 4

    def test_more_ccs_more_throughput_on_average(self):
        """Fig 1's staircase, averaged over seeds to kill shadowing noise."""
        means = []
        for k in (1, 4):
            runs = [
                simulate_stationary_ideal("OpZ", duration_s=12.0, seed=s, max_ccs_override=k)
                .throughput_series()
                .mean()
                for s in range(4)
            ]
            means.append(np.mean(runs))
        assert means[1] > 1.3 * means[0]

    def test_ca_subadditive_per_cc(self):
        """Figs 6/14: a channel delivers less as an SCell than alone."""
        alone, in_ca = [], []
        for seed in range(4, 8):
            alone_trace = simulate_stationary_ideal(
                "OpZ", duration_s=10.0, seed=seed, ca_enabled=False, band_lock=["n25"]
            )
            ca_trace = simulate_stationary_ideal(
                "OpZ", duration_s=10.0, seed=seed, band_lock=["n41@2500", "n25"], max_ccs_override=2
            )
            alone.append(alone_trace.throughput_series().mean())
            for rec in ca_trace.records:
                for cc in rec.ccs:
                    if cc.active and cc.band_name == "n25":
                        in_ca.append(cc.tput_mbps)
        assert np.mean(in_ca) < 0.8 * np.mean(alone)

    def test_ca_subadditive_aggregate(self):
        """Fig 6: aggregate < sum of stand-alone means (multi-seed)."""
        total_alone, together = [], []
        for seed in range(4, 10):
            a41 = simulate_stationary_ideal(
                "OpZ", duration_s=10.0, seed=seed, ca_enabled=False, band_lock=["n41@2500"]
            )
            a25 = simulate_stationary_ideal(
                "OpZ", duration_s=10.0, seed=seed, ca_enabled=False, band_lock=["n25"]
            )
            both = simulate_stationary_ideal(
                "OpZ", duration_s=10.0, seed=seed, band_lock=["n41@2500", "n25"], max_ccs_override=2
            )
            total_alone.append(a41.throughput_series().mean() + a25.throughput_series().mean())
            together.append(both.throughput_series().mean())
        assert np.mean(together) < np.mean(total_alone)

    def test_mmwave_8cc_highest_peak(self):
        """Fig 23: 8CC mmWave beats FR1 peaks by a wide margin."""
        mmwave = simulate_stationary_ideal(
            "OpY", duration_s=12.0, seed=2, band_lock=["n261"], distance_m=40
        )
        assert mmwave.cc_count_series().max() == 8
        assert mmwave.throughput_series().max() > 2_000.0

    def test_events_logged_on_driving(self, drive_trace):
        events = [e for rec in drive_trace.records for e in rec.events]
        assert any(e.startswith("pcell_change") for e in events)

    def test_indoor_prefers_low_band_pcell(self):
        """Fig 28: indoors, the FDD low-band (n71) becomes the PCell."""
        sim = TraceSimulator(
            "OpZ", scenario="indoor", mobility="indoor", dt_s=1.0, seed=9
        )
        trace = sim.run(40.0)
        pcell_bands = [rec.pcell.band_name for rec in trace.records if rec.pcell]
        assert pcell_bands, "UE never connected indoors"
        low_share = np.mean([b == "n71" for b in pcell_bands])
        assert low_share > 0.6

    def test_band_lock_restricts_channels(self):
        trace = simulate_stationary_ideal("OpZ", duration_s=10.0, seed=5, band_lock=["n25"])
        for rec in trace.records:
            for cc in rec.ccs:
                if cc.active:
                    assert cc.band_name == "n25"

    def test_ue_capability_fig29(self):
        """Fig 29: S10 no SA CA; S21 2CC; S23 (X70) up to 4CC."""
        maxes = {}
        for modem in ("X50", "X60", "X70"):
            trace = simulate_stationary_ideal("OpZ", duration_s=15.0, seed=4, modem=modem)
            maxes[modem] = trace.cc_count_series().max()
        assert maxes["X50"] == 1
        assert maxes["X60"] <= 2
        assert maxes["X70"] >= maxes["X60"]

    def test_10ms_granularity_runs(self):
        sim = TraceSimulator("OpZ", mobility="walking", dt_s=0.01, seed=6)
        trace = sim.run(3.0)
        assert len(trace) == 300
        assert trace.dt_s == 0.01
