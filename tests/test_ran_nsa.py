"""NSA (EN-DC) dual-connectivity tests."""

import numpy as np
import pytest

from repro.ran import DualConnectivitySimulator, NSAConfig


@pytest.fixture(scope="module")
def nsa_trace():
    sim = DualConnectivitySimulator("OpX", scenario="urban", mobility="driving", dt_s=1.0, seed=3)
    return sim, sim.run(60.0)


class TestDualConnectivity:
    def test_trace_marked_nsa(self, nsa_trace):
        _, trace = nsa_trace
        assert trace.rat == "NSA"

    def test_anchor_plus_nr_leg(self, nsa_trace):
        """When the NR leg is attached, the record mixes b- and n-cells."""
        _, trace = nsa_trace
        mixed = [
            rec
            for rec in trace.records
            if any(cc.band_name.startswith("b") for cc in rec.ccs)
            and any(cc.band_name.startswith("n") for cc in rec.ccs)
        ]
        assert mixed, "NR leg never attached on an urban drive"

    def test_single_pcell_is_lte(self, nsa_trace):
        """NSA: the (only) PCell lives on the LTE anchor."""
        _, trace = nsa_trace
        for rec in trace.records:
            pcells = [cc for cc in rec.ccs if cc.is_pcell]
            assert len(pcells) <= 1
            for pcell in pcells:
                assert pcell.band_name.startswith("b")

    def test_nr_leg_events_logged(self, nsa_trace):
        _, trace = nsa_trace
        events = [e for rec in trace.records for e in rec.events]
        assert any(e.startswith("nr_leg_add") for e in events)

    def test_merged_throughput_includes_both_legs(self, nsa_trace):
        _, trace = nsa_trace
        for rec in trace.records:
            cc_sum = sum(cc.tput_mbps for cc in rec.ccs if cc.active)
            # merged total = (lte + nr) * split efficiency <= plain sum
            assert rec.total_tput_mbps <= cc_sum + 1e-6

    def test_nr_attachment_ratio(self, nsa_trace):
        sim, trace = nsa_trace
        ratio = sim.nr_attachment_ratio(trace)
        assert 0.0 <= ratio <= 1.0

    def test_nsa_beats_lte_only(self):
        """The NR leg should lift throughput over the pure-LTE anchor."""
        from repro.ran import TraceSimulator

        nsa = DualConnectivitySimulator("OpX", mobility="driving", dt_s=1.0, seed=9).run(60.0)
        lte = TraceSimulator("OpX", mobility="driving", rat="4G", dt_s=1.0, seed=9).run(60.0)
        assert nsa.throughput_series().mean() > lte.throughput_series().mean()

    def test_indoor_nsa_drops_nr_more(self):
        """Fig 27: OpX-style mid-band NR falls away indoors."""
        outdoor_sim = DualConnectivitySimulator("OpX", scenario="urban", mobility="driving", dt_s=1.0, seed=5)
        outdoor = outdoor_sim.run(50.0)
        indoor_sim = DualConnectivitySimulator("OpX", scenario="indoor", mobility="indoor", dt_s=1.0, seed=5)
        indoor = indoor_sim.run(50.0)
        assert indoor_sim.nr_attachment_ratio(indoor) <= outdoor_sim.nr_attachment_ratio(outdoor)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NSAConfig(pdcp_split_efficiency=0.0)

    def test_invalid_duration(self):
        sim = DualConnectivitySimulator("OpX", dt_s=1.0, seed=1)
        with pytest.raises(ValueError):
            sim.run(0.0)

    def test_deterministic(self):
        a = DualConnectivitySimulator("OpY", mobility="driving", dt_s=1.0, seed=21).run(30.0)
        b = DualConnectivitySimulator("OpY", mobility="driving", dt_s=1.0, seed=21).run(30.0)
        np.testing.assert_allclose(a.throughput_series(), b.throughput_series())
