"""Scaler invariants (property-based) and trainer behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Linear, MinMaxScaler, Module, StandardScaler, Tensor, Trainer


finite_matrix = arrays(
    np.float64,
    st.tuples(st.integers(2, 20), st.integers(1, 5)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestMinMaxScaler:
    @settings(max_examples=50, deadline=None)
    @given(finite_matrix)
    def test_roundtrip(self, x):
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x, atol=1e-6, rtol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(finite_matrix)
    def test_range_is_unit_interval(self, x):
        out = MinMaxScaler().fit_transform(x)
        assert out.min() >= -1e-12
        assert out.max() <= 1.0 + 1e-12

    def test_constant_column_maps_to_zero(self):
        x = np.full((5, 2), 7.0)
        out = MinMaxScaler().fit_transform(x)
        np.testing.assert_allclose(out, 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_3d_input(self):
        x = np.random.default_rng(0).normal(size=(4, 3, 2))
        scaler = MinMaxScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x, atol=1e-9)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        x = np.random.default_rng(0).normal(5, 3, size=(100, 3))
        out = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_roundtrip(self):
        x = np.random.default_rng(1).normal(size=(20, 4))
        scaler = StandardScaler().fit(x)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(x)), x, atol=1e-9)


class _TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.layer = Linear(2, 1, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.layer(x)


class TestTrainer:
    def _data(self, n=200):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 2))
        y = (x @ np.array([[1.5], [-2.0]])) + 0.3
        return x, y

    def test_fits_linear_regression(self):
        x, y = self._data()
        trainer = Trainer(_TinyNet(), lr=0.05, max_epochs=100, patience=100, batch_size=32)
        history = trainer.fit(x, y)
        assert history.train_loss[-1] < 1e-3

    def test_early_stopping_triggers(self):
        x, y = self._data(60)
        trainer = Trainer(_TinyNet(), lr=0.05, max_epochs=500, patience=5)
        history = trainer.fit(x[:40], y[:40], x[40:], y[40:])
        assert history.epochs_run < 500

    def test_best_state_restored(self):
        x, y = self._data(100)
        trainer = Trainer(_TinyNet(), lr=0.05, max_epochs=60, patience=60)
        history = trainer.fit(x[:70], y[:70], x[70:], y[70:])
        pred = trainer.predict(x[70:])
        restored_loss = float(np.mean((pred - y[70:]) ** 2))
        assert restored_loss == pytest.approx(history.best_val_loss, rel=0.2)

    def test_predict_batching_consistent(self):
        x, y = self._data(50)
        trainer = Trainer(_TinyNet(), lr=0.05, max_epochs=5, patience=5)
        trainer.fit(x, y)
        np.testing.assert_allclose(trainer.predict(x, batch_size=7), trainer.predict(x, batch_size=50))

    def test_length_mismatch_raises(self):
        trainer = Trainer(_TinyNet())
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((3, 2)), np.zeros((4, 1)))

    def test_deterministic_given_seed(self):
        x, y = self._data(80)
        runs = []
        for _ in range(2):
            trainer = Trainer(_TinyNet(), lr=0.05, max_epochs=10, patience=10, seed=3)
            trainer.fit(x, y)
            runs.append(trainer.predict(x[:5]))
        np.testing.assert_allclose(runs[0], runs[1])
