"""Tests for the on-disk trace cache and the parallel synthesis map."""

import numpy as np
import pytest

from repro.data import (
    SubDatasetSpec,
    TraceCache,
    build_subdataset,
    cache_key,
    generate_traces,
    resolve_cache,
)
from repro.data.cache import CACHE_DISABLE_ENV, CACHE_DIR_ENV, default_cache_dir
from repro.parallel import default_processes, parallel_map
from repro.ran import run_campaign
from repro.ran.campaign import CampaignConfig

SPEC = SubDatasetSpec("OpY", "driving", "long")
FAST = dict(n_traces=3, samples_per_trace=60)


# ---------------------------------------------------------------------------
# cache keys


def test_cache_key_is_stable_and_order_independent():
    config = {"kind": "subdataset", "seed": 3, "dt_s": 1.0}
    reordered = {"dt_s": 1.0, "seed": 3, "kind": "subdataset"}
    assert cache_key(config) == cache_key(reordered)
    assert cache_key(config) == cache_key(config)


def test_cache_key_differs_on_any_field_change():
    base = {"kind": "subdataset", "seed": 3, "dt_s": 1.0}
    assert cache_key(base) != cache_key({**base, "seed": 4})
    assert cache_key(base) != cache_key({**base, "dt_s": 0.01})
    assert cache_key(base) != cache_key({**base, "extra": None})


# ---------------------------------------------------------------------------
# hits, misses, byte-identity


def test_cache_hit_reproduces_byte_identical_windows(tmp_path):
    cache = TraceCache(tmp_path)
    fresh = build_subdataset(SPEC, seed=5, cache=None, **FAST)
    cold = build_subdataset(SPEC, seed=5, cache=cache, **FAST)
    assert len(cache.entries()) == 1
    warm = build_subdataset(SPEC, seed=5, cache=cache, **FAST)
    for name in ("x", "mask", "y", "y_hist"):
        want = getattr(fresh.windows, name)
        assert getattr(cold.windows, name).tobytes() == want.tobytes(), name
        assert getattr(warm.windows, name).tobytes() == want.tobytes(), name
    assert warm.windows.trace_ids.tolist() == fresh.windows.trace_ids.tolist()


def test_cache_misses_on_seed_and_config_change(tmp_path):
    cache = TraceCache(tmp_path)
    generate_traces(SPEC, seed=1, cache=cache, **FAST)
    assert len(cache.entries()) == 1
    generate_traces(SPEC, seed=2, cache=cache, **FAST)
    assert len(cache.entries()) == 2  # seed change -> new entry
    generate_traces(SPEC, seed=1, cache=cache, n_traces=3, samples_per_trace=80)
    assert len(cache.entries()) == 3  # config change -> new entry
    generate_traces(SPEC, seed=1, cache=cache, **FAST)
    assert len(cache.entries()) == 3  # repeat -> hit, no new entry


def test_cache_get_returns_none_on_miss(tmp_path):
    cache = TraceCache(tmp_path)
    assert cache.get({"kind": "never-stored"}) is None
    assert not cache.contains({"kind": "never-stored"})


def test_cache_corrupt_entry_is_reported_and_regenerated(tmp_path, caplog):
    """A truncated/corrupt entry acts as a miss: warned, counted, deleted."""
    import logging

    from repro import obs

    cache = TraceCache(tmp_path)
    config = {"kind": "subdataset", "seed": 1}
    cache.put(config, generate_traces(SPEC, seed=1, cache=None, **FAST))
    entry = cache.path_for(config)
    jsonl = sorted(entry.glob("*.jsonl"))[0]
    jsonl.write_text("{not json at all\n")

    obs.configure(mode=obs.MODE_METRICS)
    try:
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert cache.get(config) is None
        assert not entry.exists()  # bad entry deleted, next run regenerates
        assert any("cache.corrupt" in rec.message for rec in caplog.records)
        assert obs.snapshot()["counters"].get("cache.corrupt") == 1.0
    finally:
        obs.configure(mode=obs.MODE_OFF)
        obs.reset()
    # and get_or_create recovers by synthesizing a fresh entry
    fresh = cache.get_or_create(config, lambda: generate_traces(SPEC, seed=1, cache=None, **FAST))
    assert len(fresh.traces) == FAST["n_traces"]
    assert cache.contains(config)


def test_cache_clear_removes_entries(tmp_path):
    cache = TraceCache(tmp_path)
    generate_traces(SPEC, seed=1, cache=cache, **FAST)
    generate_traces(SPEC, seed=2, cache=cache, **FAST)
    assert cache.clear() == 2
    assert cache.entries() == []


def test_campaign_cached_matches_uncached(tmp_path):
    config = CampaignConfig(
        operators=("OpX",), scenarios=("urban",), rats=("5G",),
        traces_per_cell=2, duration_s=20.0,
    )
    plain = run_campaign(config, cache=None, processes=1)
    cached = run_campaign(config, cache=TraceCache(tmp_path))
    warm = run_campaign(config, cache=TraceCache(tmp_path))
    key = ("OpX", "5G", "urban")
    for result in (cached, warm):
        assert result.stats[key].ca_prevalence == plain.stats[key].ca_prevalence
        assert result.stats[key].peak_tput_mbps == plain.stats[key].peak_tput_mbps


# ---------------------------------------------------------------------------
# environment switches


def test_resolve_cache_modes(tmp_path, monkeypatch):
    assert resolve_cache(None) is None
    given = TraceCache(tmp_path)
    assert resolve_cache(given) is given
    assert resolve_cache(tmp_path).directory == tmp_path
    monkeypatch.setenv(CACHE_DISABLE_ENV, "1")
    assert resolve_cache("auto") is None
    monkeypatch.delenv(CACHE_DISABLE_ENV)
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "redirected"))
    auto = resolve_cache("auto")
    assert auto is not None
    assert auto.directory == tmp_path / "redirected"
    assert default_cache_dir() == tmp_path / "redirected"


# ---------------------------------------------------------------------------
# parallel map


def _square(n: int) -> int:
    return n * n


def test_parallel_map_preserves_order():
    items = list(range(20))
    assert parallel_map(_square, items, processes=2) == [n * n for n in items]
    assert parallel_map(_square, items, processes=1) == [n * n for n in items]
    assert parallel_map(_square, []) == []


def test_parallel_synthesis_matches_serial():
    serial = generate_traces(SPEC, seed=9, cache=None, processes=1, **FAST)
    parallel = generate_traces(SPEC, seed=9, cache=None, processes=2, **FAST)
    assert len(serial.traces) == len(parallel.traces)
    for a, b in zip(serial.traces, parallel.traces):
        assert np.array_equal(a.throughput_series(), b.throughput_series())
        assert a.feature_tensor(4)[0].tobytes() == b.feature_tensor(4)[0].tobytes()


def test_default_processes_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PROCS", "3")
    assert default_processes(10) == 3
    monkeypatch.delenv("REPRO_PROCS")
    assert default_processes(1) == 1
    assert default_processes(10_000) >= 1
